//! A sort (many-sorted type) system for first-order symbols.
//!
//! Graydon §IV-C shows that the desert-bank argument of Figure 1 passes
//! formal validation because resolution treats `bank` as one meaningless
//! symbol, while the human reading assigns it two senses. Sokolsky et al.
//! mention exploring *multi-sorted* first-order logic for exactly this
//! reason. This module implements that machinery:
//!
//! * declare predicate signatures (`adjacent : Landform × Landform`) and
//!   constant sorts (`bank : InstitutionKind`), then [`SortRegistry::check`]
//!   a knowledge base for violations; or
//! * run [`SortRegistry::infer_conflicts`] with *no* declarations — it
//!   unifies sort variables from usage and reports symbols forced into two
//!   different sorts, a lightweight equivocation lint.
//!
//! Declaring honest sorts for Figure 1 makes the knowledge base
//! ill-sorted, demonstrating the "fix"; but note (as the paper argues)
//! that the sort *declarations themselves* are informal judgments a
//! machine cannot validate.

use crate::error::LogicError;
use crate::fol::{KnowledgeBase, Term};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A sort name, e.g. `Landform`.
pub type Sort = String;

/// Declared signatures for predicates and sorts for constants.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortRegistry {
    /// Predicate name → argument sorts.
    predicates: BTreeMap<String, Vec<Sort>>,
    /// Constant name → sort.
    constants: BTreeMap<String, Sort>,
}

impl SortRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a predicate signature; replaces any existing one.
    pub fn declare_predicate<S: Into<String>>(
        &mut self,
        name: impl Into<String>,
        arg_sorts: impl IntoIterator<Item = S>,
    ) {
        self.predicates
            .insert(name.into(), arg_sorts.into_iter().map(Into::into).collect());
    }

    /// Declares a constant's sort; replaces any existing one.
    pub fn declare_constant(&mut self, name: impl Into<String>, sort: impl Into<String>) {
        self.constants.insert(name.into(), sort.into());
    }

    /// The declared sort of a constant, if any.
    pub fn constant_sort(&self, name: &str) -> Option<&Sort> {
        self.constants.get(name)
    }

    /// The declared signature of a predicate, if any.
    pub fn predicate_signature(&self, name: &str) -> Option<&[Sort]> {
        self.predicates.get(name).map(Vec::as_slice)
    }

    /// Checks every clause of `kb` against the declared signatures.
    ///
    /// Within each clause, variables must be used at a single sort.
    /// Undeclared predicates and constants are errors (explicitness is the
    /// point of the exercise).
    ///
    /// # Errors
    ///
    /// Returns every [`LogicError::SortViolation`] / [`LogicError::Undeclared`]
    /// found, in clause order; `Ok(())` when the KB is well-sorted.
    pub fn check(&self, kb: &KnowledgeBase) -> Result<(), Vec<LogicError>> {
        let mut errors = Vec::new();
        for clause in kb.clauses() {
            // Variable sorts are clause-local.
            let mut var_sorts: BTreeMap<String, Sort> = BTreeMap::new();
            for atom in std::iter::once(&clause.head).chain(clause.body.iter()) {
                self.check_atom(atom, &mut var_sorts, &mut errors);
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    fn check_atom(
        &self,
        atom: &Term,
        var_sorts: &mut BTreeMap<String, Sort>,
        errors: &mut Vec<LogicError>,
    ) {
        let (name, args) = match atom {
            Term::Compound(f, args) => (f.as_ref(), args.as_slice()),
            Term::Const(n) => (n.as_ref(), &[][..]),
            Term::Var(n) => {
                errors.push(LogicError::SortViolation {
                    symbol: n.to_string(),
                    detail: "a bare variable cannot be an atom".into(),
                });
                return;
            }
        };
        let signature = match self.predicates.get(name) {
            Some(s) => s.clone(),
            None => {
                errors.push(LogicError::Undeclared {
                    name: name.to_string(),
                });
                return;
            }
        };
        if signature.len() != args.len() {
            errors.push(LogicError::SortViolation {
                symbol: name.to_string(),
                detail: format!(
                    "arity mismatch: declared {} arguments, used with {}",
                    signature.len(),
                    args.len()
                ),
            });
            return;
        }
        for (arg, expected) in args.iter().zip(&signature) {
            self.check_term(arg, expected, var_sorts, errors);
        }
    }

    fn check_term(
        &self,
        term: &Term,
        expected: &Sort,
        var_sorts: &mut BTreeMap<String, Sort>,
        errors: &mut Vec<LogicError>,
    ) {
        match term {
            Term::Const(n) => match self.constants.get(n.as_ref()) {
                None => errors.push(LogicError::Undeclared {
                    name: n.to_string(),
                }),
                Some(actual) if actual != expected => errors.push(LogicError::SortViolation {
                    symbol: n.to_string(),
                    detail: format!("declared `{actual}`, used where `{expected}` required"),
                }),
                Some(_) => {}
            },
            Term::Var(n) => match var_sorts.get(n.as_ref()) {
                None => {
                    var_sorts.insert(n.to_string(), expected.clone());
                }
                Some(prior) if prior != expected => {
                    errors.push(LogicError::SortViolation {
                        symbol: n.to_string(),
                        detail: format!(
                            "variable used at both `{prior}` and `{expected}` in one clause"
                        ),
                    });
                }
                Some(_) => {}
            },
            Term::Compound(f, _) => {
                // Function symbols inside arguments are out of scope for
                // this simplified checker: flag them explicitly.
                errors.push(LogicError::SortViolation {
                    symbol: f.to_string(),
                    detail: "nested function symbols are not supported by the sort checker".into(),
                });
            }
        }
    }

    /// A *strict* equivocation lint requiring no declarations: every
    /// predicate argument position (`pred/arity#i`) is treated as its own
    /// provisional sort, and constants occupying two or more positions are
    /// reported.
    ///
    /// On Figure 1 this flags `bank` (used at `is_a/2#1` and
    /// `adjacent/2#0`) — a true positive. But it also flags any constant
    /// legitimately related at two positions (e.g. `bob` in
    /// `parent(tom, bob). parent(bob, ann).`) — a false positive. The lint
    /// is deliberately heuristic: Graydon §IV-C's point is that no
    /// mechanical check can decide whether two uses of a symbol share a
    /// real-world sense. Compare [`SortRegistry::infer_conflicts_linked`],
    /// which removes the false positives and thereby loses the true one.
    pub fn infer_conflicts(kb: &KnowledgeBase) -> BTreeMap<String, BTreeSet<String>> {
        let mut usage: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for clause in kb.clauses() {
            for atom in std::iter::once(&clause.head).chain(clause.body.iter()) {
                if let Term::Compound(f, args) = atom {
                    for (i, arg) in args.iter().enumerate() {
                        if let Term::Const(c) = arg {
                            let pos = format!("{f}/{}#{i}", args.len());
                            usage.entry(c.to_string()).or_default().insert(pos);
                        }
                    }
                }
            }
        }
        usage.retain(|_, classes| classes.len() >= 2);
        usage
    }

    /// A *linked* sort inference: like [`SortRegistry::infer_conflicts`],
    /// but variables propagate sorts across argument positions within a
    /// clause (union-find), so `ancestor(X, Y) :- parent(X, Z),
    /// ancestor(Z, Y)` merges the positions a constant may legitimately
    /// flow between.
    ///
    /// This eliminates the strict lint's false positives — and, tellingly,
    /// also stops flagging Figure 1's `bank`: the bridging rule
    /// `adjacent(X, Y) :- is_a(X, Z), adjacent(Z, Y)` is exactly what
    /// licenses the equivocation, and the inference dutifully merges the
    /// sorts it relates. The pair of lints is an executable demonstration
    /// of the paper's claim that equivocation is invisible to form-only
    /// analysis.
    pub fn infer_conflicts_linked(kb: &KnowledgeBase) -> BTreeMap<String, BTreeSet<String>> {
        // Union-find over position sorts, seeded by variable co-occurrence.
        let mut uf = UnionFind::new();
        for clause in kb.clauses() {
            let mut var_positions: BTreeMap<String, String> = BTreeMap::new();
            for atom in std::iter::once(&clause.head).chain(clause.body.iter()) {
                if let Term::Compound(f, args) = atom {
                    for (i, arg) in args.iter().enumerate() {
                        let pos = format!("{f}/{}#{i}", args.len());
                        uf.ensure(&pos);
                        if let Term::Var(v) = arg {
                            match var_positions.get(v.as_ref()) {
                                Some(prior) => uf.union(prior, &pos),
                                None => {
                                    var_positions.insert(v.to_string(), pos);
                                }
                            }
                        }
                    }
                }
            }
        }
        // Collect constants per sort class.
        let mut usage: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for clause in kb.clauses() {
            for atom in std::iter::once(&clause.head).chain(clause.body.iter()) {
                if let Term::Compound(f, args) = atom {
                    for (i, arg) in args.iter().enumerate() {
                        if let Term::Const(c) = arg {
                            let pos = format!("{f}/{}#{i}", args.len());
                            let class = uf.find(&pos);
                            usage.entry(c.to_string()).or_default().insert(class);
                        }
                    }
                }
            }
        }
        usage.retain(|_, classes| classes.len() >= 2);
        usage
    }
}

/// String-keyed union-find for provisional sort classes.
#[derive(Debug, Default)]
struct UnionFind {
    parent: BTreeMap<String, String>,
}

impl UnionFind {
    fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, key: &str) {
        self.parent
            .entry(key.to_string())
            .or_insert_with(|| key.to_string());
    }

    fn find(&mut self, key: &str) -> String {
        self.ensure(key);
        let parent = self.parent[key].clone();
        if parent == key {
            return parent;
        }
        let root = self.find(&parent);
        self.parent.insert(key.to_string(), root.clone());
        root
    }

    fn union(&mut self, a: &str, b: &str) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fol::{desert_bank_kb, parse_program};

    #[test]
    fn well_sorted_kb_passes() {
        let kb = parse_program("adjacent(riverbank, river). near(house, riverbank).").unwrap();
        let mut reg = SortRegistry::new();
        reg.declare_predicate("adjacent", ["Landform", "Landform"]);
        reg.declare_predicate("near", ["Building", "Landform"]);
        reg.declare_constant("riverbank", "Landform");
        reg.declare_constant("river", "Landform");
        reg.declare_constant("house", "Building");
        assert!(reg.check(&kb).is_ok());
    }

    #[test]
    fn desert_bank_rejected_under_honest_sorts() {
        // Honest reading: is_a relates an institution to an institution
        // kind; adjacent relates landforms. `bank` cannot be both.
        let kb = desert_bank_kb();
        let mut reg = SortRegistry::new();
        reg.declare_predicate("is_a", ["Institution", "InstitutionKind"]);
        reg.declare_predicate("adjacent", ["Landform", "Landform"]);
        reg.declare_constant("desert_bank", "Institution");
        reg.declare_constant("bank", "InstitutionKind");
        reg.declare_constant("river", "Landform");
        let errors = reg.check(&kb).unwrap_err();
        assert!(errors.iter().any(|e| matches!(
            e,
            LogicError::SortViolation { symbol, .. } if symbol == "bank"
        )));
    }

    #[test]
    fn desert_bank_rule_variable_clash_detected() {
        // Even sorting `bank` as a Landform, the bridging rule clashes:
        // in `adjacent(X, Y) :- is_a(X, Z), adjacent(Z, Y)` the variable Z
        // is used at InstitutionKind (is_a#1) and Landform (adjacent#0).
        let kb = desert_bank_kb();
        let mut reg = SortRegistry::new();
        reg.declare_predicate("is_a", ["Institution", "InstitutionKind"]);
        reg.declare_predicate("adjacent", ["Landform", "Landform"]);
        reg.declare_constant("desert_bank", "Institution");
        reg.declare_constant("bank", "Landform");
        reg.declare_constant("river", "Landform");
        let errors = reg.check(&kb).unwrap_err();
        assert!(errors.iter().any(|e| matches!(
            e,
            LogicError::SortViolation { symbol, .. } if symbol == "Z" || symbol == "X"
        )));
    }

    #[test]
    fn undeclared_symbols_reported() {
        let kb = parse_program("p(a).").unwrap();
        let reg = SortRegistry::new();
        let errors = reg.check(&kb).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e, LogicError::Undeclared { name } if name == "p")));
    }

    #[test]
    fn arity_mismatch_reported() {
        let kb = parse_program("p(a, b).").unwrap();
        let mut reg = SortRegistry::new();
        reg.declare_predicate("p", ["S"]);
        reg.declare_constant("a", "S");
        reg.declare_constant("b", "S");
        let errors = reg.check(&kb).unwrap_err();
        assert!(errors.iter().any(|e| matches!(
            e,
            LogicError::SortViolation { detail, .. } if detail.contains("arity")
        )));
    }

    #[test]
    fn strict_lint_flags_desert_bank_equivocation() {
        // With no declarations at all, the strict per-position lint notices
        // that `bank` occupies two distinct argument positions.
        let kb = desert_bank_kb();
        let conflicts = SortRegistry::infer_conflicts(&kb);
        assert!(
            conflicts.contains_key("bank"),
            "expected `bank` to be flagged, got {conflicts:?}"
        );
        // `river` and `desert_bank` each occupy one position: not flagged.
        assert!(!conflicts.contains_key("river"));
        assert!(!conflicts.contains_key("desert_bank"));
    }

    #[test]
    fn strict_lint_has_false_positives_by_design() {
        // `bob` legitimately appears as both child and parent; the strict
        // lint cannot tell legitimate relation from equivocation.
        let kb = parse_program("parent(tom, bob). parent(bob, ann).").unwrap();
        let conflicts = SortRegistry::infer_conflicts(&kb);
        assert!(conflicts.contains_key("bob"));
    }

    #[test]
    fn linked_inference_quiet_on_consistent_kb() {
        let kb = parse_program(
            "parent(tom, bob). parent(bob, ann).\n\
             ancestor(X, Y) :- parent(X, Y).\n\
             ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).",
        )
        .unwrap();
        // The recursive rule links parent#0 and parent#1, so bob is fine.
        let conflicts = SortRegistry::infer_conflicts_linked(&kb);
        assert!(conflicts.is_empty(), "got {conflicts:?}");
    }

    #[test]
    fn linked_inference_misses_the_equivocation() {
        // The paper's point, executable: the very rule that licenses the
        // fallacy merges the sorts, so the "smarter" lint is silent.
        let kb = desert_bank_kb();
        let conflicts = SortRegistry::infer_conflicts_linked(&kb);
        assert!(
            !conflicts.contains_key("bank"),
            "linked inference should (instructively) miss `bank`"
        );
    }

    #[test]
    fn getters_round_trip() {
        let mut reg = SortRegistry::new();
        reg.declare_predicate("p", ["A", "B"]);
        reg.declare_constant("c", "A");
        assert_eq!(reg.predicate_signature("p").unwrap(), ["A", "B"]);
        assert_eq!(reg.constant_sort("c").unwrap(), "A");
        assert!(reg.predicate_signature("q").is_none());
        assert!(reg.constant_sort("d").is_none());
    }
}
