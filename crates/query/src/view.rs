//! Traceability views: the sub-argument a reviewer sees for a query's
//! matches — the matched nodes, every ancestor up to the roots, and the
//! matched nodes' immediate evidence.

use casekit_core::{Argument, ArgumentError, NodeId, NodeIdx};

/// Extracts the traceability view for `matches`: a new [`Argument`]
/// containing each matched node, all of its ancestors (so the reader sees
/// how the match hangs off the root), the matched nodes' direct children,
/// and every edge among the retained nodes.
///
/// Unknown ids in `matches` are ignored.
///
/// # Errors
///
/// Propagates [`ArgumentError`] if the retained subgraph fails the
/// builder's structural checks — impossible for a subgraph of a valid
/// argument, but surfaced rather than panicked on.
pub fn traceability_view(
    argument: &Argument,
    matches: &[NodeId],
) -> Result<Argument, ArgumentError> {
    // Arena-indexed bitmap membership: the whole extraction is O(V+E).
    let mut keep = vec![false; argument.len()];
    for id in matches {
        let Some(idx) = argument.node_idx(id) else {
            continue;
        };
        keep[idx.index()] = true;
        // Ancestors via reverse reachability over the incoming CSR rows.
        let mut stack: Vec<NodeIdx> = vec![idx];
        while let Some(current) = stack.pop() {
            for parent in argument.parents_idx(current) {
                if !keep[parent.index()] {
                    keep[parent.index()] = true;
                    stack.push(parent);
                }
            }
        }
        // Immediate children (the match's own support/context).
        for child in argument.all_children_idx(idx) {
            keep[child.index()] = true;
        }
    }

    let mut builder = Argument::builder(format!("{} (view)", argument.name()));
    for idx in argument.sorted_indices() {
        if keep[idx.index()] {
            builder = builder.node(argument.node_at(idx).clone());
        }
    }
    for (from, to, kind) in argument.edges_idx() {
        if keep[from.index()] && keep[to.index()] {
            builder = builder.edge(
                argument.id_at(from).as_str(),
                argument.id_at(to).as_str(),
                kind,
            );
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use casekit_core::dsl::parse_argument;

    fn sample() -> Argument {
        parse_argument(
            r#"argument "v" {
                goal g1 "top" {
                  strategy s1 "split" {
                    goal g2 "A" { solution e1 "evA" }
                    goal g3 "B" { solution e2 "evB" }
                  }
                }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn view_contains_match_ancestors_and_evidence() {
        let arg = sample();
        let view = traceability_view(&arg, &[NodeId::new("g2")]).unwrap();
        // g2 + ancestors (s1, g1) + child e1 — but not g3/e2.
        assert_eq!(view.len(), 4);
        assert!(view.node(&"g2".into()).is_some());
        assert!(view.node(&"g1".into()).is_some());
        assert!(view.node(&"e1".into()).is_some());
        assert!(view.node(&"g3".into()).is_none());
        assert!(view.node(&"e2".into()).is_none());
        assert!(view.name().contains("view"));
    }

    #[test]
    fn edges_restricted_to_kept_nodes() {
        let arg = sample();
        let view = traceability_view(&arg, &[NodeId::new("g2")]).unwrap();
        assert_eq!(view.edges().len(), 3); // g1->s1, s1->g2, g2->e1
    }

    #[test]
    fn multiple_matches_union() {
        let arg = sample();
        let view = traceability_view(&arg, &[NodeId::new("g2"), NodeId::new("g3")]).unwrap();
        assert_eq!(view.len(), arg.len());
    }

    #[test]
    fn empty_matches_empty_view() {
        let arg = sample();
        let view = traceability_view(&arg, &[]).unwrap();
        assert!(view.is_empty());
    }

    #[test]
    fn unknown_ids_ignored() {
        let arg = sample();
        let view = traceability_view(&arg, &[NodeId::new("nope")]).unwrap();
        assert!(view.is_empty());
    }

    #[test]
    fn view_of_root_is_root_plus_children() {
        let arg = sample();
        let view = traceability_view(&arg, &[NodeId::new("g1")]).unwrap();
        assert_eq!(view.len(), 2); // g1 + s1
    }

    #[test]
    fn dag_ancestors_all_captured() {
        let arg = parse_argument(
            r#"argument "dag" {
                goal g1 "top" {
                  goal g4 "shared" { solution e1 "ev" }
                  goal g2 "left" { ref g4 }
                  goal g3 "right" { ref g4 }
                }
            }"#,
        )
        .unwrap();
        let view = traceability_view(&arg, &[NodeId::new("g4")]).unwrap();
        // g4's ancestors: g2, g3, g1 (both paths).
        assert!(view.node(&"g2".into()).is_some());
        assert!(view.node(&"g3".into()).is_some());
        assert!(view.node(&"g1".into()).is_some());
        assert!(view.node(&"e1".into()).is_some());
    }
}
