//! Synthetic argument generation with seeded fallacies.
//!
//! The experiments need arguments whose defects are *known*: formal
//! fallacies the machine checker provably can or cannot find, and informal
//! fallacies only (simulated) humans can find. The generator builds
//! hazard-breakdown GSN arguments with formal payloads and injects both
//! kinds. It also reconstructs the three Greenwell et al. case-study
//! arguments with exactly the published fallacy counts (3, 10, 2, 4, 5,
//! 5, 16 across the seven kinds — DESIGN.md §5 records the substitution).

use casekit_core::{Argument, FormalPayload, Node, NodeId, NodeKind};
use casekit_fallacies::informal::{CaseStudy, Seeded};
use casekit_fallacies::taxonomy::InformalFallacy;
use casekit_logic::prop::Formula;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why an argument could not be generated from a [`GeneratorConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorError {
    /// The hazard count is too small for the requested defect seeds: the
    /// breakdown needs at least two hazards, and at least one hazard leaf
    /// must survive the seeded `MissingSupport` omissions.
    TooFewHazards {
        /// Hazards requested.
        hazards: usize,
        /// Minimum hazards the requested seeds need.
        required: usize,
    },
}

impl fmt::Display for GeneratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeneratorError::TooFewHazards { hazards, required } => write!(
                f,
                "need at least {required} hazards for the requested seeds, got {hazards}"
            ),
        }
    }
}

impl std::error::Error for GeneratorError {}

/// A machine-detectable defect seeded into the formal skeleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeededFormal {
    /// A leaf restates the root conclusion (begging the question).
    Begging,
    /// Two leaves contradict (incompatible premises).
    Incompatible,
    /// A hazard named in the root has no supporting leaf (conclusion not
    /// entailed).
    MissingSupport,
}

impl SeededFormal {
    /// Whether `finding` is the detection of this seeded defect.
    pub fn matches(&self, finding: &casekit_fallacies::MachineFinding) -> bool {
        use casekit_fallacies::taxonomy::FormalFallacy;
        use casekit_fallacies::MachineFinding as MF;
        match self {
            SeededFormal::Begging => matches!(
                finding,
                MF::Fallacy {
                    fallacy: FormalFallacy::BeggingTheQuestion,
                    ..
                }
            ),
            SeededFormal::Incompatible => matches!(
                finding,
                MF::Fallacy {
                    fallacy: FormalFallacy::IncompatiblePremises,
                    ..
                }
            ),
            SeededFormal::MissingSupport => {
                matches!(finding, MF::ConclusionNotEntailed)
            }
        }
    }
}

/// Generator parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of hazard sub-goals.
    pub hazards: usize,
    /// Formal defects to seed.
    pub formal: Vec<SeededFormal>,
    /// Informal fallacies to seed (attached to nodes round-robin).
    pub informal: Vec<InformalFallacy>,
    /// RNG seed (controls which nodes receive informal seeds).
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            hazards: 8,
            formal: Vec::new(),
            informal: Vec::new(),
            seed: 1,
        }
    }
}

/// A generated argument with its ground truth.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The argument plus seeded informal fallacies.
    pub case: CaseStudy,
    /// Seeded formal defects.
    pub formal: Vec<SeededFormal>,
}

/// Generates a hazard-breakdown argument with the requested defects.
///
/// # Errors
///
/// [`GeneratorError::TooFewHazards`] when the hazard count cannot host
/// the requested seeds (fewer than two hazards, or so many seeded
/// `MissingSupport` omissions that no hazard leaf would remain).
pub fn generate(config: &GeneratorConfig) -> Result<Generated, GeneratorError> {
    let missing = config
        .formal
        .iter()
        .filter(|f| **f == SeededFormal::MissingSupport)
        .count();
    let required = (missing + 1).max(2);
    if config.hazards < required {
        return Err(GeneratorError::TooFewHazards {
            hazards: config.hazards,
            required,
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let hazard_atoms: Vec<String> = (0..config.hazards).map(|i| format!("h{i}")).collect();

    // Root claims every hazard handled; one seeded MissingSupport removes
    // a leaf while keeping the root claim.
    let root_formula = Formula::conj(hazard_atoms.iter().map(Formula::atom));

    let mut builder = Argument::builder(format!("generated-{}", config.seed))
        .node(
            Node::new(
                "g_root",
                NodeKind::Goal,
                "All identified hazards are mitigated",
            )
            .with_formal(FormalPayload::Prop(root_formula.clone())),
        )
        .add(
            "s_haz",
            NodeKind::Strategy,
            "Argue over each identified hazard",
        )
        .supported_by("g_root", "s_haz");

    for (i, atom) in hazard_atoms.iter().enumerate() {
        // Seed MissingSupport by omitting the last `missing` hazard goals.
        if i + missing >= config.hazards {
            continue;
        }
        let gid = format!("g_h{i}");
        let eid = format!("e_h{i}");
        builder = builder
            .node(
                Node::new(
                    gid.as_str(),
                    NodeKind::Goal,
                    format!("Hazard {i} is mitigated"),
                )
                .with_formal(FormalPayload::Prop(Formula::atom(atom))),
            )
            .supported_by("s_haz", &gid)
            .node(Node::new(
                eid.as_str(),
                NodeKind::Solution,
                format!("Mitigation evidence for hazard {i}"),
            ))
            .supported_by(&gid, &eid);
    }

    // Begging: a leaf goal restating the root conclusion.
    if config.formal.contains(&SeededFormal::Begging) {
        builder = builder
            .node(
                Node::new("g_beg", NodeKind::Goal, "Safety is assured (assertion)")
                    .with_formal(FormalPayload::Prop(root_formula)),
            )
            .supported_by("s_haz", "g_beg")
            .add("e_beg", NodeKind::Solution, "Management assertion")
            .supported_by("g_beg", "e_beg");
    }

    // Incompatible premises: a leaf claiming ~h0.
    if config.formal.contains(&SeededFormal::Incompatible) {
        builder = builder
            .node(
                Node::new(
                    "g_neg",
                    NodeKind::Goal,
                    "Hazard 0 cannot be mitigated (legacy analysis)",
                )
                .with_formal(FormalPayload::Prop(Formula::atom("h0").not())),
            )
            .supported_by("s_haz", "g_neg")
            .add("e_neg", NodeKind::Solution, "Legacy analysis memo")
            .supported_by("g_neg", "e_neg");
    }

    let argument = builder.build().expect("generated ids are unique");

    // Attach informal seeds to shuffled candidate nodes.
    let mut candidates: Vec<NodeId> = argument.nodes().map(|n| n.id.clone()).collect();
    candidates.shuffle(&mut rng);
    let seeded = config
        .informal
        .iter()
        .enumerate()
        .map(|(i, kind)| {
            let node = candidates[i % candidates.len()].clone();
            Seeded::new(*kind, node.as_str(), format!("seeded {kind}"))
        })
        .collect();

    Ok(Generated {
        case: CaseStudy::new(argument, seeded),
        formal: config.formal.clone(),
    })
}

/// Reconstructions of the three case-study arguments of Greenwell et al.
/// with exactly the published per-kind counts (column sums 3, 10, 2, 4,
/// 5, 5, 16).
pub fn greenwell_case_studies() -> Vec<CaseStudy> {
    // Per-argument seeding plan: rows = case studies, columns =
    // GREENWELL_KINDS order. Column sums match GREENWELL_COUNTS.
    const PLAN: [[usize; 7]; 3] = [
        [1, 4, 0, 2, 2, 1, 5],
        [1, 3, 1, 1, 2, 2, 5],
        [1, 3, 1, 1, 1, 2, 6],
    ];
    PLAN.iter()
        .enumerate()
        .map(|(i, row)| {
            let mut informal = Vec::new();
            for (kind, count) in InformalFallacy::GREENWELL_KINDS.iter().zip(row) {
                informal.extend(std::iter::repeat_n(*kind, *count));
            }
            let generated = generate(&GeneratorConfig {
                hazards: 10,
                formal: Vec::new(),
                informal,
                seed: 0xB10C + i as u64,
            })
            .expect("static case-study config is valid");
            generated.case
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use casekit_fallacies::checker::check_argument;

    #[test]
    fn clean_generation_passes_machine_check() {
        let g = generate(&GeneratorConfig::default()).unwrap();
        let report = check_argument(&g.case.argument);
        assert!(report.is_clean(), "{:?}", report.findings);
        assert!(casekit_core::gsn::check(&g.case.argument).is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let config = GeneratorConfig {
            informal: vec![InformalFallacy::RedHerring],
            ..GeneratorConfig::default()
        };
        let a = generate(&config).unwrap();
        let b = generate(&config).unwrap();
        assert_eq!(a.case, b.case);
    }

    #[test]
    fn begging_seed_is_machine_detected() {
        let g = generate(&GeneratorConfig {
            formal: vec![SeededFormal::Begging],
            ..GeneratorConfig::default()
        })
        .unwrap();
        let report = check_argument(&g.case.argument);
        assert!(report
            .findings
            .iter()
            .any(|f| SeededFormal::Begging.matches(f)));
    }

    #[test]
    fn incompatible_seed_is_machine_detected() {
        let g = generate(&GeneratorConfig {
            formal: vec![SeededFormal::Incompatible],
            ..GeneratorConfig::default()
        })
        .unwrap();
        let report = check_argument(&g.case.argument);
        assert!(report
            .findings
            .iter()
            .any(|f| SeededFormal::Incompatible.matches(f)));
    }

    #[test]
    fn missing_support_seed_is_machine_detected() {
        let g = generate(&GeneratorConfig {
            formal: vec![SeededFormal::MissingSupport],
            ..GeneratorConfig::default()
        })
        .unwrap();
        let report = check_argument(&g.case.argument);
        assert!(report
            .findings
            .iter()
            .any(|f| SeededFormal::MissingSupport.matches(f)));
    }

    #[test]
    fn incompatible_premises_mask_missing_support() {
        // A logically honest subtlety: once the premises are inconsistent
        // they entail *everything*, so `ConclusionNotEntailed` cannot fire.
        // Combining the two seeds therefore hides the missing support —
        // the reason the experiments seed one defect kind per argument.
        let g = generate(&GeneratorConfig {
            hazards: 6,
            formal: vec![SeededFormal::Incompatible, SeededFormal::MissingSupport],
            informal: vec![InformalFallacy::Equivocation],
            seed: 3,
        })
        .unwrap();
        let report = check_argument(&g.case.argument);
        assert!(report
            .findings
            .iter()
            .any(|f| SeededFormal::Incompatible.matches(f)));
        assert!(!report
            .findings
            .iter()
            .any(|f| SeededFormal::MissingSupport.matches(f)));
    }

    #[test]
    fn each_seed_detected_in_isolation() {
        for seed_kind in [
            SeededFormal::Begging,
            SeededFormal::Incompatible,
            SeededFormal::MissingSupport,
        ] {
            let g = generate(&GeneratorConfig {
                hazards: 6,
                formal: vec![seed_kind],
                informal: vec![InformalFallacy::Equivocation],
                seed: 3,
            })
            .unwrap();
            let report = check_argument(&g.case.argument);
            assert!(
                report.findings.iter().any(|f| seed_kind.matches(f)),
                "seed {seed_kind:?} missed in isolation"
            );
        }
    }

    #[test]
    fn machine_never_reports_seeded_informal_fallacies() {
        // The §IV-C theorem, at the system level: whatever informal
        // fallacies are seeded, the machine report's findings relate only
        // to the formal skeleton — here, a formally clean one.
        let g = generate(&GeneratorConfig {
            informal: vec![
                InformalFallacy::RedHerring,
                InformalFallacy::Equivocation,
                InformalFallacy::HastyInductiveGeneralisation,
                InformalFallacy::OmissionOfKeyEvidence,
            ],
            ..GeneratorConfig::default()
        })
        .unwrap();
        let report = check_argument(&g.case.argument);
        assert!(report.is_clean());
        assert_eq!(g.case.seeded.len(), 4);
    }

    #[test]
    fn greenwell_counts_reproduced() {
        let cases = greenwell_case_studies();
        assert_eq!(cases.len(), 3);
        let mut totals = std::collections::BTreeMap::new();
        for case in &cases {
            for (kind, count) in case.counts() {
                *totals.entry(kind).or_insert(0usize) += count;
            }
        }
        for (kind, expected) in InformalFallacy::GREENWELL_KINDS
            .iter()
            .zip(InformalFallacy::GREENWELL_COUNTS)
        {
            assert_eq!(totals[kind], expected, "count mismatch for {kind}");
        }
        let grand: usize = totals.values().sum();
        assert_eq!(grand, 45);
    }

    #[test]
    fn greenwell_arguments_are_formally_clean() {
        // None of Greenwell's 45 findings was a formal fallacy; our
        // reconstructions honour that — the machine finds nothing.
        for case in greenwell_case_studies() {
            let report = check_argument(&case.argument);
            assert!(report.is_clean());
        }
    }

    #[test]
    fn too_few_hazards_is_an_error() {
        assert_eq!(
            generate(&GeneratorConfig {
                hazards: 1,
                ..GeneratorConfig::default()
            })
            .unwrap_err(),
            GeneratorError::TooFewHazards {
                hazards: 1,
                required: 2
            }
        );
    }

    #[test]
    fn hazards_must_outnumber_missing_support_seeds() {
        // Three seeded omissions over three hazards would leave the root
        // with no hazard leaf at all: an error, not a degenerate argument.
        let err = generate(&GeneratorConfig {
            hazards: 3,
            formal: vec![SeededFormal::MissingSupport; 3],
            ..GeneratorConfig::default()
        })
        .unwrap_err();
        assert_eq!(
            err,
            GeneratorError::TooFewHazards {
                hazards: 3,
                required: 4
            }
        );
        assert!(err.to_string().contains("at least 4"));
        // One surviving hazard leaf is enough.
        assert!(generate(&GeneratorConfig {
            hazards: 4,
            formal: vec![SeededFormal::MissingSupport; 3],
            ..GeneratorConfig::default()
        })
        .is_ok());
    }
}
