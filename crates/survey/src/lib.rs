//! # casekit-survey
//!
//! The systematic literature survey of Graydon (DSN 2015) §III, as an
//! executable pipeline: an encoded corpus, the two-phase selection
//! criteria, per-paper characterisation, and generators for Table I and
//! the paper's in-text aggregate claims.
//!
//! **Substitution note** (see DESIGN.md): the paper's raw searches returned
//! tens of thousands of hits; we encode the 72 unique phase-1 papers (the
//! 21 characterised real papers by citation, the rest synthesised with
//! library/domain attributions consistent with the published marginals)
//! plus a pool of synthetic phase-1 rejects, so both filters run for real.
//!
//! ```
//! use casekit_survey::{corpus, selection, tables};
//! let papers = corpus::raw_pool();
//! let phase1 = selection::phase1(&papers);
//! let table = tables::table_i(&phase1);
//! assert_eq!(table.unique_total, 72);
//! ```

#![forbid(unsafe_code)]

pub mod characterise;
pub mod corpus;
pub mod paper;
pub mod selection;
pub mod tables;

pub use paper::{Attribution, Domain, Library, Paper};
