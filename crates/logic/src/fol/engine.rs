//! SLD resolution over Horn knowledge bases.

use super::term::{Clause, Term};
use super::unify::{unify, Substitution};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Limits on a resolution run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolveConfig {
    /// Maximum derivation depth (resolution steps along one branch).
    pub max_depth: usize,
    /// Maximum total unification attempts across the whole search.
    pub max_work: usize,
    /// Maximum number of solutions to collect.
    pub max_solutions: usize,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig {
            max_depth: 64,
            max_work: 100_000,
            max_solutions: 16,
        }
    }
}

/// One answer to a query: bindings for the query's own variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// Bindings projected onto the query's variables.
    pub bindings: Substitution,
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bindings)
    }
}

/// Outcome of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveOutcome {
    /// The solutions found, in discovery order.
    pub solutions: Vec<Solution>,
    /// True when the search space was cut off by depth or work limits
    /// (so absence of solutions is *not* a proof of failure).
    pub truncated: bool,
}

impl SolveOutcome {
    /// Whether at least one solution was found.
    pub fn succeeded(&self) -> bool {
        !self.solutions.is_empty()
    }
}

/// A Horn-clause knowledge base with an SLD-resolution query engine.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnowledgeBase {
    clauses: Vec<Clause>,
}

impl KnowledgeBase {
    /// An empty knowledge base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a clause.
    pub fn add(&mut self, clause: Clause) {
        self.clauses.push(clause);
    }

    /// The clauses in insertion order.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the knowledge base is empty.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Solves `goal` under the default configuration.
    pub fn solve(&self, goal: &Term) -> SolveOutcome {
        self.solve_with(goal, SolveConfig::default())
    }

    /// Solves `goal` under an explicit configuration.
    ///
    /// Queries compile the knowledge base onto the interned plane
    /// ([`super::InternedKb`]) and run the iterative indexed engine.
    /// For repeated queries against one knowledge base, compile once
    /// with [`super::InternedKb::compile`] and query that instead.
    pub fn solve_with(&self, goal: &Term, config: SolveConfig) -> SolveOutcome {
        super::interned::InternedKb::compile(self).solve_with(goal, config)
    }

    /// Solves `goal` with the seed recursive engine (the differential
    /// oracle): clause-scan dispatch, name-plane renaming, map-backed
    /// substitutions, and call-stack recursion.
    pub fn solve_seed(&self, goal: &Term) -> SolveOutcome {
        self.solve_seed_with(goal, SolveConfig::default())
    }

    /// Seed-engine counterpart of [`KnowledgeBase::solve_with`].
    pub fn solve_seed_with(&self, goal: &Term, config: SolveConfig) -> SolveOutcome {
        let mut search = Search {
            kb: self,
            config,
            work: 0,
            fresh: 0,
            solutions: Vec::new(),
            truncated: false,
            query_vars: goal.variables(),
        };
        search.prove(std::slice::from_ref(goal), &Substitution::new(), 0);
        SolveOutcome {
            solutions: search.solutions,
            truncated: search.truncated,
        }
    }

    /// True when the goal has at least one derivation (under defaults).
    ///
    /// This is the "formal validation" of Figure 1 — derivability, which is
    /// soundness with respect to the *premises*, not the world.
    pub fn proves(&self, goal: &Term) -> bool {
        self.solve(goal).succeeded()
    }
}

impl FromIterator<Clause> for KnowledgeBase {
    fn from_iter<I: IntoIterator<Item = Clause>>(iter: I) -> Self {
        KnowledgeBase {
            clauses: iter.into_iter().collect(),
        }
    }
}

impl Extend<Clause> for KnowledgeBase {
    fn extend<I: IntoIterator<Item = Clause>>(&mut self, iter: I) {
        self.clauses.extend(iter);
    }
}

impl fmt::Display for KnowledgeBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.clauses {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

struct Search<'a> {
    kb: &'a KnowledgeBase,
    config: SolveConfig,
    work: usize,
    fresh: usize,
    solutions: Vec<Solution>,
    truncated: bool,
    query_vars: std::collections::BTreeSet<std::sync::Arc<str>>,
}

impl Search<'_> {
    /// Depth-first SLD: prove all `goals` under `subst`.
    fn prove(&mut self, goals: &[Term], subst: &Substitution, depth: usize) {
        if self.solutions.len() >= self.config.max_solutions {
            return;
        }
        let (goal, rest) = match goals.split_first() {
            None => {
                let bindings = subst.project(self.query_vars.iter().cloned());
                let solution = Solution { bindings };
                if !self.solutions.contains(&solution) {
                    self.solutions.push(solution);
                }
                return;
            }
            Some((g, r)) => (g.clone(), r),
        };
        if depth >= self.config.max_depth {
            self.truncated = true;
            return;
        }
        for clause in &self.kb.clauses {
            self.work += 1;
            if self.work > self.config.max_work {
                self.truncated = true;
                return;
            }
            self.fresh += 1;
            let renamed = clause.rename_variables(self.fresh);
            if let Some(next_subst) = unify(&goal, &renamed.head, subst) {
                let mut next_goals = renamed.body.clone();
                next_goals.extend(rest.iter().cloned());
                self.prove(&next_goals, &next_subst, depth + 1);
                if self.solutions.len() >= self.config.max_solutions {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::parser::{parse_program, parse_query};
    use super::*;

    fn kb(src: &str) -> KnowledgeBase {
        parse_program(src).unwrap()
    }

    #[test]
    fn fact_lookup() {
        let kb = kb("likes(alice, logic).");
        assert!(kb.proves(&parse_query("likes(alice, logic)").unwrap()));
        assert!(!kb.proves(&parse_query("likes(bob, logic)").unwrap()));
    }

    #[test]
    fn variable_answers_enumerated() {
        let kb = kb("parent(tom, bob). parent(tom, liz). parent(bob, ann).");
        let out = kb.solve(&parse_query("parent(tom, X)").unwrap());
        assert_eq!(out.solutions.len(), 2);
        let answers: Vec<String> = out.solutions.iter().map(|s| s.to_string()).collect();
        assert!(answers.contains(&"{X = bob}".to_string()));
        assert!(answers.contains(&"{X = liz}".to_string()));
        assert!(!out.truncated);
    }

    #[test]
    fn recursive_rules() {
        let kb = kb("parent(tom, bob). parent(bob, ann). parent(ann, joe).\n\
                     ancestor(X, Y) :- parent(X, Y).\n\
                     ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).");
        assert!(kb.proves(&parse_query("ancestor(tom, joe)").unwrap()));
        assert!(!kb.proves(&parse_query("ancestor(joe, tom)").unwrap()));
        let out = kb.solve(&parse_query("ancestor(tom, X)").unwrap());
        assert_eq!(out.solutions.len(), 3);
    }

    #[test]
    fn desert_bank_figure_1_derivation_succeeds() {
        // The paper's Figure 1: formally valid, informally fallacious.
        let kb = super::super::desert_bank_kb();
        let goal = parse_query("adjacent(desert_bank, river)").unwrap();
        assert!(
            kb.proves(&goal),
            "Figure 1 must 'prove' the equivocating conclusion"
        );
    }

    #[test]
    fn desert_bank_negative_queries_fail() {
        let kb = super::super::desert_bank_kb();
        assert!(!kb.proves(&parse_query("adjacent(river, desert_bank)").unwrap()));
        assert!(!kb.proves(&parse_query("is_a(bank, desert_bank)").unwrap()));
    }

    #[test]
    fn left_recursion_truncates_rather_than_hanging() {
        let kb = kb("p(X) :- p(X).");
        let out = kb.solve(&parse_query("p(a)").unwrap());
        assert!(!out.succeeded());
        assert!(out.truncated);
    }

    #[test]
    fn work_budget_respected() {
        let kb = kb("e(a, b). e(b, c). e(c, a).\n\
                     path(X, Y) :- e(X, Y).\n\
                     path(X, Y) :- e(X, Z), path(Z, Y).");
        let out = kb.solve_with(
            &parse_query("path(a, X)").unwrap(),
            SolveConfig {
                max_depth: 1_000_000,
                max_work: 50,
                max_solutions: 1_000,
            },
        );
        assert!(out.truncated);
    }

    #[test]
    fn max_solutions_caps_enumeration() {
        let kb = kb("n(a). n(b). n(c). n(d).");
        let out = kb.solve_with(
            &parse_query("n(X)").unwrap(),
            SolveConfig {
                max_solutions: 2,
                ..SolveConfig::default()
            },
        );
        assert_eq!(out.solutions.len(), 2);
    }

    #[test]
    fn conjunctive_queries_via_rule() {
        let kb = kb("age(alice, young). role(alice, pilot). \n\
                     ok(X) :- age(X, young), role(X, pilot).");
        assert!(kb.proves(&parse_query("ok(alice)").unwrap()));
        assert!(!kb.proves(&parse_query("ok(bob)").unwrap()));
    }

    #[test]
    fn ground_solution_has_empty_bindings() {
        let kb = kb("f(a).");
        let out = kb.solve(&parse_query("f(a)").unwrap());
        assert_eq!(out.solutions.len(), 1);
        assert!(out.solutions[0].bindings.is_empty());
    }

    #[test]
    fn kb_display_round_trips_through_parser() {
        let original = kb("is_a(desert_bank, bank).\n\
                           adjacent(bank, river).\n\
                           adjacent(X, Y) :- is_a(X, Z), adjacent(Z, Y).");
        let reparsed = parse_program(&original.to_string()).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn default_engine_matches_seed_oracle() {
        let kb = kb("parent(tom, bob). parent(tom, liz). parent(bob, ann).\n\
                     ancestor(X, Y) :- parent(X, Y).\n\
                     ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).");
        for query in ["ancestor(tom, X)", "parent(X, Y)", "ancestor(X, ann)"] {
            let goal = parse_query(query).unwrap();
            assert_eq!(kb.solve(&goal), kb.solve_seed(&goal), "query {query}");
        }
    }

    #[test]
    fn duplicate_solutions_deduplicated() {
        // Two derivations of the same answer yield one solution.
        let kb = kb("p(a). q(a). r(X) :- p(X). r(X) :- q(X).");
        let out = kb.solve(&parse_query("r(a)").unwrap());
        assert_eq!(out.solutions.len(), 1);
    }
}
