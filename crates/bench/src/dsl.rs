//! DSL-frontend benchmark harness: corpus ingestion through the
//! error-recovering parser, measured against the abort-on-first-error
//! seed parser.
//!
//! The corpus is a deterministic sweep of synthetic `.case` files in
//! which six of every eight files carry a seeded defect — a truncated
//! block, a typo'd keyword, a malformed formula payload, an
//! unterminated string, a stray character, or a duplicate-id plus
//! dangling-`ref` pair — the mix a real ingestion pipeline sees. The
//! baseline arm is a serial loop over
//! [`casekit_core::dsl::parse_argument_seed`]: one abort-at-first-error
//! parse per file, which is all the seed frontend can offer. The engine
//! arm is [`casekit_service::CorpusLoader`]: the recovering parser over
//! every file, every syntax error mapped to a span-carrying `CK2xx`
//! diagnostic, sharded across `casekit-runtime` workers.
//!
//! `bench_dsl_json` emits the comparison as `BENCH_dsl.json` (via
//! `repro dsl`), with two correctness flags folded into one
//! `diagnostics_roundtrip` bit: the seed containment property (on every
//! file the seed accepts, the engine is clean and argument-identical;
//! on every file the seed rejects, the seed's error message appears in
//! the engine's diagnostic stream) and worker invariance (the
//! diagnostic streams at one, two, and the full worker count are
//! byte-identical).

use casekit_core::dsl::parse_argument_seed;
use casekit_runtime::Runtime;
use casekit_service::{CorpusLoader, LoadedCase};
use serde::Serialize;
use std::fmt::Write as _;

/// Corpus shape: `files` synthetic cases of roughly `nodes_per_file`
/// declarations each, six defect classes striped across them.
#[derive(Debug, Clone)]
pub struct DslBenchConfig {
    /// Number of `.case` files in the corpus.
    pub files: usize,
    /// Approximate node declarations per file (≥ 4).
    pub nodes_per_file: usize,
}

/// The full-scale corpus behind the committed `BENCH_dsl.json`: ten
/// thousand files.
pub fn scaled_config() -> DslBenchConfig {
    DslBenchConfig {
        files: 10_000,
        nodes_per_file: 12,
    }
}

/// The CI smoke corpus (`repro dsl --smoke`): small enough to finish in
/// seconds, large enough that every defect class appears over a hundred
/// times.
pub fn smoke_config() -> DslBenchConfig {
    DslBenchConfig {
        files: 960,
        nodes_per_file: 8,
    }
}

/// A well-formed file: a formalised root goal over a context and a
/// strategy over a striped mix of propositional, temporal, and
/// undeveloped premise declarations.
fn valid_file(k: usize, nodes: usize) -> String {
    let mut src = format!("argument \"case-{k}\" {{\n");
    src.push_str("  goal n0 \"top-level claim\" formal \"root_claim\" {\n");
    src.push_str("    context n1 \"operating envelope\"\n");
    src.push_str("    strategy n2 \"argue over premises\" {\n");
    for i in 3..nodes.max(4) {
        let _ = match i % 3 {
            0 => writeln!(
                src,
                "      goal n{i} \"premise {i}\" formal \"p{i} & (p{i} -> q{i})\" {{ solution s{i} \"evidence report {i}\" }}"
            ),
            1 => writeln!(
                src,
                "      goal n{i} \"liveness premise {i}\" temporal \"G (req{i} -> F ack{i})\" {{ solution s{i} \"trace log {i}\" }}"
            ),
            _ => writeln!(src, "      claim n{i} \"informal claim {i}\" undeveloped"),
        };
    }
    src.push_str("    }\n  }\n}\n");
    src
}

/// Builds the synthetic ingestion corpus. File `k` carries defect class
/// `k % 8`: classes 0 and 4 are valid; 1 is truncated at two thirds of
/// its length; 2 typos the root keyword (`gaol`); 3 breaks the root's
/// formal payload; 5 drops the final closing quote (an unterminated
/// string that swallows the rest of the file); 6 inserts a stray `$`;
/// 7 appends a duplicate node id and a dangling `ref`.
pub fn dsl_corpus(config: &DslBenchConfig) -> Vec<String> {
    assert!(config.nodes_per_file >= 4, "at least four nodes per file");
    (0..config.files)
        .map(|k| {
            let mut src = valid_file(k, config.nodes_per_file);
            match k % 8 {
                1 => {
                    let mut cut = src.len() * 2 / 3;
                    while !src.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    src.truncate(cut);
                }
                2 => src = src.replacen("goal n0", "gaol n0", 1),
                3 => src = src.replacen("formal \"root_claim\"", "formal \"root_claim &\"", 1),
                5 => {
                    let last_quote = src.rfind('"').expect("every file has strings");
                    src.remove(last_quote);
                }
                6 => src = src.replacen("  goal n0", "  $ goal n0", 1),
                7 => {
                    let body =
                        "  goal n0 \"duplicate of the root\"\n  goal nx \"dangler\" { ref zz }\n";
                    let close = src.rfind('}').expect("every file has braces");
                    src.insert_str(close, body);
                }
                _ => {}
            }
            src
        })
        .collect()
}

/// The baseline arm: a serial loop of abort-on-first-error seed parses.
/// Returns how many files parsed (the rest died at their first defect).
pub fn seed_parse_corpus(sources: &[String]) -> usize {
    sources
        .iter()
        .filter(|src| parse_argument_seed(src).is_ok())
        .count()
}

/// The differential half of the roundtrip flag: every seed-accepted
/// file must load clean and argument-identical, and every seed-rejected
/// file's abort message must appear in the recovered diagnostic stream.
fn seed_containment(sources: &[String], loaded: &[LoadedCase]) -> bool {
    sources
        .iter()
        .zip(loaded)
        .all(|(src, case)| match parse_argument_seed(src) {
            Ok(seed) => case.is_clean() && case.argument.as_ref() == Some(&seed),
            Err(abort) => case
                .diagnostics
                .iter()
                .any(|d| d.message.contains(&abort.message)),
        })
}

/// The measured comparison, serialized into `BENCH_dsl.json`.
#[derive(Debug, Clone, Serialize)]
pub struct DslBenchReport {
    /// Files in the corpus.
    pub files: usize,
    /// Approximate node declarations per file.
    pub nodes_per_file: usize,
    /// Total `.case` source bytes ingested.
    pub source_bytes: usize,
    /// Files carrying a seeded defect (six of every eight).
    pub defective_files: usize,
    /// Files the recovering engine still built an argument for.
    pub recovered_arguments: usize,
    /// Total span-carrying diagnostics the engine emitted.
    pub diagnostics: usize,
    /// Worker threads used for the parallel run.
    pub workers: usize,
    /// Cores the host exposed during the measurement (bounds
    /// `thread_speedup`).
    pub host_parallelism: usize,
    /// Serial seed-parser loop (abort at first error), milliseconds,
    /// best of several runs.
    pub baseline_ms: f64,
    /// Recovering loader with one worker, milliseconds, best of several
    /// runs.
    pub serial_ms: f64,
    /// Recovering loader with the full worker count, milliseconds, best
    /// of several runs.
    pub parallel_ms: f64,
    /// Corpus megabytes per second through the seed baseline.
    pub baseline_mb_per_s: f64,
    /// Corpus megabytes per second through the parallel engine.
    pub engine_mb_per_s: f64,
    /// baseline / parallel — end-to-end, noting the engine does strictly
    /// more work per defective file (full recovery, not first-error
    /// abort).
    pub speedup: f64,
    /// serial / parallel — the worker contribution alone.
    pub thread_speedup: f64,
    /// Seed containment (clean files identical, abort messages present
    /// in the recovered streams) and worker-count invariance of every
    /// diagnostic byte.
    pub diagnostics_roundtrip: bool,
}

/// Runs the comparison on the full-scale corpus.
pub fn run_dsl_bench(workers: usize) -> DslBenchReport {
    run_dsl_bench_with(&scaled_config(), workers)
}

/// Runs the comparison on an explicit corpus shape (the smoke gate
/// passes [`smoke_config`]).
pub fn run_dsl_bench_with(config: &DslBenchConfig, workers: usize) -> DslBenchReport {
    let sources = dsl_corpus(config);
    let source_bytes: usize = sources.iter().map(String::len).sum();
    let loader = CorpusLoader::new();

    let (baseline_ms, _parsed) = crate::best_of_ms(3, || seed_parse_corpus(&sources));
    let serial_runtime = Runtime::serial();
    let (serial_ms, serial_loaded) =
        crate::best_of_ms(3, || loader.load(&sources, &serial_runtime));
    let runtime = Runtime::with_workers(workers);
    let (parallel_ms, parallel_loaded) = crate::best_of_ms(3, || loader.load(&sources, &runtime));

    // Correctness: worker invariance across one, two, and `workers`
    // threads, plus the seed containment property on every file.
    let halfway = loader.load(&sources, &Runtime::with_workers(2));
    let streams_agree = {
        let diags = |cases: &[LoadedCase]| -> Vec<_> {
            cases
                .iter()
                .map(|c| c.diagnostics.clone())
                .collect::<Vec<_>>()
        };
        diags(&serial_loaded) == diags(&parallel_loaded) && diags(&serial_loaded) == diags(&halfway)
    };
    let diagnostics_roundtrip = streams_agree && seed_containment(&sources, &serial_loaded);

    let mb = source_bytes as f64 / 1e6;
    DslBenchReport {
        files: sources.len(),
        nodes_per_file: config.nodes_per_file,
        source_bytes,
        defective_files: sources.len() - sources.len().div_ceil(4),
        recovered_arguments: serial_loaded
            .iter()
            .filter(|c| c.argument.is_some())
            .count(),
        diagnostics: serial_loaded.iter().map(|c| c.diagnostics.len()).sum(),
        workers: runtime.workers,
        host_parallelism: Runtime::host_parallelism(),
        baseline_ms,
        serial_ms,
        parallel_ms,
        baseline_mb_per_s: mb / (baseline_ms / 1e3).max(1e-9),
        engine_mb_per_s: mb / (parallel_ms / 1e3).max(1e-9),
        speedup: baseline_ms / parallel_ms.max(1e-9),
        thread_speedup: serial_ms / parallel_ms.max(1e-9),
        diagnostics_roundtrip,
    }
}

/// Renders the report as JSON (the `BENCH_dsl.json` artifact).
pub fn bench_dsl_json(report: &DslBenchReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

/// Human-readable summary for the repro binary.
pub fn render_report(report: &DslBenchReport) -> String {
    format!(
        "dsl ingestion over {} files ({} defective, {} KiB, {} diagnostics, {} recovered)\n\
           seed parser (serial, abort at first error):  {:>10.3} ms ({:>7.1} MB/s)\n\
           recovering loader, 1 worker:                 {:>10.3} ms\n\
           recovering loader, {} workers ({} cores):    {:>10.3} ms ({:>7.1} MB/s)\n\
           speedup: {:.2}x (threads alone: {:.2}x)   diagnostics roundtrip: {}\n",
        report.files,
        report.defective_files,
        report.source_bytes / 1024,
        report.diagnostics,
        report.recovered_arguments,
        report.baseline_ms,
        report.baseline_mb_per_s,
        report.serial_ms,
        report.workers,
        report.host_parallelism,
        report.parallel_ms,
        report.engine_mb_per_s,
        report.speedup,
        report.thread_speedup,
        report.diagnostics_roundtrip
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use casekit_analysis::LintCode;

    #[test]
    fn corpus_defect_classes_produce_their_codes() {
        let sources = dsl_corpus(&DslBenchConfig {
            files: 8,
            nodes_per_file: 6,
        });
        let loaded = CorpusLoader::new().load(&sources, &Runtime::serial());
        let has = |k: usize, code: LintCode| loaded[k].diagnostics.iter().any(|d| d.code == code);
        assert!(loaded[0].is_clean() && loaded[4].is_clean());
        assert!(!loaded[1].is_clean(), "truncation errs");
        assert!(has(2, LintCode::UnknownKeyword));
        assert!(has(3, LintCode::MalformedPayload));
        assert!(has(5, LintCode::UnterminatedString));
        assert!(has(6, LintCode::SyntaxGeneral), "stray `$`");
        assert!(has(7, LintCode::InvalidStructure));
        // Every diagnostic in the corpus carries a span.
        for case in &loaded {
            assert!(case.diagnostics.iter().all(|d| d.span.is_some()));
        }
    }

    #[test]
    fn roundtrip_holds_on_a_small_corpus() {
        let sources = dsl_corpus(&DslBenchConfig {
            files: 64,
            nodes_per_file: 7,
        });
        let loaded = CorpusLoader::new().load(&sources, &Runtime::serial());
        assert!(seed_containment(&sources, &loaded));
        // Valid files are exactly the 0/4 stripes.
        let parsed = seed_parse_corpus(&sources);
        assert_eq!(parsed, 64 / 4);
    }

    #[test]
    fn report_json_has_the_gate_fields() {
        let report = run_dsl_bench_with(
            &DslBenchConfig {
                files: 48,
                nodes_per_file: 5,
            },
            2,
        );
        assert!(report.diagnostics_roundtrip);
        assert_eq!(report.files, 48);
        assert!(report.recovered_arguments > report.files / 4);
        let json = bench_dsl_json(&report);
        assert!(json.contains("\"diagnostics_roundtrip\": true"));
        assert!(json.contains("\"engine_mb_per_s\""));
        assert!(render_report(&report).contains("diagnostics roundtrip: true"));
    }
}
