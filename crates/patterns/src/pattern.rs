//! Argument patterns and checked instantiation.

use crate::binding::{type_check, Binding, ParamType, ParamValue, TypeError};
use casekit_core::{Argument, EdgeKind, Node, NodeKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Multiplicity of a pattern edge (GSN pattern notation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Multiplicity {
    /// Exactly one instance.
    One,
    /// Zero or one instance, controlled by a boolean-ish binding: present
    /// iff the named parameter is bound.
    Optional {
        /// Parameter whose presence enables the edge.
        param: String,
    },
    /// One instance per element of the named list parameter; within the
    /// expanded subtree, `{var}` is bound to the element.
    ForEach {
        /// The list parameter iterated over.
        over: String,
        /// The loop-variable placeholder.
        var: String,
    },
}

/// A template node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternNode {
    /// Template-local id.
    pub id: String,
    /// Node kind in the instantiated argument.
    pub kind: NodeKind,
    /// Text with `{placeholder}`s.
    pub template: String,
}

/// A template edge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternEdge {
    /// Parent template node.
    pub from: String,
    /// Child template node.
    pub to: String,
    /// Relationship kind.
    pub kind: EdgeKind,
    /// Multiplicity.
    pub multiplicity: Multiplicity,
}

/// Errors from pattern instantiation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstantiationError {
    /// A binding failed type checking.
    Type(TypeError),
    /// A declared parameter was not bound.
    Unbound {
        /// The parameter name.
        param: String,
    },
    /// A binding names an undeclared parameter.
    Undeclared {
        /// The parameter name.
        param: String,
    },
    /// A template placeholder has no corresponding declared parameter.
    UnknownPlaceholder {
        /// The placeholder name.
        placeholder: String,
        /// The node whose template used it.
        node: String,
    },
    /// A `ForEach` edge's `over` parameter is not a list.
    NotAList {
        /// The parameter name.
        param: String,
    },
    /// The pattern's graph is malformed (edge endpoints missing).
    Malformed(String),
}

impl fmt::Display for InstantiationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstantiationError::Type(e) => write!(f, "{e}"),
            InstantiationError::Unbound { param } => {
                write!(f, "parameter `{param}` was not instantiated")
            }
            InstantiationError::Undeclared { param } => {
                write!(f, "binding for undeclared parameter `{param}`")
            }
            InstantiationError::UnknownPlaceholder { placeholder, node } => write!(
                f,
                "template node `{node}` uses undeclared placeholder `{{{placeholder}}}`"
            ),
            InstantiationError::NotAList { param } => {
                write!(f, "`{param}` must be bound to a list for ForEach expansion")
            }
            InstantiationError::Malformed(d) => write!(f, "malformed pattern: {d}"),
        }
    }
}

impl std::error::Error for InstantiationError {}

impl From<TypeError> for InstantiationError {
    fn from(e: TypeError) -> Self {
        InstantiationError::Type(e)
    }
}

/// A formalised GSN argument pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pattern {
    /// The pattern's name.
    pub name: String,
    /// Declared parameters and their types.
    pub params: BTreeMap<String, ParamType>,
    /// Template nodes.
    pub nodes: Vec<PatternNode>,
    /// Template edges.
    pub edges: Vec<PatternEdge>,
}

impl Pattern {
    /// Starts a new pattern.
    pub fn new(name: impl Into<String>) -> Self {
        Pattern {
            name: name.into(),
            params: BTreeMap::new(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Declares a parameter.
    pub fn param(mut self, name: impl Into<String>, ty: ParamType) -> Self {
        self.params.insert(name.into(), ty);
        self
    }

    /// Adds a template node.
    pub fn node(mut self, id: &str, kind: NodeKind, template: &str) -> Self {
        self.nodes.push(PatternNode {
            id: id.to_string(),
            kind,
            template: template.to_string(),
        });
        self
    }

    /// Adds a one-to-one edge.
    pub fn edge(mut self, from: &str, to: &str, kind: EdgeKind) -> Self {
        self.edges.push(PatternEdge {
            from: from.to_string(),
            to: to.to_string(),
            kind,
            multiplicity: Multiplicity::One,
        });
        self
    }

    /// Adds a for-each edge: `to`'s subtree is replicated per element of
    /// list parameter `over`, binding `{var}` in the subtree's templates.
    pub fn for_each(mut self, from: &str, to: &str, kind: EdgeKind, over: &str, var: &str) -> Self {
        self.edges.push(PatternEdge {
            from: from.to_string(),
            to: to.to_string(),
            kind,
            multiplicity: Multiplicity::ForEach {
                over: over.to_string(),
                var: var.to_string(),
            },
        });
        self
    }

    /// Adds an optional edge enabled when `param` is bound.
    pub fn optional(mut self, from: &str, to: &str, kind: EdgeKind, param: &str) -> Self {
        self.edges.push(PatternEdge {
            from: from.to_string(),
            to: to.to_string(),
            kind,
            multiplicity: Multiplicity::Optional {
                param: param.to_string(),
            },
        });
        self
    }

    /// The placeholders used across all templates.
    pub fn placeholders(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for node in &self.nodes {
            for ph in extract_placeholders(&node.template) {
                out.push((node.id.clone(), ph));
            }
        }
        out
    }

    /// Loop variables introduced by `ForEach` edges.
    fn loop_vars(&self) -> Vec<String> {
        self.edges
            .iter()
            .filter_map(|e| match &e.multiplicity {
                Multiplicity::ForEach { var, .. } => Some(var.clone()),
                _ => None,
            })
            .collect()
    }

    /// Validates the pattern itself (static checks, independent of any
    /// binding): placeholders declared, edge endpoints exist.
    pub fn validate(&self) -> Result<(), InstantiationError> {
        let loop_vars = self.loop_vars();
        for (node, ph) in self.placeholders() {
            if !self.params.contains_key(&ph) && !loop_vars.contains(&ph) {
                return Err(InstantiationError::UnknownPlaceholder {
                    placeholder: ph,
                    node,
                });
            }
        }
        let ids: Vec<&str> = self.nodes.iter().map(|n| n.id.as_str()).collect();
        for edge in &self.edges {
            if !ids.contains(&edge.from.as_str()) {
                return Err(InstantiationError::Malformed(format!(
                    "edge source `{}` does not exist",
                    edge.from
                )));
            }
            if !ids.contains(&edge.to.as_str()) {
                return Err(InstantiationError::Malformed(format!(
                    "edge target `{}` does not exist",
                    edge.to
                )));
            }
        }
        Ok(())
    }

    /// Type-checks `binding` against the declared parameters (Matsuno's
    /// "automate checking [instantiations'] type consistency").
    pub fn check_binding(&self, binding: &Binding) -> Result<(), InstantiationError> {
        for name in binding.params() {
            if !self.params.contains_key(name) {
                return Err(InstantiationError::Undeclared {
                    param: name.to_string(),
                });
            }
        }
        for (name, ty) in &self.params {
            match binding.get(name) {
                None => {
                    // Parameters enabling Optional edges may stay unbound.
                    let optional = self.edges.iter().any(|e| {
                        matches!(&e.multiplicity, Multiplicity::Optional { param } if param == name)
                    });
                    if !optional {
                        return Err(InstantiationError::Unbound {
                            param: name.clone(),
                        });
                    }
                }
                Some(value) => type_check(name, value, ty)?,
            }
        }
        Ok(())
    }

    /// Instantiates the pattern under `binding` into a concrete argument.
    ///
    /// # Errors
    ///
    /// Returns an [`InstantiationError`] when the pattern is malformed,
    /// the binding is incomplete/ill-typed, or a `ForEach` parameter is
    /// not a list.
    pub fn instantiate(&self, binding: &Binding) -> Result<Argument, InstantiationError> {
        self.validate()?;
        self.check_binding(binding)?;

        let mut builder = Argument::builder(self.name.clone());
        // Roots: nodes that are never an edge target.
        let targets: Vec<&str> = self.edges.iter().map(|e| e.to.as_str()).collect();
        let roots: Vec<&PatternNode> = self
            .nodes
            .iter()
            .filter(|n| !targets.contains(&n.id.as_str()))
            .collect();
        if roots.is_empty() && !self.nodes.is_empty() {
            return Err(InstantiationError::Malformed(
                "pattern has no root node".into(),
            ));
        }
        let mut locals: BTreeMap<String, String> = BTreeMap::new();
        for root in roots {
            builder = self.emit(
                root,
                None,
                EdgeKind::SupportedBy,
                binding,
                &mut locals,
                "",
                builder,
            )?;
        }
        builder
            .build()
            .map_err(|e| InstantiationError::Malformed(e.to_string()))
    }

    /// Emits `node` (suffix-renamed) and its subtree; connects to `parent`.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        node: &PatternNode,
        parent: Option<&str>,
        edge_kind: EdgeKind,
        binding: &Binding,
        locals: &mut BTreeMap<String, String>,
        suffix: &str,
        builder: casekit_core::ArgumentBuilder,
    ) -> Result<casekit_core::ArgumentBuilder, InstantiationError> {
        let concrete_id = format!("{}{}", node.id, suffix);
        let text = substitute(&node.template, binding, locals);
        let mut b = builder.node(Node::new(concrete_id.as_str(), node.kind, text));
        if let Some(p) = parent {
            b = b.edge(p, &concrete_id, edge_kind);
        }
        for edge in self.edges.iter().filter(|e| e.from == node.id) {
            let child = self.nodes.iter().find(|n| n.id == edge.to).ok_or_else(|| {
                InstantiationError::Malformed(format!(
                    "edge target `{}` is not a declared node",
                    edge.to
                ))
            })?;
            match &edge.multiplicity {
                Multiplicity::One => {
                    b = self.emit(
                        child,
                        Some(&concrete_id),
                        edge.kind,
                        binding,
                        locals,
                        suffix,
                        b,
                    )?;
                }
                Multiplicity::Optional { param } => {
                    if binding.get(param).is_some() {
                        b = self.emit(
                            child,
                            Some(&concrete_id),
                            edge.kind,
                            binding,
                            locals,
                            suffix,
                            b,
                        )?;
                    }
                }
                Multiplicity::ForEach { over, var } => {
                    let items = match binding.get(over) {
                        Some(ParamValue::List(items)) => items.clone(),
                        Some(_) => {
                            return Err(InstantiationError::NotAList {
                                param: over.clone(),
                            })
                        }
                        None => {
                            return Err(InstantiationError::Unbound {
                                param: over.clone(),
                            })
                        }
                    };
                    for (i, item) in items.iter().enumerate() {
                        let child_suffix = format!("{suffix}_{}", i + 1);
                        let shadowed = locals.insert(var.clone(), item.render());
                        b = self.emit(
                            child,
                            Some(&concrete_id),
                            edge.kind,
                            binding,
                            locals,
                            &child_suffix,
                            b,
                        )?;
                        match shadowed {
                            Some(old) => {
                                locals.insert(var.clone(), old);
                            }
                            None => {
                                locals.remove(var);
                            }
                        }
                    }
                }
            }
        }
        Ok(b)
    }
}

/// Extracts `{placeholder}` names from a template.
fn extract_placeholders(template: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = template;
    while let Some(open) = rest.find('{') {
        match rest[open + 1..].find('}') {
            Some(close) => {
                out.push(rest[open + 1..open + 1 + close].to_string());
                rest = &rest[open + 1 + close + 1..];
            }
            None => break,
        }
    }
    out
}

/// Substitutes placeholders from locals (loop vars) first, then bindings.
fn substitute(template: &str, binding: &Binding, locals: &BTreeMap<String, String>) -> String {
    let mut out = template.to_string();
    for (var, value) in locals {
        out = out.replace(&format!("{{{var}}}"), value);
    }
    for name in binding.params() {
        if let Some(v) = binding.get(name) {
            out = out.replace(&format!("{{{name}}}"), &v.render());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Matsuno-style hazard pattern: top goal over each hazard in {hazards}.
    fn hazard_pattern() -> Pattern {
        Pattern::new("hazard-directed")
            .param("system", ParamType::Str)
            .param("hazards", ParamType::list(ParamType::Str))
            .node("g_top", NodeKind::Goal, "{system} is acceptably safe")
            .node(
                "s_haz",
                NodeKind::Strategy,
                "Argue over all identified hazards",
            )
            .node("g_h", NodeKind::Goal, "Hazard {h} is mitigated")
            .node("e_h", NodeKind::Solution, "Mitigation evidence for {h}")
            .edge("g_top", "s_haz", EdgeKind::SupportedBy)
            .for_each("s_haz", "g_h", EdgeKind::SupportedBy, "hazards", "h")
            .edge("g_h", "e_h", EdgeKind::SupportedBy)
    }

    fn hazard_binding() -> Binding {
        Binding::new().with("system", "UAV").with(
            "hazards",
            ParamValue::List(vec!["mid-air collision".into(), "loss of link".into()]),
        )
    }

    #[test]
    fn instantiation_expands_for_each() {
        let arg = hazard_pattern().instantiate(&hazard_binding()).unwrap();
        // g_top, s_haz, 2×(g_h, e_h) = 6 nodes.
        assert_eq!(arg.len(), 6);
        let g1 = arg.node(&"g_h_1".into()).unwrap();
        assert_eq!(g1.text, "Hazard mid-air collision is mitigated");
        let g2 = arg.node(&"g_h_2".into()).unwrap();
        assert_eq!(g2.text, "Hazard loss of link is mitigated");
        let top = arg.node(&"g_top".into()).unwrap();
        assert_eq!(top.text, "UAV is acceptably safe");
        // The instance is well-formed GSN.
        assert!(casekit_core::gsn::check(&arg).is_empty());
    }

    #[test]
    fn unbound_parameter_rejected() {
        let binding = Binding::new().with("system", "UAV");
        let err = hazard_pattern().instantiate(&binding).unwrap_err();
        assert_eq!(
            err,
            InstantiationError::Unbound {
                param: "hazards".into()
            }
        );
    }

    #[test]
    fn undeclared_binding_rejected() {
        let binding = hazard_binding().with("oops", 3i64);
        let err = hazard_pattern().instantiate(&binding).unwrap_err();
        assert!(matches!(err, InstantiationError::Undeclared { .. }));
    }

    #[test]
    fn matsunos_misuse_example_rejected_by_enum_type() {
        // "If a user instantiates [System X] with 'Railway hazards', the
        // argument does not make sense. Type checking prevents such a
        // misplacement."
        let pattern = Pattern::new("typed-system")
            .param(
                "system",
                ParamType::enumeration("SystemName", ["Railway control", "Signalling"]),
            )
            .node("g", NodeKind::Goal, "{system} is safe")
            .node("e", NodeKind::Solution, "analysis")
            .edge("g", "e", EdgeKind::SupportedBy);
        let err = pattern
            .instantiate(&Binding::new().with("system", "Railway hazards"))
            .unwrap_err();
        assert!(matches!(err, InstantiationError::Type(_)));
        assert!(err.to_string().contains("Railway hazards"));
    }

    #[test]
    fn plausible_but_wrong_value_still_passes_the_type_check() {
        // The §V-A caveat, executable: type checking can't tell the right
        // member of the enum from the wrong one.
        let pattern = Pattern::new("typed-system")
            .param(
                "system",
                ParamType::enumeration("SystemName", ["Railway control", "Signalling"]),
            )
            .node("g", NodeKind::Goal, "{system} is safe")
            .node("e", NodeKind::Solution, "analysis of Railway control")
            .edge("g", "e", EdgeKind::SupportedBy);
        // The evidence is about Railway control but the goal claims
        // Signalling: well-typed, wrong, accepted.
        let arg = pattern
            .instantiate(&Binding::new().with("system", "Signalling"))
            .unwrap();
        assert_eq!(arg.node(&"g".into()).unwrap().text, "Signalling is safe");
    }

    #[test]
    fn percent_range_enforced_in_pattern() {
        let pattern = Pattern::new("cpu")
            .param("util", ParamType::Percent)
            .node("g", NodeKind::Goal, "CPU utilisation stays below {util}%")
            .node("e", NodeKind::Solution, "scheduling analysis")
            .edge("g", "e", EdgeKind::SupportedBy);
        assert!(pattern
            .instantiate(&Binding::new().with("util", 85i64))
            .is_ok());
        assert!(pattern
            .instantiate(&Binding::new().with("util", 130i64))
            .is_err());
    }

    #[test]
    fn optional_edge_present_only_when_bound() {
        let pattern = Pattern::new("opt")
            .param("system", ParamType::Str)
            .param("standard", ParamType::Str)
            .node("g", NodeKind::Goal, "{system} safe")
            .node("e", NodeKind::Solution, "tests")
            .node("c", NodeKind::Context, "Per standard {standard}")
            .edge("g", "e", EdgeKind::SupportedBy)
            .optional("g", "c", EdgeKind::InContextOf, "standard");
        let without = pattern
            .instantiate(&Binding::new().with("system", "X"))
            .unwrap();
        assert_eq!(without.len(), 2);
        let with = pattern
            .instantiate(
                &Binding::new()
                    .with("system", "X")
                    .with("standard", "DO-178C"),
            )
            .unwrap();
        assert_eq!(with.len(), 3);
        assert!(with.node(&"c".into()).unwrap().text.contains("DO-178C"));
    }

    #[test]
    fn undeclared_placeholder_caught_statically() {
        let pattern = Pattern::new("bad")
            .node("g", NodeKind::Goal, "{mystery} is safe")
            .node("e", NodeKind::Solution, "tests")
            .edge("g", "e", EdgeKind::SupportedBy);
        let err = pattern.validate().unwrap_err();
        assert!(matches!(
            err,
            InstantiationError::UnknownPlaceholder { ref placeholder, .. } if placeholder == "mystery"
        ));
    }

    #[test]
    fn dangling_edge_caught() {
        let pattern = Pattern::new("bad").node("g", NodeKind::Goal, "x").edge(
            "g",
            "ghost",
            EdgeKind::SupportedBy,
        );
        assert!(matches!(
            pattern.validate(),
            Err(InstantiationError::Malformed(_))
        ));
    }

    #[test]
    fn for_each_over_non_list_rejected() {
        let pattern = Pattern::new("bad")
            .param("hazards", ParamType::Str) // declared Str, used as list
            .node("g", NodeKind::Goal, "top")
            .node("h", NodeKind::Goal, "hazard {h}")
            .for_each("g", "h", EdgeKind::SupportedBy, "hazards", "h");
        let err = pattern
            .instantiate(&Binding::new().with("hazards", "oops"))
            .unwrap_err();
        assert_eq!(
            err,
            InstantiationError::NotAList {
                param: "hazards".into()
            }
        );
    }

    #[test]
    fn empty_list_yields_no_expansion() {
        let arg = hazard_pattern()
            .instantiate(
                &Binding::new()
                    .with("system", "UAV")
                    .with("hazards", ParamValue::List(vec![])),
            )
            .unwrap();
        assert_eq!(arg.len(), 2); // g_top, s_haz only
    }

    #[test]
    fn nested_for_each_suffixes_are_unique() {
        let pattern = Pattern::new("nested")
            .param("subsystems", ParamType::list(ParamType::Str))
            .param("modes", ParamType::list(ParamType::Str))
            .node("g", NodeKind::Goal, "system safe")
            .node("gs", NodeKind::Goal, "{s} safe")
            .node("gm", NodeKind::Goal, "{s} safe in mode {m}")
            .node("e", NodeKind::Solution, "evidence for {s}/{m}")
            .for_each("g", "gs", EdgeKind::SupportedBy, "subsystems", "s")
            .for_each("gs", "gm", EdgeKind::SupportedBy, "modes", "m")
            .edge("gm", "e", EdgeKind::SupportedBy);
        let arg = pattern
            .instantiate(
                &Binding::new()
                    .with(
                        "subsystems",
                        ParamValue::List(vec!["nav".into(), "comms".into()]),
                    )
                    .with(
                        "modes",
                        ParamValue::List(vec!["takeoff".into(), "cruise".into()]),
                    ),
            )
            .unwrap();
        // 1 + 2 + 4 + 4 = 11 nodes.
        assert_eq!(arg.len(), 11);
        let node = arg.node(&"gm_1_2".into()).unwrap();
        assert_eq!(node.text, "nav safe in mode cruise");
        assert!(arg
            .node(&"e_2_1".into())
            .unwrap()
            .text
            .contains("comms/takeoff"));
    }

    #[test]
    fn placeholder_extraction() {
        assert_eq!(
            extract_placeholders("a {x} b {y} c"),
            vec!["x".to_string(), "y".to_string()]
        );
        assert!(extract_placeholders("no placeholders").is_empty());
        assert!(extract_placeholders("dangling {brace").is_empty());
    }

    #[test]
    fn error_displays() {
        assert!(InstantiationError::Unbound { param: "x".into() }
            .to_string()
            .contains("not instantiated"));
        assert!(InstantiationError::UnknownPlaceholder {
            placeholder: "p".into(),
            node: "n".into()
        }
        .to_string()
        .contains("{p}"));
        assert!(InstantiationError::NotAList { param: "l".into() }
            .to_string()
            .contains("list"));
    }
}
