//! # casekit-fallacies
//!
//! Fallacy taxonomy and detection for assurance arguments, implementing
//! Graydon §IV–V: the distinction between *formal* fallacies (flaws in
//! argument form, mechanically detectable) and *informal* fallacies
//! (flaws of meaning, which form-only analysis cannot see).
//!
//! * [`taxonomy`] — Damer's eight formal fallacies and the informal kinds
//!   Greenwell et al. found in real safety arguments.
//! * [`formal`] — mechanical detectors over propositional premises and
//!   conclusions.
//! * [`syllogism`] — categorical syllogisms with distribution-rule checks
//!   (undistributed middle, illicit major/minor — the three formal
//!   fallacies that need term structure).
//! * [`informal`] — seeded informal fallacies for case studies, plus
//!   deliberately heuristic lints that demonstrate why soundness and
//!   completeness are unattainable for meaning-level flaws.
//! * [`checker`] — the "mechanical validation" pipeline over an argument:
//!   runs every formal detector; by construction it can never return an
//!   informal finding (the paper's Figure 1 point, executable).

#![forbid(unsafe_code)]

pub mod checker;
pub mod formal;
pub mod informal;
pub mod syllogism;
pub mod taxonomy;

pub use checker::{check_argument, MachineFinding};
pub use taxonomy::{FallacyKind, FormalFallacy, InformalFallacy};
