//! Micro-benchmarks of the substrates: SAT, resolution, natural deduction,
//! unification/SLD, LTL checking, pattern instantiation, DSL parsing, and
//! query evaluation. These bound the cost of "mechanical validation" that
//! the paper's cost-benefit question turns on.

// `criterion_group!`/`criterion_main!` expand to undocumented harness fns.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn chain_formula(n: usize) -> casekit_logic::prop::Formula {
    let mut src = String::from("a0");
    for i in 0..n {
        src.push_str(&format!(" & (a{} -> a{})", i, i + 1));
    }
    src.push_str(&format!(" & ~a{n}"));
    casekit_logic::prop::parse(&src).expect("static formula")
}

fn bench_sat(c: &mut Criterion) {
    let unsat = chain_formula(40);
    c.bench_function("dpll_chain_40_unsat", |b| {
        b.iter(|| casekit_logic::prop::dpll(black_box(&unsat)));
    });
    c.bench_function("dpll_chain_40_unsat_legacy", |b| {
        b.iter(|| casekit_logic::prop::legacy::dpll(black_box(&unsat)));
    });
    let wide = casekit_logic::prop::parse(
        "(a | b | c) & (~a | d) & (~b | d) & (~c | d) & (d -> e & f) & (~e | ~g) & (g | h)",
    )
    .unwrap();
    c.bench_function("dpll_wide_sat", |b| {
        b.iter(|| casekit_logic::prop::dpll(black_box(&wide)));
    });
    // Session reuse: the chain theory compiled once, the endpoint
    // queried per iteration — the batch path's unit of work.
    let mut theory = casekit_logic::prop::Theory::new();
    theory.assert_formula(&chain_formula(40));
    c.bench_function("solver_session_chain_40_check", |b| {
        b.iter(|| black_box(&mut theory).check());
    });
}

fn bench_resolution(c: &mut Criterion) {
    let cs = chain_formula(10).to_cnf();
    c.bench_function("resolution_chain_10", |b| {
        b.iter(|| casekit_logic::prop::resolution_refute(black_box(&cs), 100_000));
    });
}

fn bench_nd(c: &mut Criterion) {
    let proof = casekit_logic::nd::Proof::haley_example();
    c.bench_function("nd_check_haley", |b| b.iter(|| black_box(&proof).check()));
}

fn bench_sld(c: &mut Criterion) {
    let kb = casekit_logic::fol::parse_program(
        "parent(a0, a1). parent(a1, a2). parent(a2, a3). parent(a3, a4).\n\
         parent(a4, a5). parent(a5, a6). parent(a6, a7). parent(a7, a8).\n\
         ancestor(X, Y) :- parent(X, Y).\n\
         ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).",
    )
    .unwrap();
    let goal = casekit_logic::fol::parse_query("ancestor(a0, a8)").unwrap();
    c.bench_function("sld_ancestor_depth_8", |b| {
        b.iter(|| black_box(&kb).proves(black_box(&goal)));
    });
    let desert = casekit_logic::fol::desert_bank_kb();
    let bank_goal = casekit_logic::fol::parse_query("adjacent(desert_bank, river)").unwrap();
    c.bench_function("sld_desert_bank", |b| {
        b.iter(|| black_box(&desert).proves(black_box(&bank_goal)));
    });
}

fn bench_ltl(c: &mut Criterion) {
    use casekit_logic::ltl::{parse_ltl, Kripke};
    let mut k = Kripke::new();
    let states: Vec<_> = (0..8)
        .map(|i| {
            if i == 7 {
                k.add_state(vec!["grant"])
            } else if i == 0 {
                k.add_state(vec!["request"])
            } else {
                k.add_state(Vec::<&str>::new())
            }
        })
        .collect();
    for w in states.windows(2) {
        k.add_transition(w[0], w[1]).unwrap();
    }
    k.add_transition(states[7], states[0]).unwrap();
    k.add_initial(states[0]).unwrap();
    let f = parse_ltl("G (request -> F grant)").unwrap();
    c.bench_function("ltl_check_ring_8", |b| {
        b.iter(|| black_box(&k).check_bounded(black_box(&f), 16));
    });
}

fn bench_patterns(c: &mut Criterion) {
    use casekit_patterns::{library, Binding, ParamValue};
    let pattern = library::hazard_directed_breakdown();
    let binding = Binding::new().with("system", "UAV").with(
        "hazards",
        ParamValue::List((0..20).map(|i| format!("hazard {i}").into()).collect()),
    );
    c.bench_function("pattern_instantiate_20_hazards", |b| {
        b.iter(|| black_box(&pattern).instantiate(black_box(&binding)));
    });
}

fn bench_dsl_and_query(c: &mut Criterion) {
    // A 60-node argument in DSL form.
    let mut src = String::from("argument \"big\" {\n goal g_top \"top\" {\n");
    for i in 0..20 {
        src.push_str(&format!(
            "goal g{i} \"hazard {i} handled\" {{ solution e{i} \"evidence {i}\" }}\n"
        ));
    }
    src.push_str("}\n}\n");
    c.bench_function("dsl_parse_60_nodes", |b| {
        b.iter(|| casekit_core::dsl::parse_argument(black_box(&src)));
    });

    let arg = casekit_core::dsl::parse_argument(&src).unwrap();
    let mut ontology = casekit_query::Ontology::new();
    ontology.declare_enum("severity", ["catastrophic", "major", "minor"]);
    ontology.declare_attribute(
        "hazard",
        [(
            "severity",
            casekit_query::FieldType::Enum("severity".into()),
        )],
    );
    let mut store = casekit_query::AnnotationStore::new(ontology);
    for i in 0..20 {
        let sev = ["catastrophic", "major", "minor"][i % 3];
        store
            .annotate(&arg, &format!("g{i}"), "hazard", [("severity", sev)])
            .unwrap();
    }
    let q =
        casekit_query::parse_query("select goals where hazard.severity = catastrophic").unwrap();
    c.bench_function("query_20_annotated_goals", |b| {
        b.iter_batched(
            || (),
            |()| black_box(&q).run(black_box(&arg), black_box(&store)),
            BatchSize::SmallInput,
        );
    });
}

fn bench_graph(c: &mut Criterion) {
    // The arena/CSR graph core vs the seed's flat-scan layout, on a
    // 10k-node synthetic argument (acceptance target: >=10x on
    // children/parents-heavy checking; measured ~1000x+).
    let arg = casekit_bench::graph::synthetic_argument(10_000);
    let flat = casekit_bench::graph::FlatBaseline::from_argument(&arg);
    let ids: Vec<casekit_core::NodeId> = arg.nodes().map(|n| n.id.clone()).take(200).collect();

    c.bench_function("graph_10k_children_parents_indexed_200", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for id in black_box(&ids) {
                let idx = arg.node_idx(id).unwrap();
                total += arg
                    .children_idx(idx, casekit_core::EdgeKind::SupportedBy)
                    .count();
                total += arg.parents_idx(idx).count();
            }
            total
        });
    });
    c.bench_function("graph_10k_children_parents_flatscan_200", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for id in black_box(&ids) {
                total += flat.children_count(id, casekit_core::EdgeKind::SupportedBy);
                total += flat.parents_count(id);
            }
            total
        });
    });
    c.bench_function("graph_10k_full_sweep_indexed", |b| {
        b.iter(|| casekit_bench::graph::indexed_structural_sweep(black_box(&arg)));
    });
    c.bench_function("graph_10k_reachable_from_root", |b| {
        let root = arg.roots_idx().next().unwrap();
        b.iter(|| arg.reachable_from(black_box(root)).len());
    });
    c.bench_function("graph_10k_is_acyclic", |b| {
        b.iter(|| black_box(&arg).is_acyclic());
    });
    c.bench_function("graph_10k_build", |b| {
        b.iter(|| casekit_bench::graph::synthetic_argument(black_box(10_000)).len());
    });
}

fn bench_logic_core(c: &mut Criterion) {
    // The logic-core analogue of bench_graph: a seeded 24-argument
    // population swept by the legacy per-query path vs the interned
    // batch path (acceptance target: >=10x; measured far above).
    let population = casekit_bench::logic::seeded_population(24, 0xBE7C);
    c.bench_function("logic_24_theories_sweep_legacy", |b| {
        b.iter(|| {
            black_box(&population)
                .iter()
                .map(casekit_bench::logic::LegacyEntailment::sweep)
                .count()
        });
    });
    c.bench_function("logic_24_theories_sweep_interned", |b| {
        b.iter(|| {
            black_box(&population)
                .iter()
                .map(casekit_bench::logic::interned_sweep)
                .count()
        });
    });
    // One argument compiled once, every question re-asked per iteration:
    // the marginal cost of a query once compilation is paid.
    let argument = casekit_bench::logic::seeded_population(1, 0xBE7C).remove(0);
    let mut theory = casekit_core::semantics::ArgumentTheory::compile(&argument);
    c.bench_function("logic_compiled_theory_root_entailed", |b| {
        b.iter(|| black_box(&mut theory).root_entailed());
    });
}

fn bench_cdcl_hard(c: &mut Criterion) {
    // Conflict-driven learning vs chronological backtracking on one
    // deep-chain + pigeonhole instance (the `repro logic` hard
    // population measures the full three-engine population).
    let inst = casekit_bench::logic::hard_instance(12, 4, false);
    c.bench_function("hard_chain12_php4_cdcl", |b| {
        b.iter(|| casekit_bench::logic::solve_hard_cdcl(black_box(&inst)));
    });
    c.bench_function("hard_chain12_php4_dpll", |b| {
        b.iter(|| casekit_bench::logic::solve_hard_dpll(black_box(&inst)));
    });
}

fn bench_af(c: &mut Criterion) {
    // The AF analogue of bench_cdcl_hard: the subset enumerator vs the
    // SAT labelling path on one 12-argument instance (the `repro af`
    // population measures the full cross-checked comparison), plus the
    // SAT path alone at a size the enumerator cannot reach.
    let smoke = casekit_bench::af::random_framework(12, 24, 0xAF);
    c.bench_function("af_12_args_semantics_naive", |b| {
        b.iter(|| casekit_bench::af::naive_sweep(black_box(&smoke)));
    });
    c.bench_function("af_12_args_semantics_sat", |b| {
        b.iter(|| casekit_bench::af::sat_sweep(black_box(&smoke)));
    });
    let large = casekit_bench::af::random_framework(200, 400, 0xAF);
    c.bench_function("af_200_args_preferred_sat", |b| {
        b.iter(|| black_box(&large).preferred_extensions());
    });
    let chain = casekit_bench::af::chain_framework(2_000);
    c.bench_function("af_2000_chain_grounded_csr", |b| {
        b.iter(|| black_box(&chain).grounded_extension());
    });
}

fn bench_fol_engines(c: &mut Criterion) {
    // The seed clause-scan engine vs the interned first-argument-indexed
    // engine on one seeded reachability program (the `repro fol` sweep
    // measures the cross-checked population).
    use casekit_logic::fol::{parse_query, InternedKb, SolveConfig};
    let kb = casekit_bench::fol::reachability_program(200, 100, 200);
    let goal = parse_query("path(c50, X)").unwrap();
    let config = SolveConfig {
        max_depth: 32,
        max_work: 1_000_000_000,
        max_solutions: 8,
    };
    c.bench_function("fol_200_consts_path_seed", |b| {
        b.iter(|| black_box(&kb).solve_seed_with(black_box(&goal), config));
    });
    c.bench_function("fol_200_consts_path_interned", |b| {
        b.iter(|| InternedKb::compile(black_box(&kb)).solve_with(black_box(&goal), config));
    });
    // Compilation paid once, queries re-asked per iteration: the
    // marginal cost of a query against a standing index.
    let mut compiled = InternedKb::compile(&kb);
    c.bench_function("fol_200_consts_path_compiled_query", |b| {
        b.iter(|| black_box(&mut compiled).solve_with(black_box(&goal), config));
    });
}

fn bench_ltl_engines(c: &mut Criterion) {
    // The seed trace checker vs the CSR closure-table checker on one
    // seeded ring-with-chords structure (the `repro ltl` sweep measures
    // the cross-checked family).
    use casekit_logic::ltl::{parse_ltl, CompiledLtl, CsrKripke};
    let k = casekit_bench::ltl::random_kripke(10, 30, 3, 10);
    let f = parse_ltl("G (F (tick & X (tick U tick)))").unwrap();
    c.bench_function("ltl_10_states_nested_naive", |b| {
        b.iter(|| black_box(&k).check_bounded_naive(black_box(&f), 10));
    });
    c.bench_function("ltl_10_states_nested_csr", |b| {
        b.iter(|| black_box(&k).check_bounded(black_box(&f), 10));
    });
    // Structure and formula compiled once, the check re-run per
    // iteration: the marginal cost against a standing CSR plane.
    let csr = CsrKripke::compile(&k);
    let compiled = CompiledLtl::compile(&f, &csr);
    c.bench_function("ltl_10_states_nested_compiled_check", |b| {
        b.iter(|| black_box(&csr).check_bounded(black_box(&compiled), 10));
    });
}

criterion_group!(
    benches,
    bench_sat,
    bench_resolution,
    bench_nd,
    bench_sld,
    bench_ltl,
    bench_patterns,
    bench_dsl_and_query,
    bench_graph,
    bench_logic_core,
    bench_cdcl_hard,
    bench_af,
    bench_fol_engines,
    bench_ltl_engines
);
criterion_main!(benches);
