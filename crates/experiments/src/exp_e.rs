//! Experiment E (§VI-E): do evidence-sufficiency judgments get harder
//! under formalisation?
//!
//! Assessors must judge, per item of evidence, whether it is *critical*
//! to the top claim. Two procedures:
//!
//! * **graph tracing** — follow the GSN path from the leaf to the root
//!   (the judgment the notation is "thought to ease");
//! * **proof probing** — Rushby's what-if: remove the corresponding formal
//!   premise and re-run the checker.
//!
//! Ground truth comes from the *actual* probe
//! ([`casekit_core::semantics::probe_argument`]) over generated arguments
//! containing both critical and idle evidence. Accuracy under tracing
//! depends on diligence; under probing it additionally requires logic
//! skill (reading the counterexample). Probing costs more minutes per
//! judgment (proof re-runs). We report time and inter-assessor agreement
//! per §VI-E: "if they report very different values, at least some must
//! be wrong".

use crate::population::{generate as generate_pool, PoolConfig, Subject};
use crate::runtime::{stream_rng, Runtime};
use crate::stats::{describe, pairwise_agreement, Descriptives};
use crate::Error;
use casekit_core::semantics::probe_argument;
use casekit_core::{Argument, FormalPayload, Node, NodeKind};
use casekit_logic::prop::Formula;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Judgment procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Procedure {
    /// Trace the GSN graph.
    GraphTracing,
    /// Probe the formal proof (Rushby's what-if).
    ProofProbing,
}

/// Configuration for experiment E.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Assessors per procedure.
    pub per_arm: usize,
    /// Evidence leaves per argument (half critical, half idle).
    pub leaves: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            per_arm: 12,
            leaves: 10,
            seed: 0xE,
        }
    }
}

/// Results of experiment E.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Minutes per full assessment (tracing arm).
    pub minutes_tracing: Descriptives,
    /// Minutes per full assessment (probing arm).
    pub minutes_probing: Descriptives,
    /// Mean pairwise agreement among tracing assessors.
    pub agreement_tracing: f64,
    /// Mean pairwise agreement among probing assessors.
    pub agreement_probing: f64,
    /// Accuracy against ground truth (tracing, probing).
    pub accuracy: (f64, f64),
}

/// Builds the judgment argument: `leaves` evidence goals, half of which
/// (`p0..`) the root needs and half of which are formally idle. The
/// caller ([`run_with`]) has already validated the leaf count.
fn judgment_argument(leaves: usize) -> Argument {
    let needed = leaves / 2;
    let root = Formula::conj((0..needed).map(|i| Formula::atom(format!("p{i}"))));
    let mut builder = Argument::builder("sufficiency").node(
        Node::new("g_root", NodeKind::Goal, "Top claim").with_formal(FormalPayload::Prop(root)),
    );
    for i in 0..leaves {
        let gid = format!("g{i}");
        let eid = format!("e{i}");
        // First half: atoms the root needs. Second half: idle extras.
        let atom = if i < needed {
            format!("p{i}")
        } else {
            format!("extra{i}")
        };
        builder = builder
            .node(
                Node::new(gid.as_str(), NodeKind::Goal, format!("Claim {i}"))
                    .with_formal(FormalPayload::Prop(Formula::atom(atom))),
            )
            .supported_by("g_root", &gid)
            .add(&eid, NodeKind::Solution, &format!("Evidence {i}"))
            .supported_by(&gid, &eid);
    }
    builder.build().expect("generated ids unique")
}

fn judgment_accuracy(subject: &Subject, procedure: Procedure) -> f64 {
    match procedure {
        Procedure::GraphTracing => 0.70 + 0.25 * subject.diligence,
        Procedure::ProofProbing => 0.40 + 0.30 * subject.diligence + 0.25 * subject.logic_skill,
    }
}

fn judgment_minutes(procedure: Procedure, leaves: usize, subject: &Subject) -> f64 {
    match procedure {
        Procedure::GraphTracing => leaves as f64 * 1.0 * (220.0 / subject.reading_wpm),
        // Each probe: edit, re-run, interpret.
        Procedure::ProofProbing => leaves as f64 * (2.0 + 2.0 * (1.0 - subject.logic_skill)),
    }
}

/// Runs experiment E serially (equivalent to
/// [`run_with`]`(config, &Runtime::serial())`).
pub fn run(config: &Config) -> Result<Report, Error> {
    run_with(config, &Runtime::serial())
}

/// Runs experiment E on the given runtime. The ground truth is probed
/// once from the formal skeleton; assessors are sharded across the
/// workers on per-subject RNG streams, so the report is identical for
/// every worker count.
pub fn run_with(config: &Config, rt: &Runtime) -> Result<Report, Error> {
    if config.leaves < 2 || !config.leaves.is_multiple_of(2) {
        return Err(Error::InvalidConfig(format!(
            "experiment E needs an even evidence-leaf count \u{2265} 2 \
             (half critical, half idle), got {}",
            config.leaves
        )));
    }
    let argument = judgment_argument(config.leaves);
    let probe = probe_argument(&argument).expect("argument has a formal skeleton");
    assert!(probe.entailed, "root must be entailed");
    let truth: Vec<bool> = (0..config.leaves)
        .map(|i| probe.critical_indices().contains(&i))
        .collect();

    let mut pool = generate_pool(&PoolConfig {
        per_background: (config.per_arm * 2).div_ceil(6).max(1),
        seed: config.seed ^ 0xE11E,
        ..PoolConfig::default()
    });
    pool.truncate(config.per_arm * 2);

    let assessments = rt.map(&pool, |i, subject| {
        let mut rng = stream_rng(config.seed, 0, i as u64);
        let procedure = if i % 2 == 0 {
            Procedure::GraphTracing
        } else {
            Procedure::ProofProbing
        };
        let acc = judgment_accuracy(subject, procedure).clamp(0.0, 1.0);
        let row: Vec<bool> = truth
            .iter()
            .map(|&actual| if rng.gen_bool(acc) { actual } else { !actual })
            .collect();
        let mins = judgment_minutes(procedure, config.leaves, subject);
        (procedure, row, mins)
    });

    let mut minutes = (Vec::new(), Vec::new());
    let mut judgments: (Vec<Vec<bool>>, Vec<Vec<bool>>) = (Vec::new(), Vec::new());
    let mut correct = (0usize, 0usize);
    let mut total = (0usize, 0usize);

    for (procedure, row, mins) in assessments {
        match procedure {
            Procedure::GraphTracing => {
                correct.0 += row.iter().zip(&truth).filter(|(a, b)| a == b).count();
                total.0 += truth.len();
                minutes.0.push(mins);
                judgments.0.push(row);
            }
            Procedure::ProofProbing => {
                correct.1 += row.iter().zip(&truth).filter(|(a, b)| a == b).count();
                total.1 += truth.len();
                minutes.1.push(mins);
                judgments.1.push(row);
            }
        }
    }

    Ok(Report {
        minutes_tracing: describe(&minutes.0)?,
        minutes_probing: describe(&minutes.1)?,
        agreement_tracing: pairwise_agreement(&judgments.0)?,
        agreement_probing: pairwise_agreement(&judgments.1)?,
        accuracy: (
            correct.0 as f64 / total.0.max(1) as f64,
            correct.1 as f64 / total.1.max(1) as f64,
        ),
    })
}

impl Report {
    /// Renders the results table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Experiment E: evidence-sufficiency judgments (§VI-E)");
        let _ = writeln!(
            out,
            "  minutes/assessment: tracing {:.1} ± {:.1}, probing {:.1} ± {:.1}",
            self.minutes_tracing.mean,
            self.minutes_tracing.ci95,
            self.minutes_probing.mean,
            self.minutes_probing.ci95
        );
        let _ = writeln!(
            out,
            "  inter-assessor agreement: tracing {:.2}, probing {:.2}",
            self.agreement_tracing, self.agreement_probing
        );
        let _ = writeln!(
            out,
            "  accuracy vs ground truth: tracing {:.2}, probing {:.2}",
            self.accuracy.0, self.accuracy.1
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_splits_half_and_half() {
        let argument = judgment_argument(10);
        let probe = probe_argument(&argument).unwrap();
        assert!(probe.entailed);
        assert_eq!(probe.critical_indices().len(), 5);
        assert_eq!(probe.idle_indices().len(), 5);
    }

    #[test]
    fn tracing_is_faster() {
        let r = run(&Config::default()).unwrap();
        assert!(r.minutes_tracing.mean < r.minutes_probing.mean);
    }

    #[test]
    fn tracing_agrees_more() {
        let r = run(&Config::default()).unwrap();
        assert!(
            r.agreement_tracing > r.agreement_probing,
            "tracing {} vs probing {}",
            r.agreement_tracing,
            r.agreement_probing
        );
    }

    #[test]
    fn accuracies_above_chance() {
        let r = run(&Config::default()).unwrap();
        assert!(r.accuracy.0 > 0.6);
        assert!(r.accuracy.1 > 0.5);
        assert!(r.accuracy.0 > r.accuracy.1);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            run(&Config::default()).unwrap(),
            run(&Config::default()).unwrap()
        );
    }

    #[test]
    fn parallel_report_identical_to_serial() {
        let config = Config {
            per_arm: 8,
            leaves: 8,
            seed: 0xE3,
        };
        let serial = run(&config).unwrap();
        for workers in [2, 4, 8] {
            let parallel = run_with(&config, &Runtime::with_workers(workers)).unwrap();
            assert_eq!(serial, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn odd_leaf_count_is_an_error() {
        let err = run(&Config {
            leaves: 7,
            ..Config::default()
        })
        .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)), "{err}");
        assert!(err.to_string().contains("even"));
    }

    #[test]
    fn single_assessor_arm_surfaces_a_stats_error() {
        // One assessor per arm: pairwise agreement needs at least two.
        let err = run(&Config {
            per_arm: 1,
            ..Config::default()
        })
        .unwrap_err();
        assert!(matches!(
            err,
            Error::Stats(crate::stats::StatsError::TooFewRaters { .. })
        ));
    }

    #[test]
    fn render_shows_both_arms() {
        let text = run(&Config::default()).unwrap().render();
        assert!(text.contains("tracing"));
        assert!(text.contains("probing"));
        assert!(text.contains("agreement"));
    }
}
