//! `repro` — regenerates every table and figure of Graydon (DSN 2015).
//!
//! Usage:
//!
//! ```text
//! repro [table1 | claims | figure1 | haley | greenwell |
//!        exp-a | exp-b | exp-c | exp-d | exp-e | graph | logic |
//!        af | fol | ltl | experiments | lint | service | dsl | all] [--smoke]
//! ```
//!
//! `graph` additionally writes the measured legacy-vs-indexed graph-core
//! comparison to `BENCH_graph.json` in the working directory; `logic`
//! does the same for the legacy-vs-interned batch entailment sweep plus
//! the CDCL-vs-DPLL-vs-legacy hard-instance comparison
//! (`BENCH_logic.json`), `af` for the subset-enumeration-vs-SAT
//! argumentation-framework comparison (`BENCH_af.json`), `fol` for the
//! seed-vs-interned resolution-engine comparison (`BENCH_fol.json`),
//! `ltl` for the trace-vs-CSR bounded-checking comparison
//! (`BENCH_ltl.json`), `experiments` for the serial-vs-parallel
//! experiment runtime (`BENCH_experiments.json`), `lint` for the
//! recompile-per-lint-vs-compile-once CaseLint comparison
//! (`BENCH_lint.json`), `service` for the
//! recompile-per-query-vs-incremental CaseService comparison under
//! mixed edit/query traffic (`BENCH_service.json`), and `dsl` for the
//! recovering-frontend corpus-ingestion comparison against the
//! abort-on-first-error seed parser (`BENCH_dsl.json`).
//!
//! `--smoke` runs the benchmark artifacts on small fixed-seed
//! populations and writes them as `BENCH_*.smoke.json` instead — fast,
//! deterministic inputs for the CI bench-regression gate
//! (`scripts/bench_gate.sh`), which checks speedup floors and agreement
//! flags without disturbing the committed full-scale artifacts.
//!
//! With no artefact argument, prints everything.

use casekit_bench as bench;

/// Writes `json` to `path`, warning instead of failing on I/O errors
/// (the artefact is also printed to stdout).
fn write_artifact(path: &str, json: &str) {
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}

fn main() {
    let mut smoke = false;
    let mut artefact: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other if artefact.is_none() => artefact = Some(other.to_string()),
            other => {
                eprintln!("unexpected extra argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let arg = artefact.unwrap_or_else(|| "all".to_string());
    if smoke
        && !matches!(
            arg.as_str(),
            "graph" | "logic" | "af" | "fol" | "ltl" | "experiments" | "lint" | "service" | "dsl"
        )
    {
        eprintln!(
            "--smoke only applies to the graph, logic, af, fol, ltl, experiments, lint, service, and dsl artefacts"
        );
        std::process::exit(2);
    }
    let output = match arg.as_str() {
        "table1" => bench::table_i(),
        "claims" => bench::claims_summary(),
        "figure1" => bench::figure_1(),
        "haley" => bench::haley_proof(),
        "greenwell" => bench::greenwell_table(),
        "exp-a" => bench::experiment_a(),
        "exp-b" => bench::experiment_b(),
        "exp-c" => bench::experiment_c(),
        "exp-d" => bench::experiment_d(),
        "exp-e" => bench::experiment_e(),
        "graph" => {
            let (nodes, path) = if smoke {
                (2_000, "BENCH_graph.smoke.json")
            } else {
                (10_000, "BENCH_graph.json")
            };
            let report = bench::graph::run_graph_bench(nodes);
            write_artifact(path, &bench::graph::bench_graph_json(&report));
            bench::graph::render_report(&report)
        }
        "logic" => {
            let (count, hard, path) = if smoke {
                (
                    24,
                    bench::logic::hard_population_smoke(),
                    "BENCH_logic.smoke.json",
                )
            } else {
                (
                    120,
                    bench::logic::hard_population_full(),
                    "BENCH_logic.json",
                )
            };
            let report = bench::logic::run_logic_bench(count, &hard);
            write_artifact(path, &bench::logic::bench_logic_json(&report));
            bench::logic::render_report(&report)
        }
        "af" => {
            // Smoke keeps the cross-checked population and chain small
            // and caps the SAT-only sizes where the gate needs them;
            // the full run carries the decomposed engine to 10^5
            // arguments with a monolithic cross-check at 10^4.
            let (smoke_seeds, chain, sizes, scc_sizes, crosscheck, path): (
                usize,
                usize,
                &[usize],
                &[usize],
                usize,
                &str,
            ) = if smoke {
                (
                    4,
                    120,
                    &[12, 50],
                    &[2_000, 20_000],
                    2_000,
                    "BENCH_af.smoke.json",
                )
            } else {
                (
                    6,
                    300,
                    &[12, 50, 200, 1000],
                    &[1_000, 10_000, 100_000],
                    10_000,
                    "BENCH_af.json",
                )
            };
            let report =
                bench::af::run_af_bench(12, smoke_seeds, chain, sizes, scc_sizes, crosscheck);
            write_artifact(path, &bench::af::bench_af_json(&report));
            bench::af::render_report(&report)
        }
        "fol" => {
            let (sizes, chain, path): (&[usize], usize, &str) = if smoke {
                (&[100, 200], 4_000, "BENCH_fol.smoke.json")
            } else {
                (&[200, 400, 800], 30_000, "BENCH_fol.json")
            };
            let report = bench::fol::run_fol_bench(sizes, chain);
            write_artifact(path, &bench::fol::bench_fol_json(&report));
            bench::fol::render_report(&report)
        }
        "ltl" => {
            // (states, chords, bound) triples for the cross-checked
            // sweep, then the CSR-only deep point.
            const SMOKE_POINTS: &[(usize, usize, usize)] = &[(10, 30, 9)];
            const FULL_POINTS: &[(usize, usize, usize)] = &[(10, 30, 10), (12, 36, 11)];
            let (points, large, path) = if smoke {
                (SMOKE_POINTS, (12, 36, 10), "BENCH_ltl.smoke.json")
            } else {
                (FULL_POINTS, (14, 42, 12), "BENCH_ltl.json")
            };
            let report = bench::ltl::run_ltl_bench(points, large);
            write_artifact(path, &bench::ltl::bench_ltl_json(&report));
            bench::ltl::render_report(&report)
        }
        "experiments" => {
            let (config, path) = if smoke {
                (
                    bench::experiments::smoke_config(),
                    "BENCH_experiments.smoke.json",
                )
            } else {
                (
                    bench::experiments::scaled_config(),
                    "BENCH_experiments.json",
                )
            };
            let report = bench::experiments::run_experiments_bench_with(
                &config,
                bench::experiments_bench_workers(),
            );
            write_artifact(path, &bench::experiments::bench_experiments_json(&report));
            bench::experiments::render_report(&report)
        }
        "lint" => {
            let (config, path) = if smoke {
                (bench::lint::smoke_config(), "BENCH_lint.smoke.json")
            } else {
                (bench::lint::scaled_config(), "BENCH_lint.json")
            };
            let report =
                bench::lint::run_lint_bench_with(&config, bench::experiments_bench_workers());
            write_artifact(path, &bench::lint::bench_lint_json(&report));
            bench::lint::render_report(&report)
        }
        "service" => {
            let (config, path) = if smoke {
                (bench::service::smoke_config(), "BENCH_service.smoke.json")
            } else {
                (bench::service::scaled_config(), "BENCH_service.json")
            };
            let report =
                bench::service::run_service_bench_with(&config, bench::experiments_bench_workers());
            write_artifact(path, &bench::service::bench_service_json(&report));
            bench::service::render_report(&report)
        }
        "dsl" => {
            let (config, path) = if smoke {
                (bench::dsl::smoke_config(), "BENCH_dsl.smoke.json")
            } else {
                (bench::dsl::scaled_config(), "BENCH_dsl.json")
            };
            let report =
                bench::dsl::run_dsl_bench_with(&config, bench::experiments_bench_workers());
            write_artifact(path, &bench::dsl::bench_dsl_json(&report));
            bench::dsl::render_report(&report)
        }
        "all" => bench::all(),
        other => {
            eprintln!(
                "unknown artefact `{other}`; expected table1, claims, figure1, haley, \
                 greenwell, exp-a..exp-e, graph, logic, af, fol, ltl, experiments, lint, \
                 service, dsl, or all"
            );
            std::process::exit(2);
        }
    };
    print!("{output}");
}
