//! Experiment A (§VI-A): can automatic detection of formal fallacies make
//! reviews faster or more reliable?
//!
//! Two arms review the same seeded arguments:
//!
//! * **control** — reviewers look for *both* informal and formal
//!   fallacies;
//! * **treatment** — reviewers look for informal fallacies only, and the
//!   mechanical checker handles the formal ones.
//!
//! Measured: review minutes per arm (Welch t-test), formal-fallacy catch
//! rate per arm (humans vs machine), and informal catch rate (should not
//! differ — the checker cannot help there).

use crate::generator::{generate, Generated, GeneratorConfig, SeededFormal};
use crate::population::{generate as generate_pool, PoolConfig};
use crate::reviewer::{review, ReviewScope};
use crate::stats::{describe, welch_t_test, Descriptives, TestResult};
use casekit_fallacies::checker::check_argument;
use casekit_fallacies::taxonomy::InformalFallacy;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Configuration for experiment A.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Reviewers per arm.
    pub per_arm: usize,
    /// Arguments each reviewer examines.
    pub arguments: usize,
    /// Hazards per argument.
    pub hazards: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            per_arm: 30,
            arguments: 4,
            hazards: 8,
            seed: 0xA,
        }
    }
}

/// Results of experiment A.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Review minutes, control arm (informal + formal by hand).
    pub minutes_control: Descriptives,
    /// Review minutes, treatment arm (informal only; machine does formal).
    pub minutes_treatment: Descriptives,
    /// Welch t-test on minutes.
    pub minutes_test: TestResult,
    /// Fraction of seeded formal defects caught by human review (control).
    pub formal_catch_human: f64,
    /// Fraction caught by the machine checker (treatment).
    pub formal_catch_machine: f64,
    /// Informal catch rates (control, treatment).
    pub informal_catch: (f64, f64),
}

/// Runs experiment A.
pub fn run(config: &Config) -> Report {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let pool = generate_pool(&PoolConfig {
        per_background: (config.per_arm * 2).div_ceil(6).max(1),
        seed: config.seed ^ 0x900D,
        ..PoolConfig::default()
    });

    // Generate the argument set: each argument carries ONE formal defect
    // kind (combining them lets inconsistent premises mask the
    // missing-support defect — see the generator's masking test) plus a
    // spread of informal ones.
    const DEFECT_CYCLE: [SeededFormal; 3] = [
        SeededFormal::Begging,
        SeededFormal::Incompatible,
        SeededFormal::MissingSupport,
    ];
    let cases: Vec<Generated> = (0..config.arguments)
        .map(|i| {
            generate(&GeneratorConfig {
                hazards: config.hazards,
                formal: vec![DEFECT_CYCLE[i % DEFECT_CYCLE.len()]],
                informal: vec![
                    InformalFallacy::RedHerring,
                    InformalFallacy::UsingWrongReasons,
                    InformalFallacy::Equivocation,
                    InformalFallacy::OmissionOfKeyEvidence,
                ],
                seed: config.seed.wrapping_add(i as u64),
            })
        })
        .collect();

    let mut minutes_control = Vec::new();
    let mut minutes_treatment = Vec::new();
    let mut human_formal_hits = 0usize;
    let mut human_formal_total = 0usize;
    let mut machine_formal_hits = 0usize;
    let mut machine_formal_total = 0usize;
    let mut informal_hits = (0usize, 0usize);
    let mut informal_total = (0usize, 0usize);

    for (i, subject) in pool.iter().take(config.per_arm * 2).enumerate() {
        let control = i % 2 == 0;
        let mut total_minutes = 0.0;
        for case in &cases {
            if control {
                let outcome = review(
                    subject,
                    &case.case,
                    &case.formal,
                    ReviewScope::InformalAndFormal,
                    &mut rng,
                );
                total_minutes += outcome.minutes;
                human_formal_hits += outcome.formal_found.len();
                human_formal_total += case.formal.len();
                informal_hits.0 += outcome.informal_found.len();
                informal_total.0 += case.case.seeded.len();
            } else {
                let outcome = review(
                    subject,
                    &case.case,
                    &case.formal,
                    ReviewScope::InformalOnly,
                    &mut rng,
                );
                total_minutes += outcome.minutes;
                informal_hits.1 += outcome.informal_found.len();
                informal_total.1 += case.case.seeded.len();
                // The machine pass (its runtime is negligible next to
                // human minutes and is not charged to the reviewer).
                let findings = check_argument(&case.case.argument).findings;
                for seeded in &case.formal {
                    machine_formal_total += 1;
                    if findings.iter().any(|f| seeded.matches(f)) {
                        machine_formal_hits += 1;
                    }
                }
            }
        }
        if control {
            minutes_control.push(total_minutes);
        } else {
            minutes_treatment.push(total_minutes);
        }
    }

    Report {
        minutes_control: describe(&minutes_control),
        minutes_treatment: describe(&minutes_treatment),
        minutes_test: welch_t_test(&minutes_control, &minutes_treatment),
        formal_catch_human: human_formal_hits as f64 / human_formal_total.max(1) as f64,
        formal_catch_machine: machine_formal_hits as f64 / machine_formal_total.max(1) as f64,
        informal_catch: (
            informal_hits.0 as f64 / informal_total.0.max(1) as f64,
            informal_hits.1 as f64 / informal_total.1.max(1) as f64,
        ),
    }
}

impl Report {
    /// Renders the experiment's results table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Experiment A: automatic formal-fallacy detection (§VI-A)"
        );
        let _ = writeln!(
            out,
            "  review minutes   control (human does formal): {:7.1} ± {:.1}",
            self.minutes_control.mean, self.minutes_control.ci95
        );
        let _ = writeln!(
            out,
            "  review minutes   treatment (machine formal) : {:7.1} ± {:.1}",
            self.minutes_treatment.mean, self.minutes_treatment.ci95
        );
        let _ = writeln!(
            out,
            "  Welch t = {:.2}, p = {:.4}",
            self.minutes_test.statistic, self.minutes_test.p_value
        );
        let _ = writeln!(
            out,
            "  formal catch rate: human {:5.1}%   machine {:5.1}%",
            self.formal_catch_human * 100.0,
            self.formal_catch_machine * 100.0
        );
        let _ = writeln!(
            out,
            "  informal catch rate: control {:5.1}%   treatment {:5.1}% (machine cannot help)",
            self.informal_catch.0 * 100.0,
            self.informal_catch.1 * 100.0
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_catches_all_formal_seeds() {
        let r = run(&Config::default());
        assert_eq!(r.formal_catch_machine, 1.0);
    }

    #[test]
    fn humans_catch_fewer_formal_fallacies_than_machine() {
        let r = run(&Config::default());
        assert!(r.formal_catch_human < r.formal_catch_machine);
        assert!(r.formal_catch_human > 0.0, "humans find some");
    }

    #[test]
    fn treatment_arm_reviews_faster() {
        let r = run(&Config::default());
        assert!(r.minutes_treatment.mean < r.minutes_control.mean);
        assert!(
            r.minutes_test.p_value < 0.05,
            "p = {}",
            r.minutes_test.p_value
        );
    }

    #[test]
    fn informal_catch_rates_similar_across_arms() {
        let r = run(&Config::default());
        let (c, t) = r.informal_catch;
        assert!((c - t).abs() < 0.15, "control {c} vs treatment {t}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&Config::default());
        let b = run(&Config::default());
        assert_eq!(a, b);
    }

    #[test]
    fn render_mentions_key_rows() {
        let r = run(&Config {
            per_arm: 6,
            arguments: 2,
            hazards: 4,
            seed: 77,
        });
        let text = r.render();
        assert!(text.contains("Experiment A"));
        assert!(text.contains("machine"));
        assert!(text.contains("Welch"));
    }
}
