//! The interned FOL core: hash-consed term arena, first-argument-indexed
//! clause store, and an iterative SLD engine over integer ids.
//!
//! The seed engine in [`super::engine`] resolves over the name-plane
//! [`Term`] tree: every candidate clause is deep-cloned with freshly
//! suffixed variable names, and every unification step re-applies a
//! `BTreeMap`-backed substitution to whole terms. This module is the
//! index-plane replacement, mirroring the `prop::intern` discipline:
//!
//! * **Symbols** — functor and constant names intern once into a
//!   [`SymbolTable`], so comparison is a `u32` equality.
//! * **Terms** — a hash-consed [`TermArena`]: each distinct term
//!   structure is stored once as a [`TermId`], with argument lists
//!   flattened into one shared pool. Clause variables are numbered
//!   densely per clause, so a clause never needs renaming: a *runtime
//!   instance* of a term is the pair (TermId, frame base), and each
//!   activation of a clause just allocates `nvars` fresh binding slots.
//! * **Bindings** — a flat slot array with a trail for backtracking.
//!   Variable chains are path-compressed as they are walked; the
//!   compressed writes go on the trail too, so undoing a choice point
//!   restores exactly the previous state.
//! * **Dispatch** — clauses index by `(predicate, arity)` and by the
//!   principal functor of their first argument, so a goal with a bound
//!   first argument tries only the matching bucket (plus variable-headed
//!   clauses), in original program order.
//! * **Search** — SLD resolution with an explicit choice-point stack and
//!   arena-allocated goal lists, so derivations tens of thousands of
//!   steps deep cannot overflow the call stack.
//!
//! Answer parity with the seed engine: for answers that bind query
//! variables to *ground* terms, [`InternedKb::solve_with`] returns
//! exactly the seed engine's solutions in the seed engine's order.
//! Answers containing unbound clause variables are reported with
//! canonical `_G0`, `_G1`, … names (the seed leaks its rename counter,
//! e.g. `Y_3`), so alpha-equivalent answers deduplicate here that the
//! seed counts separately. Work accounting also differs: both engines
//! count one unit per candidate clause tried, but indexing tries fewer
//! candidates, so `max_work` cuts off later than the seed's.

use super::engine::{KnowledgeBase, Solution, SolveConfig, SolveOutcome};
use super::term::Term;
use super::unify::Substitution;
use std::collections::HashMap;
use std::sync::Arc;

/// Interned functor/constant name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(u32);

/// Interner for functor and constant names.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<Arc<str>>,
    index: HashMap<Arc<str>, SymbolId>,
}

impl SymbolTable {
    /// Interns `name`, returning its stable id.
    pub fn intern(&mut self, name: &Arc<str>) -> SymbolId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = SymbolId(self.names.len() as u32);
        self.names.push(name.clone());
        self.index.insert(name.clone(), id);
        id
    }

    /// The name behind an id.
    pub fn name(&self, id: SymbolId) -> &Arc<str> {
        &self.names[id.0 as usize]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbol has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Handle to a hash-consed term in a [`TermArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TermId(u32);

/// One arena node: a clause-local variable or an application. Constants
/// are 0-ary applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TermNode {
    Var(u32),
    App {
        sym: SymbolId,
        args_start: u32,
        args_len: u32,
    },
}

/// Hash-consed term storage: every distinct structure appears once, and
/// argument lists are flat slices into one shared pool.
#[derive(Debug, Clone, Default)]
pub struct TermArena {
    nodes: Vec<TermNode>,
    args: Vec<TermId>,
    app_index: HashMap<(SymbolId, Vec<TermId>), TermId>,
    var_index: HashMap<u32, TermId>,
}

impl TermArena {
    fn var(&mut self, idx: u32) -> TermId {
        if let Some(&id) = self.var_index.get(&idx) {
            return id;
        }
        let id = TermId(self.nodes.len() as u32);
        self.nodes.push(TermNode::Var(idx));
        self.var_index.insert(idx, id);
        id
    }

    fn app(&mut self, sym: SymbolId, args: Vec<TermId>) -> TermId {
        if let Some(&id) = self.app_index.get(&(sym, args.clone())) {
            return id;
        }
        let args_start = self.args.len() as u32;
        let args_len = args.len() as u32;
        self.args.extend_from_slice(&args);
        let id = TermId(self.nodes.len() as u32);
        self.nodes.push(TermNode::App {
            sym,
            args_start,
            args_len,
        });
        self.app_index.insert((sym, args), id);
        id
    }

    fn node(&self, id: TermId) -> TermNode {
        self.nodes[id.0 as usize]
    }

    fn args_of(&self, id: TermId) -> &[TermId] {
        match self.nodes[id.0 as usize] {
            TermNode::Var(_) => &[],
            TermNode::App {
                args_start,
                args_len,
                ..
            } => &self.args[args_start as usize..(args_start + args_len) as usize],
        }
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds no terms.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// A clause compiled to the index plane: head and body share the arena,
/// variables are numbered `0..nvars` local to the clause.
#[derive(Debug, Clone)]
struct CompiledClause {
    head: TermId,
    body: Vec<TermId>,
    nvars: u32,
}

/// Per-predicate first-argument index. All lists hold clause indices in
/// ascending (program) order.
#[derive(Debug, Clone, Default)]
struct PredIndex {
    /// Every clause whose head has this predicate and arity.
    all: Vec<u32>,
    /// Clauses whose head's first argument is a variable.
    var_first: Vec<u32>,
    /// Clauses bucketed by the principal functor and arity of their
    /// head's first argument.
    by_first: HashMap<(SymbolId, u32), Vec<u32>>,
}

/// A [`KnowledgeBase`] compiled onto the interned plane, ready to answer
/// queries with the iterative indexed engine.
#[derive(Debug, Clone)]
pub struct InternedKb {
    symbols: SymbolTable,
    arena: TermArena,
    clauses: Vec<CompiledClause>,
    preds: HashMap<(SymbolId, u32), PredIndex>,
    /// Clauses whose head is a bare variable: candidates for every goal.
    var_heads: Vec<u32>,
}

/// Interns a name-plane term, numbering variables densely via `vars`.
fn intern_term(
    arena: &mut TermArena,
    symbols: &mut SymbolTable,
    vars: &mut HashMap<Arc<str>, u32>,
    term: &Term,
) -> TermId {
    match term {
        Term::Var(n) => {
            let next = vars.len() as u32;
            let idx = *vars.entry(n.clone()).or_insert(next);
            arena.var(idx)
        }
        Term::Const(n) => {
            let sym = symbols.intern(n);
            arena.app(sym, Vec::new())
        }
        Term::Compound(f, args) => {
            let sym = symbols.intern(f);
            let ids = args
                .iter()
                .map(|a| intern_term(arena, symbols, vars, a))
                .collect();
            arena.app(sym, ids)
        }
    }
}

/// Merges ascending clause-index lists, preserving program order.
fn merge_sorted(lists: &[&[u32]]) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::with_capacity(lists.iter().map(|l| l.len()).sum());
    for list in lists {
        out.extend_from_slice(list);
    }
    out.sort_unstable();
    out.dedup();
    out
}

impl InternedKb {
    /// Compiles a knowledge base onto the interned plane.
    pub fn compile(kb: &KnowledgeBase) -> InternedKb {
        let mut symbols = SymbolTable::default();
        let mut arena = TermArena::default();
        let mut clauses = Vec::with_capacity(kb.len());
        let mut preds: HashMap<(SymbolId, u32), PredIndex> = HashMap::new();
        let mut var_heads = Vec::new();

        for (i, clause) in kb.clauses().iter().enumerate() {
            let mut vars = HashMap::new();
            let head = intern_term(&mut arena, &mut symbols, &mut vars, &clause.head);
            let body = clause
                .body
                .iter()
                .map(|g| intern_term(&mut arena, &mut symbols, &mut vars, g))
                .collect();
            let idx = i as u32;
            match arena.node(head) {
                TermNode::Var(_) => var_heads.push(idx),
                TermNode::App { sym, args_len, .. } => {
                    let pred = preds.entry((sym, args_len)).or_default();
                    pred.all.push(idx);
                    if args_len == 0 {
                        // No first argument to bucket on; `all` is the index.
                    } else {
                        let first = arena.args_of(head)[0];
                        match arena.node(first) {
                            TermNode::Var(_) => pred.var_first.push(idx),
                            TermNode::App {
                                sym: fsym,
                                args_len: far,
                                ..
                            } => pred.by_first.entry((fsym, far)).or_default().push(idx),
                        }
                    }
                }
            }
            clauses.push(CompiledClause {
                head,
                body,
                nvars: vars.len() as u32,
            });
        }

        InternedKb {
            symbols,
            arena,
            clauses,
            preds,
            var_heads,
        }
    }

    /// Number of compiled clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the compiled program is empty.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Solves `goal` under the default configuration.
    pub fn solve(&mut self, goal: &Term) -> SolveOutcome {
        self.solve_with(goal, SolveConfig::default())
    }

    /// True when the goal has at least one derivation (under defaults).
    pub fn proves(&mut self, goal: &Term) -> bool {
        self.solve(goal).succeeded()
    }

    /// Solves `goal` under an explicit configuration with the iterative
    /// indexed engine. `&mut self` because the query's terms intern into
    /// the shared arena (hash-consing makes repeat queries free).
    pub fn solve_with(&mut self, goal: &Term, config: SolveConfig) -> SolveOutcome {
        let mut qvars: HashMap<Arc<str>, u32> = HashMap::new();
        let query = intern_term(&mut self.arena, &mut self.symbols, &mut qvars, goal);
        let mut names: Vec<Arc<str>> = vec![Arc::from(""); qvars.len()];
        for (name, idx) in &qvars {
            names[*idx as usize] = name.clone();
        }
        let mut machine = Machine {
            kb: self,
            config,
            slots: Vec::new(),
            trail: Vec::new(),
            goal_arena: Vec::new(),
            work: 0,
            truncated: false,
            solutions: Vec::new(),
        };
        machine.run(query, &names);
        SolveOutcome {
            solutions: machine.solutions,
            truncated: machine.truncated,
        }
    }
}

/// What a binding slot holds: another slot (var-var aliasing) or a term
/// application under some frame.
#[derive(Debug, Clone, Copy)]
enum BoundTo {
    Slot(u32),
    App(TermId, u32),
}

/// A fully dereferenced runtime value: an unbound slot or an application.
#[derive(Debug, Clone, Copy)]
enum Deref {
    Unbound(u32),
    App(TermId, u32),
}

/// Arena-allocated cons cell of a goal list.
#[derive(Debug, Clone, Copy)]
struct GoalNode {
    term: TermId,
    frame: u32,
    next: u32,
}

const NIL: u32 = u32::MAX;

/// One SLD choice point: the goal list being resolved, the candidate
/// clauses still to try, and the trail/slot marks to rewind to between
/// alternatives.
struct Choice {
    goals: u32,
    depth: usize,
    cands: Vec<u32>,
    cursor: usize,
    trail_mark: usize,
    slots_mark: usize,
}

struct Machine<'a> {
    kb: &'a InternedKb,
    config: SolveConfig,
    slots: Vec<Option<BoundTo>>,
    trail: Vec<(u32, Option<BoundTo>)>,
    goal_arena: Vec<GoalNode>,
    work: usize,
    truncated: bool,
    solutions: Vec<Solution>,
}

impl Machine<'_> {
    fn push_goal(&mut self, term: TermId, frame: u32, next: u32) -> u32 {
        self.goal_arena.push(GoalNode { term, frame, next });
        (self.goal_arena.len() - 1) as u32
    }

    fn bind(&mut self, slot: u32, value: BoundTo) {
        self.trail.push((slot, self.slots[slot as usize]));
        self.slots[slot as usize] = Some(value);
    }

    fn undo_to(&mut self, trail_mark: usize, slots_mark: usize) {
        while self.trail.len() > trail_mark {
            let (slot, old) = self.trail.pop().expect("trail above mark");
            self.slots[slot as usize] = old;
        }
        self.slots.truncate(slots_mark);
    }

    /// Dereferences a slot chain, path-compressing every hop onto the
    /// final value. The compressed writes are trailed like ordinary
    /// bindings, so backtracking restores the exact prior chain.
    fn walk_slot(&mut self, start: u32) -> Deref {
        let mut slot = start;
        let mut hops = 0usize;
        let result = loop {
            match self.slots[slot as usize] {
                None => break Deref::Unbound(slot),
                Some(BoundTo::Slot(next)) => {
                    hops += 1;
                    slot = next;
                }
                Some(BoundTo::App(t, f)) => break Deref::App(t, f),
            }
        };
        if hops > 1 {
            let target = match result {
                Deref::Unbound(s) => BoundTo::Slot(s),
                Deref::App(t, f) => BoundTo::App(t, f),
            };
            let mut s = start;
            while let Some(BoundTo::Slot(next)) = self.slots[s as usize] {
                if next == slot {
                    break;
                }
                self.bind(s, target);
                s = next;
            }
        }
        result
    }

    fn walk(&mut self, id: TermId, frame: u32) -> Deref {
        match self.kb.arena.node(id) {
            TermNode::Var(v) => self.walk_slot(frame + v),
            TermNode::App { .. } => Deref::App(id, frame),
        }
    }

    /// Read-only dereference (no compression), for the occurs check and
    /// answer reification.
    fn resolve_slot(&self, start: u32) -> Deref {
        let mut slot = start;
        loop {
            match self.slots[slot as usize] {
                None => return Deref::Unbound(slot),
                Some(BoundTo::Slot(next)) => slot = next,
                Some(BoundTo::App(t, f)) => return Deref::App(t, f),
            }
        }
    }

    fn resolve(&self, id: TermId, frame: u32) -> Deref {
        match self.kb.arena.node(id) {
            TermNode::Var(v) => self.resolve_slot(frame + v),
            TermNode::App { .. } => Deref::App(id, frame),
        }
    }

    /// Whether unbound slot `slot` occurs in the instance `(id, frame)`.
    fn occurs(&self, slot: u32, id: TermId, frame: u32) -> bool {
        let mut stack = vec![(id, frame)];
        while let Some((t, f)) = stack.pop() {
            match self.resolve(t, f) {
                Deref::Unbound(s) => {
                    if s == slot {
                        return true;
                    }
                }
                Deref::App(t2, f2) => {
                    for &a in self.kb.arena.args_of(t2) {
                        stack.push((a, f2));
                    }
                }
            }
        }
        false
    }

    /// Unifies two runtime instances, trailing every binding. Iterative
    /// over an explicit pair stack; occurs check enforced.
    fn unify(&mut self, a: (TermId, u32), b: (TermId, u32)) -> bool {
        let mut stack = vec![(a, b)];
        while let Some(((ta, fa), (tb, fb))) = stack.pop() {
            let da = self.walk(ta, fa);
            let db = self.walk(tb, fb);
            match (da, db) {
                (Deref::Unbound(sa), Deref::Unbound(sb)) => {
                    if sa != sb {
                        self.bind(sa, BoundTo::Slot(sb));
                    }
                }
                (Deref::Unbound(s), Deref::App(t, f)) | (Deref::App(t, f), Deref::Unbound(s)) => {
                    if self.occurs(s, t, f) {
                        return false;
                    }
                    self.bind(s, BoundTo::App(t, f));
                }
                (Deref::App(t1, f1), Deref::App(t2, f2)) => {
                    let (
                        TermNode::App {
                            sym: s1,
                            args_len: n1,
                            ..
                        },
                        TermNode::App {
                            sym: s2,
                            args_len: n2,
                            ..
                        },
                    ) = (self.kb.arena.node(t1), self.kb.arena.node(t2))
                    else {
                        unreachable!("walk returns App for App nodes");
                    };
                    if s1 != s2 || n1 != n2 {
                        return false;
                    }
                    for (&a1, &a2) in self
                        .kb
                        .arena
                        .args_of(t1)
                        .iter()
                        .zip(self.kb.arena.args_of(t2))
                    {
                        stack.push(((a1, f1), (a2, f2)));
                    }
                }
            }
        }
        true
    }

    /// Candidate clauses for a goal, in program order: the first-argument
    /// bucket when the goal's first argument has a bound principal
    /// functor, the whole predicate otherwise, everything for an unbound
    /// goal. Variable-headed clauses are always included.
    fn candidates(&mut self, goal: TermId, frame: u32) -> Vec<u32> {
        let kb = self.kb;
        match self.walk(goal, frame) {
            Deref::Unbound(_) => (0..kb.clauses.len() as u32).collect(),
            Deref::App(t, f) => {
                let TermNode::App { sym, args_len, .. } = kb.arena.node(t) else {
                    unreachable!("walk returns App for App nodes");
                };
                let Some(pred) = kb.preds.get(&(sym, args_len)) else {
                    return kb.var_heads.clone();
                };
                if args_len == 0 {
                    return merge_sorted(&[&pred.all, &kb.var_heads]);
                }
                let first = kb.arena.args_of(t)[0];
                match self.walk(first, f) {
                    Deref::Unbound(_) => merge_sorted(&[&pred.all, &kb.var_heads]),
                    Deref::App(ft, _) => {
                        let TermNode::App {
                            sym: fsym,
                            args_len: far,
                            ..
                        } = kb.arena.node(ft)
                        else {
                            unreachable!("walk returns App for App nodes");
                        };
                        let bucket = pred
                            .by_first
                            .get(&(fsym, far))
                            .map(Vec::as_slice)
                            .unwrap_or(&[]);
                        merge_sorted(&[bucket, &pred.var_first, &kb.var_heads])
                    }
                }
            }
        }
    }

    /// Rebuilds the name-plane term for the value in `slot`, naming
    /// still-unbound non-query variables `_G0`, `_G1`, … in order of
    /// first appearance.
    fn reify_slot(
        &self,
        slot: u32,
        names: &[Arc<str>],
        fresh: &mut HashMap<u32, Arc<str>>,
    ) -> Term {
        match self.resolve_slot(slot) {
            Deref::Unbound(s) => {
                if (s as usize) < names.len() {
                    Term::Var(names[s as usize].clone())
                } else {
                    let next = fresh.len();
                    let name = fresh
                        .entry(s)
                        .or_insert_with(|| Arc::from(format!("_G{next}")));
                    Term::Var(name.clone())
                }
            }
            Deref::App(t, f) => self.reify_app(t, f, names, fresh),
        }
    }

    fn reify_app(
        &self,
        id: TermId,
        frame: u32,
        names: &[Arc<str>],
        fresh: &mut HashMap<u32, Arc<str>>,
    ) -> Term {
        let TermNode::App { sym, args_len, .. } = self.kb.arena.node(id) else {
            unreachable!("reify_app takes App nodes");
        };
        let name = self.kb.symbols.name(sym).clone();
        if args_len == 0 {
            return Term::Const(name);
        }
        let args = self
            .kb
            .arena
            .args_of(id)
            .iter()
            .map(|&a| match self.resolve(a, frame) {
                Deref::Unbound(s) => self.reify_slot(s, names, fresh),
                Deref::App(t, f) => self.reify_app(t, f, names, fresh),
            })
            .collect();
        Term::Compound(name, args)
    }

    /// Records the current bindings as a solution, projected onto the
    /// query's variables (sorted by name, like the seed's projection).
    /// Unbound query variables are omitted; duplicates are dropped.
    fn record_solution(&mut self, names: &[Arc<str>]) {
        let mut order: Vec<u32> = (0..names.len() as u32).collect();
        order.sort_by(|&a, &b| names[a as usize].cmp(&names[b as usize]));
        let mut bindings = Substitution::new();
        let mut fresh = HashMap::new();
        for slot in order {
            let name = &names[slot as usize];
            let value = self.reify_slot(slot, names, &mut fresh);
            if let Term::Var(n) = &value {
                if n == name {
                    continue;
                }
            }
            bindings.bind(name.as_ref(), value);
        }
        let solution = Solution { bindings };
        if !self.solutions.contains(&solution) {
            self.solutions.push(solution);
        }
    }

    /// The iterative SLD loop. Mirrors the seed engine's control flow —
    /// empty-goals check, then depth check, then the clause loop — with
    /// the recursion replaced by an explicit [`Choice`] stack.
    fn run(&mut self, query: TermId, names: &[Arc<str>]) {
        self.slots.resize(names.len(), None);
        let root = self.push_goal(query, 0, NIL);
        let mut stack: Vec<Choice> = Vec::new();
        let mut pending = Some((root, 0usize));
        loop {
            if let Some((goals, depth)) = pending.take() {
                if goals == NIL {
                    self.record_solution(names);
                    if self.solutions.len() >= self.config.max_solutions {
                        return;
                    }
                } else if depth >= self.config.max_depth {
                    self.truncated = true;
                } else {
                    let g = self.goal_arena[goals as usize];
                    let cands = self.candidates(g.term, g.frame);
                    stack.push(Choice {
                        goals,
                        depth,
                        cands,
                        cursor: 0,
                        trail_mark: self.trail.len(),
                        slots_mark: self.slots.len(),
                    });
                }
            }
            let Some(top) = stack.last_mut() else {
                return;
            };
            let (trail_mark, slots_mark) = (top.trail_mark, top.slots_mark);
            if top.cursor >= top.cands.len() {
                stack.pop();
                self.undo_to(trail_mark, slots_mark);
                continue;
            }
            let clause_idx = top.cands[top.cursor];
            top.cursor += 1;
            let (goals, depth) = (top.goals, top.depth);
            self.undo_to(trail_mark, slots_mark);
            self.work += 1;
            if self.work > self.config.max_work {
                self.truncated = true;
                return;
            }
            let kb = self.kb;
            let clause = &kb.clauses[clause_idx as usize];
            let base = self.slots.len() as u32;
            self.slots
                .resize(self.slots.len() + clause.nvars as usize, None);
            let g = self.goal_arena[goals as usize];
            if self.unify((g.term, g.frame), (clause.head, base)) {
                let mut list = g.next;
                for &b in clause.body.iter().rev() {
                    list = self.push_goal(b, base, list);
                }
                pending = Some((list, depth + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::parser::{parse_program, parse_query};
    use super::*;

    fn compiled(src: &str) -> InternedKb {
        InternedKb::compile(&parse_program(src).unwrap())
    }

    #[test]
    fn symbol_table_interns_once() {
        let mut t = SymbolTable::default();
        let a: Arc<str> = Arc::from("adjacent");
        let id1 = t.intern(&a);
        let id2 = t.intern(&a);
        assert_eq!(id1, id2);
        assert_eq!(t.name(id1).as_ref(), "adjacent");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn arena_hash_conses_ground_terms() {
        let kb = compiled("p(a, f(a)). q(f(a)).");
        // `a` and `f(a)` each intern once even though they appear in two
        // clauses; nodes: a, f(a), p(a, f(a)), q(f(a)).
        assert_eq!(kb.arena.len(), 4);
        assert_eq!(kb.len(), 2);
        assert!(!kb.is_empty());
    }

    #[test]
    fn matches_seed_on_facts_and_rules() {
        let src = "parent(tom, bob). parent(tom, liz). parent(bob, ann).\n\
                   ancestor(X, Y) :- parent(X, Y).\n\
                   ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).";
        let seed = parse_program(src).unwrap();
        let mut kb = InternedKb::compile(&seed);
        for query in [
            "parent(tom, X)",
            "ancestor(tom, X)",
            "ancestor(X, ann)",
            "ancestor(liz, X)",
            "parent(X, Y)",
        ] {
            let goal = parse_query(query).unwrap();
            let fast = kb.solve(&goal);
            let slow = seed.solve_seed_with(&goal, SolveConfig::default());
            assert_eq!(fast.solutions, slow.solutions, "query {query}");
            assert_eq!(fast.truncated, slow.truncated, "query {query}");
        }
    }

    #[test]
    fn first_argument_index_preserves_program_order() {
        let mut kb = compiled("p(a, one). p(b, two). p(a, three). p(C, var).");
        let out = kb.solve(&parse_query("p(a, X)").unwrap());
        let answers: Vec<String> = out.solutions.iter().map(|s| s.to_string()).collect();
        assert_eq!(answers, vec!["{X = one}", "{X = three}", "{X = var}"]);
    }

    #[test]
    fn unbound_first_argument_tries_every_clause() {
        let mut kb = compiled("p(a, one). p(b, two).");
        let out = kb.solve(&parse_query("p(Y, X)").unwrap());
        assert_eq!(out.solutions.len(), 2);
    }

    #[test]
    fn compound_first_arguments_bucket_by_functor() {
        let mut kb =
            compiled("size(box(small), one). size(box(big), two). size(tin(small), three).");
        let out = kb.solve(&parse_query("size(box(W), X)").unwrap());
        assert_eq!(out.solutions.len(), 2);
        let out = kb.solve(&parse_query("size(tin(small), X)").unwrap());
        assert_eq!(out.solutions.len(), 1);
    }

    #[test]
    fn occurs_check_blocks_cyclic_terms() {
        let mut kb = compiled("eq(X, X).");
        assert!(!kb.proves(&parse_query("eq(Y, f(Y))").unwrap()));
        assert!(kb.proves(&parse_query("eq(g(a), g(a))").unwrap()));
    }

    #[test]
    fn shared_variables_answer_alpha_canonically() {
        // Seed would answer {X = A_1, Y = A_1} (leaking its rename
        // counter); the interned engine canonicalises to _G0.
        let mut kb = compiled("p(A, A).");
        let out = kb.solve(&parse_query("p(X, Y)").unwrap());
        assert_eq!(out.solutions.len(), 1);
        assert_eq!(out.solutions[0].to_string(), "{X = _G0, Y = _G0}");
    }

    #[test]
    fn depth_budget_truncates_left_recursion() {
        let mut kb = compiled("p(X) :- p(X).");
        let out = kb.solve(&parse_query("p(a)").unwrap());
        assert!(!out.succeeded());
        assert!(out.truncated);
    }

    #[test]
    fn work_budget_truncates() {
        let mut kb = compiled(
            "e(a, b). e(b, c). e(c, a).\n\
             path(X, Y) :- e(X, Y).\n\
             path(X, Y) :- e(X, Z), path(Z, Y).",
        );
        let out = kb.solve_with(
            &parse_query("path(a, X)").unwrap(),
            SolveConfig {
                max_depth: 1_000_000,
                max_work: 50,
                max_solutions: 1_000,
            },
        );
        assert!(out.truncated);
    }

    #[test]
    fn deep_chains_do_not_overflow_the_stack() {
        // 20k-deep derivation: the seed's recursive engine would
        // overflow long before this; the explicit choice-point stack
        // lives on the heap.
        let n = 20_000usize;
        let mut src = String::new();
        for i in 0..n - 1 {
            src.push_str(&format!("e(c{i}, c{}).\n", i + 1));
        }
        src.push_str("path(X, Y) :- e(X, Y).\npath(X, Y) :- e(X, Z), path(Z, Y).\n");
        let mut kb = InternedKb::compile(&parse_program(&src).unwrap());
        let goal = parse_query(&format!("path(c0, c{})", n - 1)).unwrap();
        let out = kb.solve_with(
            &goal,
            SolveConfig {
                max_depth: 3 * n,
                max_work: 50 * n,
                max_solutions: 1,
            },
        );
        assert!(out.succeeded());
        assert!(!out.truncated);
    }

    #[test]
    fn variable_headed_clauses_stay_candidates() {
        // A bare-variable head matches any goal at all.
        let mut kb = InternedKb::compile(&{
            let mut kb = KnowledgeBase::new();
            kb.add(super::super::term::Clause::fact(Term::var("Anything")));
            kb.add(super::super::term::Clause::fact(
                parse_query("p(a)").unwrap(),
            ));
            kb
        });
        assert!(kb.proves(&parse_query("q(zzz)").unwrap()));
        assert!(kb.proves(&parse_query("p(a)").unwrap()));
    }

    #[test]
    fn variable_goal_matches_any_clause() {
        let mut kb = compiled("p(a). q(b).");
        let out = kb.solve(&parse_query("G").unwrap());
        assert_eq!(out.solutions.len(), 2);
    }
}
