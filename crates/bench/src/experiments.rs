//! Experiment-runtime benchmark harness: the §VI-A review study at
//! population scale, measured three ways over identical materials.
//!
//! The seed ran every simulated review serially off one shared RNG and
//! re-ran [`check_argument`] — a full Tseitin recompilation of the
//! argument's propositional payloads — once per treatment review.
//! [`legacy_exp_a`] reproduces that access pattern faithfully against
//! the new per-subject RNG streams (so its report is byte-identical and
//! the comparison is *only* about the execution strategy). The
//! replacement is `exp_a::run_with`: one compilation and one machine
//! check per argument for the whole population, the findings shared by
//! every review, subjects sharded across scoped worker threads.
//!
//! [`bench_experiments_json`] emits the comparison as
//! `BENCH_experiments.json` (via `repro experiments`), with all
//! engines' reports checked identical (`reports_agree`) — the
//! serial/parallel byte-equality guarantee, measured, not assumed.
//! `speedup` is the legacy-vs-runtime ratio, mirroring
//! `BENCH_graph.json` / `BENCH_logic.json`; `thread_speedup` isolates
//! the scoped-thread contribution (≈1.0 on a single-core host, where
//! the compile-once machine sweep supplies the whole win).

use casekit_experiments::exp_a;
use casekit_experiments::reviewer::{review, ReviewScope};
use casekit_experiments::runtime::{stream_rng, Runtime};
use casekit_experiments::stats::{describe, welch_t_test};
use casekit_fallacies::checker::check_argument;
use serde::Serialize;

/// The scaled-up population: 2 400 subjects (1 200 per arm) reviewing
/// six seeded arguments each — 14 400 reviews, 7 200 of them in the
/// machine-checked treatment arm.
pub fn scaled_config() -> exp_a::Config {
    exp_a::Config {
        per_arm: 1200,
        arguments: 6,
        hazards: 10,
        seed: 0x5CA1E,
    }
}

/// The scaled-down population for the CI smoke gate (`--smoke`): same
/// fixed seed, small enough that the whole comparison (legacy loop
/// included) finishes in seconds.
pub fn smoke_config() -> exp_a::Config {
    exp_a::Config {
        per_arm: 150,
        arguments: 4,
        hazards: 8,
        seed: 0x5CA1E,
    }
}

/// The pre-runtime measurement loop: one subject at a time, and every
/// treatment review pays a fresh [`check_argument`] compilation instead
/// of sharing one compilation per argument. Byte-identical output to
/// `exp_a::run_with` by construction — same materials
/// ([`exp_a::materials`]), same per-subject RNG streams, same
/// reduction.
pub fn legacy_exp_a(config: &exp_a::Config) -> exp_a::Report {
    let (pool, cases) = exp_a::materials(config).expect("benchmark config is valid");

    let mut minutes_control = Vec::new();
    let mut minutes_treatment = Vec::new();
    let mut human_formal_hits = 0usize;
    let mut human_formal_total = 0usize;
    let mut machine_formal_hits = 0usize;
    let mut machine_formal_total = 0usize;
    let mut informal_hits = (0usize, 0usize);
    let mut informal_total = (0usize, 0usize);

    for (i, subject) in pool.iter().enumerate() {
        let control = i % 2 == 0;
        let mut rng = stream_rng(config.seed, 0, i as u64);
        let scope = if control {
            ReviewScope::InformalAndFormal
        } else {
            ReviewScope::InformalOnly
        };
        let mut total_minutes = 0.0;
        for case in &cases {
            let outcome = review(subject, &case.case, &case.formal, scope, &mut rng);
            total_minutes += outcome.minutes;
            if control {
                human_formal_hits += outcome.formal_found.len();
                human_formal_total += case.formal.len();
                informal_hits.0 += outcome.informal_found.len();
                informal_total.0 += case.case.seeded.len();
            } else {
                informal_hits.1 += outcome.informal_found.len();
                informal_total.1 += case.case.seeded.len();
                // The legacy cost centre: recompile + re-check per review.
                let findings = check_argument(&case.case.argument).findings;
                for seeded in &case.formal {
                    machine_formal_total += 1;
                    if findings.iter().any(|f| seeded.matches(f)) {
                        machine_formal_hits += 1;
                    }
                }
            }
        }
        if control {
            minutes_control.push(total_minutes);
        } else {
            minutes_treatment.push(total_minutes);
        }
    }

    exp_a::Report {
        minutes_control: describe(&minutes_control).expect("control arm is non-empty"),
        minutes_treatment: describe(&minutes_treatment).expect("treatment arm is non-empty"),
        minutes_test: welch_t_test(&minutes_control, &minutes_treatment)
            .expect("arms have n \u{2265} 2"),
        formal_catch_human: human_formal_hits as f64 / human_formal_total.max(1) as f64,
        formal_catch_machine: machine_formal_hits as f64 / machine_formal_total.max(1) as f64,
        informal_catch: (
            informal_hits.0 as f64 / informal_total.0.max(1) as f64,
            informal_hits.1 as f64 / informal_total.1.max(1) as f64,
        ),
    }
}

/// The measured comparison, serialized into `BENCH_experiments.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentsBenchReport {
    /// Simulated subjects across both arms.
    pub subjects: usize,
    /// Generated arguments in the review set.
    pub arguments: usize,
    /// Total simulated reviews (subjects × arguments).
    pub reviews: usize,
    /// Worker threads used for the parallel run.
    pub workers: usize,
    /// Cores the host exposed during the measurement. `thread_speedup`
    /// is bounded by this: on a single-core host the parallel plan
    /// degrades to the serial plan and the honest ratio is ≈1.0.
    pub host_parallelism: usize,
    /// Legacy loop (serial, recompile + re-check per treatment review),
    /// milliseconds (best of several runs, like the other arms).
    pub legacy_ms: f64,
    /// Runtime with `workers = 1` (one machine check per argument,
    /// serial measurement loop), milliseconds (best of several runs).
    pub serial_ms: f64,
    /// Runtime with the full worker count, milliseconds (best of
    /// several runs).
    pub parallel_ms: f64,
    /// legacy / parallel — the end-to-end win of the runtime.
    pub speedup: f64,
    /// serial / parallel — the scoped-thread contribution alone
    /// (bounded by the host's core count).
    pub thread_speedup: f64,
    /// Sanity: legacy, serial, and every parallel worker count
    /// produced byte-identical reports.
    pub reports_agree: bool,
}

/// Runs the comparison on the scaled population with `workers` threads
/// for the parallel arm.
pub fn run_experiments_bench(workers: usize) -> ExperimentsBenchReport {
    run_experiments_bench_with(&scaled_config(), workers)
}

/// Runs the comparison on an explicit population configuration (the
/// smoke gate passes [`smoke_config`]).
pub fn run_experiments_bench_with(
    config: &exp_a::Config,
    workers: usize,
) -> ExperimentsBenchReport {
    let config = config.clone();

    // Best-of-3 for every arm, legacy included: an asymmetric
    // single-sample legacy measurement would bias the published ratio.
    let (legacy_ms, legacy_report) = crate::best_of_ms(3, || legacy_exp_a(&config));
    let (serial_ms, serial_report) = crate::best_of_ms(3, || {
        exp_a::run_with(&config, &Runtime::serial()).expect("valid config")
    });
    let runtime = Runtime::with_workers(workers);
    let (parallel_ms, parallel_report) = crate::best_of_ms(3, || {
        exp_a::run_with(&config, &runtime).expect("valid config")
    });

    // Byte-equality across every execution strategy, including an
    // intermediate worker count not otherwise measured.
    let halfway = exp_a::run_with(&config, &Runtime::with_workers(2)).expect("valid config");
    let reports_agree = legacy_report == serial_report
        && serial_report == parallel_report
        && serial_report == halfway;

    ExperimentsBenchReport {
        subjects: config.per_arm * 2,
        arguments: config.arguments,
        reviews: config.per_arm * 2 * config.arguments,
        workers: runtime.workers,
        host_parallelism: Runtime::host_parallelism(),
        legacy_ms,
        serial_ms,
        parallel_ms,
        speedup: legacy_ms / parallel_ms.max(1e-9),
        thread_speedup: serial_ms / parallel_ms.max(1e-9),
        reports_agree,
    }
}

/// Renders the report as JSON (the `BENCH_experiments.json` artifact).
pub fn bench_experiments_json(report: &ExperimentsBenchReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

/// Human-readable summary for the repro binary.
pub fn render_report(report: &ExperimentsBenchReport) -> String {
    format!(
        "experiment runtime over {} subjects x {} arguments ({} reviews)\n\
           legacy serial (recompile + recheck per review):  {:>10.3} ms\n\
           runtime, 1 worker (one check per argument):      {:>10.3} ms\n\
           runtime, {} workers ({} cores):                  {:>10.3} ms\n\
           speedup: {:.1}x (threads alone: {:.2}x)   reports agree: {}\n",
        report.subjects,
        report.arguments,
        report.reviews,
        report.legacy_ms,
        report.serial_ms,
        report.workers,
        report.host_parallelism,
        report.parallel_ms,
        report.speedup,
        report.thread_speedup,
        report.reports_agree
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_loop_matches_runtime_byte_for_byte() {
        // Small scale: the full-size run lives in `repro experiments`.
        let config = exp_a::Config {
            per_arm: 12,
            arguments: 3,
            hazards: 6,
            seed: 0xBE,
        };
        let legacy = legacy_exp_a(&config);
        let runtime = exp_a::run_with(&config, &Runtime::serial()).unwrap();
        assert_eq!(legacy, runtime);
        let parallel = exp_a::run_with(&config, &Runtime::with_workers(4)).unwrap();
        assert_eq!(legacy, parallel);
    }

    #[test]
    fn report_json_has_the_gate_fields() {
        let report = ExperimentsBenchReport {
            subjects: 8,
            arguments: 2,
            reviews: 16,
            workers: 4,
            host_parallelism: 4,
            legacy_ms: 10.0,
            serial_ms: 2.0,
            parallel_ms: 1.0,
            speedup: 10.0,
            thread_speedup: 2.0,
            reports_agree: true,
        };
        let json = bench_experiments_json(&report);
        assert!(json.contains("\"reports_agree\": true"));
        assert!(json.contains("\"speedup\""));
        assert!(render_report(&report).contains("reports agree: true"));
    }
}
