//! Argumentation-framework benchmark harness: seeded framework
//! generators, the subset-enumeration baseline (`af::naive`), the
//! monolithic SAT labelling path, and the SCC-decomposed engine that
//! carries the semantics to 10^5 arguments.
//!
//! The seed computed complete/preferred extensions by walking all `2^n`
//! argument subsets behind an `assert!(n <= 16)`, and derived the
//! grounded extension with a fixpoint that re-scanned the whole attack
//! relation per candidate per pass. The SAT path
//! ([`casekit_logic::af::encode::AfSat`]) lifts the ceiling; the CSR
//! worklist ([`casekit_logic::af::Adjacency::grounded`]) makes grounded
//! O(V+E); the condensation walk ([`casekit_logic::af::scc::Decomposed`])
//! lifts preferred/stable to sizes the monolithic encoding cannot touch.
//! All the old paths survive so the speedups stay measurable:
//! [`run_af_bench`] cross-checks naive/SAT/decomposed set for set on
//! every ≤ 16-argument instance, cross-checks decomposed-vs-monolithic
//! at every size up to the cross-check ceiling, and emits the
//! comparison as `BENCH_af.json` (via `repro af`).
//!
//! Uniformly-random digraphs at attack density 2 grow a giant strongly
//! connected component (~63% of all arguments), which no decomposition
//! can split — so the large-n scenarios use the [`scale_free_framework`]
//! and [`layered_debate_framework`] generators, whose condensations
//! look like real deliberation graphs: overwhelmingly singleton
//! components plus a bounded handful of mutual-attack pairs.

use casekit_logic::af::encode::AfSat;
use casekit_logic::af::scc::Decomposed;
use casekit_logic::af::{naive, ArgId, Framework};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::BTreeSet;

/// A seeded uniformly-random framework: `n` arguments, `attacks`
/// attack pairs drawn with replacement (self-attacks allowed, as in
/// real benchmark suites).
pub fn random_framework(n: usize, attacks: usize, seed: u64) -> Framework {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xAF00_0000_0000_0000);
    let mut af = Framework::new();
    for i in 0..n {
        af.add_argument(format!("arg{i}"));
    }
    for _ in 0..attacks {
        let attacker = rng.gen_range(0..n);
        let target = rng.gen_range(0..n);
        af.add_attack(attacker, target).expect("ids are in range");
    }
    af
}

/// A seeded deliberation-shaped framework: a proposal followed by
/// dialogue moves, each attacking one (sometimes two) earlier
/// arguments — the acyclic, tree-ish shape Tolchinsky-style dialogues
/// produce, where the grounded extension decides everything.
pub fn deliberation_framework(n: usize, seed: u64) -> Framework {
    assert!(n >= 1, "a deliberation has at least the proposal");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1A1_0000_0000_0000);
    let mut af = Framework::new();
    af.add_argument("proposal");
    for i in 1..n {
        let id = af.add_argument(format!("move{i}"));
        let target = rng.gen_range(0..id);
        af.add_attack(id, target).expect("ids are in range");
        if rng.gen_bool(0.25) {
            let second = rng.gen_range(0..id);
            af.add_attack(id, second).expect("ids are in range");
        }
    }
    af
}

/// A seeded scale-free attack graph: each new argument attacks one or
/// two earlier ones chosen by preferential attachment (heavily-attacked
/// arguments attract more attacks — the hub structure real debate
/// corpora show), then a bounded handful of existing attacks are
/// reversed into mutual pairs. The condensation is almost entirely
/// singletons plus ≤ 3 two-cycles, so the decomposed engine resolves
/// nearly everything by propagation and the preferred-extension count
/// stays ≤ 2^3 at any size.
pub fn scale_free_framework(n: usize, seed: u64) -> Framework {
    assert!(n >= 1, "at least one argument");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5CAF_0000_0000_0000);
    let mut af = Framework::new();
    for i in 0..n {
        af.add_argument(format!("arg{i}"));
    }
    // Endpoint pool: each argument appears once per attack it is part
    // of, so sampling the pool uniformly is degree-proportional.
    let mut pool: Vec<ArgId> = vec![0];
    let mut edges: Vec<(ArgId, ArgId)> = Vec::new();
    for i in 1..n {
        let attacks = if rng.gen_bool(0.5) { 2 } else { 1 };
        for _ in 0..attacks {
            let target = pool[rng.gen_range(0..pool.len())];
            af.add_attack(i, target).expect("ids are in range");
            edges.push((i, target));
            pool.push(target);
        }
        pool.push(i);
    }
    // Mutual pairs: reverse a few existing attacks into two-cycles —
    // the non-trivial components that force real per-component solves.
    if !edges.is_empty() {
        for _ in 0..3.min(n / 4) {
            let (attacker, target) = edges[rng.gen_range(0..edges.len())];
            af.add_attack(target, attacker).expect("ids are in range");
        }
    }
    af
}

/// A seeded layered-debate attack graph: `layers` tiers of arguments,
/// tier 0 holding the core theses (with ≤ 3 mutual-attack pairs among
/// them — the genuinely contested claims), and every later tier's
/// arguments attacking one or two arguments of the tier before it.
/// The condensation has exactly the mutual pairs as non-trivial
/// components and a depth equal to the tier count, so components at
/// each depth form a wide independent batch — the shape the parallel
/// dispatch is built for.
pub fn layered_debate_framework(n: usize, layers: usize, seed: u64) -> Framework {
    assert!(
        layers >= 1 && n >= layers,
        "at least one argument per layer"
    );
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1A7E_0000_0000_0000);
    let mut af = Framework::new();
    for i in 0..n {
        af.add_argument(format!("arg{i}"));
    }
    let per_layer = n / layers;
    let layer_start = |l: usize| l * per_layer;
    let layer_len = |l: usize| {
        if l == layers - 1 {
            n - layer_start(l)
        } else {
            per_layer
        }
    };
    for pair in 0..3.min(layer_len(0) / 2) {
        af.add_attack(2 * pair, 2 * pair + 1)
            .expect("ids are in range");
        af.add_attack(2 * pair + 1, 2 * pair)
            .expect("ids are in range");
    }
    for l in 1..layers {
        let (prev_start, prev_len) = (layer_start(l - 1), layer_len(l - 1));
        for i in layer_start(l)..layer_start(l) + layer_len(l) {
            let attacks = if rng.gen_bool(0.4) { 2 } else { 1 };
            for _ in 0..attacks {
                let target = prev_start + rng.gen_range(0..prev_len);
                af.add_attack(i, target).expect("ids are in range");
            }
        }
    }
    af
}

/// A reinstatement chain: argument `i + 1` attacks argument `i`. The
/// grounded fixpoint needs ~`n/2` passes here, which is exactly where
/// a per-candidate attack-relation scan degrades quadratically.
pub fn chain_framework(n: usize) -> Framework {
    let mut af = Framework::new();
    for i in 0..n {
        af.add_argument(format!("c{i}"));
    }
    for i in 1..n {
        af.add_attack(i, i - 1).expect("ids are in range");
    }
    af
}

/// Everything one engine reports about one framework; both engines
/// must produce exactly this, set for set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemanticsVerdict {
    /// The complete extensions, as a set of sets.
    pub complete: BTreeSet<BTreeSet<ArgId>>,
    /// The preferred extensions, as a set of sets.
    pub preferred: BTreeSet<BTreeSet<ArgId>>,
    /// The stable extensions, as a set of sets.
    pub stable: BTreeSet<BTreeSet<ArgId>>,
    /// Per argument: credulously accepted?
    pub credulous: Vec<bool>,
}

/// The full semantics sweep through the subset enumerator (panics over
/// 16 arguments — smoke instances only).
///
/// For a fair baseline the `2^n` walk runs only twice (complete and
/// stable): preferred is the maximality filter over the complete set
/// and credulous is membership in it, mirroring how [`sat_sweep`]
/// shares one session — the measured gap is enumeration vs SAT, not
/// redundant re-enumeration.
pub fn naive_sweep(af: &Framework) -> SemanticsVerdict {
    let complete = naive::complete_extensions(af).expect("smoke instance");
    let preferred = naive::preferred_from(&complete).into_iter().collect();
    let credulous = (0..af.len())
        .map(|id| complete.iter().any(|e| e.contains(&id)))
        .collect();
    SemanticsVerdict {
        complete: complete.into_iter().collect(),
        preferred,
        stable: naive::stable_extensions(af)
            .expect("smoke instance")
            .into_iter()
            .collect(),
        credulous,
    }
}

/// The same sweep through the SAT path: one complete-semantics session
/// answers the complete enumeration, the preferred maximality loop,
/// and every credulous probe; stable gets its own encoding.
pub fn sat_sweep(af: &Framework) -> SemanticsVerdict {
    let mut session = AfSat::complete(af);
    let complete = session.extensions(None).into_iter().collect();
    let preferred = session.preferred().into_iter().collect();
    let credulous = (0..af.len()).map(|id| session.credulous(id)).collect();
    let stable = AfSat::stable(af).extensions(None).into_iter().collect();
    SemanticsVerdict {
        complete,
        preferred,
        stable,
        credulous,
    }
}

/// The same sweep through the SCC-decomposed engine (the third
/// cross-checked engine on every smoke instance): condensation walk,
/// per-component solves, reassembly.
pub fn scc_sweep(af: &Framework) -> SemanticsVerdict {
    let dec = Decomposed::new(af);
    SemanticsVerdict {
        complete: dec.complete_extensions().into_iter().collect(),
        preferred: dec.preferred_extensions().into_iter().collect(),
        stable: dec.stable_extensions().into_iter().collect(),
        credulous: (0..af.len()).map(|id| dec.credulous(id)).collect(),
    }
}

/// Measured engine comparison at one framework size (SAT path only —
/// the enumerator cannot follow past 16 arguments).
#[derive(Debug, Clone, Serialize)]
pub struct AfSizeReport {
    /// Arguments in the seeded random framework.
    pub n: usize,
    /// Attacks in the seeded random framework.
    pub attacks: usize,
    /// CSR grounded fixpoint, milliseconds (best of 3).
    pub grounded_ms: f64,
    /// Arguments in the grounded extension.
    pub grounded_size: usize,
    /// SAT preferred enumeration (maximality loop), milliseconds.
    pub preferred_ms: f64,
    /// Preferred extensions found.
    pub preferred_count: usize,
    /// SAT stable enumeration, milliseconds.
    pub stable_ms: f64,
    /// Stable extensions found.
    pub stable_count: usize,
    /// On the same-size deliberation-shaped framework: the preferred
    /// extension is unique and equals the grounded extension (the
    /// acyclicity invariant the dialogue layer relies on).
    pub deliberation_preferred_is_grounded: bool,
}

/// Measured decomposed-engine run at one large-n scenario, with the
/// monolithic SAT path alongside wherever the size still permits a
/// cross-check.
#[derive(Debug, Clone, Serialize)]
pub struct AfSccSizeReport {
    /// Which generator produced the framework (`scale_free` or
    /// `layered_debate`).
    pub generator: String,
    /// Arguments in the framework.
    pub n: usize,
    /// Attacks in the framework.
    pub attacks: usize,
    /// Strongly connected components in the condensation.
    pub components: usize,
    /// Members of the largest component.
    pub largest_component: usize,
    /// Depth levels in the condensation (batches of independent
    /// components the runtime can farm out).
    pub levels: usize,
    /// CSR grounded fixpoint, milliseconds (best of 3).
    pub grounded_ms: f64,
    /// Decomposed preferred enumeration (condensation + walk),
    /// milliseconds (best of 3).
    pub preferred_ms: f64,
    /// Preferred extensions found.
    pub preferred_count: usize,
    /// Decomposed stable enumeration, milliseconds (best of 3).
    pub stable_ms: f64,
    /// Stable extensions found.
    pub stable_count: usize,
    /// Monolithic SAT preferred enumeration on the identical
    /// framework, milliseconds — only at cross-checkable sizes.
    pub monolithic_preferred_ms: Option<f64>,
    /// Decomposed and monolithic returned identical preferred and
    /// stable extension sets (only at cross-checkable sizes).
    pub agrees_with_monolithic: Option<bool>,
    /// monolithic preferred / decomposed preferred (only at
    /// cross-checkable sizes).
    pub speedup_vs_monolithic: Option<f64>,
}

/// The measured comparison, serialized into `BENCH_af.json`.
#[derive(Debug, Clone, Serialize)]
pub struct AfBenchReport {
    /// ≤ 16-argument instances swept by both engines.
    pub smoke_instances: usize,
    /// Arguments per smoke instance.
    pub smoke_n: usize,
    /// Subset-enumeration sweep over the smoke instances, milliseconds
    /// (best of 3, like every other arm).
    pub naive_ms: f64,
    /// SAT sweep over the same instances, milliseconds (best of 3).
    pub sat_ms: f64,
    /// naive / sat.
    pub sat_over_naive: f64,
    /// Both engines returned identical complete/preferred/stable
    /// extension sets and credulous verdicts on every smoke instance.
    pub extensions_agree: bool,
    /// Chain length for the grounded comparison.
    pub grounded_chain_n: usize,
    /// Seed-style grounded fixpoint (attack-relation scan per
    /// candidate per pass) on the chain, milliseconds.
    pub grounded_naive_ms: f64,
    /// CSR worklist grounded on the same chain, milliseconds.
    pub grounded_csr_ms: f64,
    /// naive / csr.
    pub grounded_over_naive: f64,
    /// Both grounded engines agree on the chain.
    pub grounded_agree: bool,
    /// The SCC-decomposed engine matched the monolithic SAT engine on
    /// every smoke instance and at every cross-checkable large size.
    pub scc_agree: bool,
    /// monolithic preferred / decomposed preferred at the largest
    /// cross-checked size (0.0 when nothing was cross-checked).
    pub scc_speedup: f64,
    /// Largest framework the decomposed engine completed
    /// grounded/preferred/stable on.
    pub scc_largest_n: usize,
    /// SAT-only measurements at sizes the enumerator cannot reach.
    pub sizes: Vec<AfSizeReport>,
    /// Decomposed-engine scenarios at sizes the monolithic encoding
    /// cannot reach (two generators per entry in the size list).
    pub decomposed: Vec<AfSccSizeReport>,
}

/// Builds the two large-n scenario frameworks at `n` arguments.
fn scc_scenarios(n: usize) -> [(&'static str, Framework); 2] {
    let layers = (n / 50).clamp(4, 40.min(n));
    [
        ("scale_free", scale_free_framework(n, 0xD15C ^ n as u64)),
        (
            "layered_debate",
            layered_debate_framework(n, layers, 0xD15C ^ n as u64),
        ),
    ]
}

/// Runs the engine comparison: a three-way cross-checked smoke
/// population at `smoke_n` arguments, the grounded chain comparison at
/// `grounded_chain_n`, SAT-path measurements at each of `sizes`, and
/// decomposed-engine scenarios at each of `scc_sizes` — cross-checked
/// against the monolithic encoding up to `scc_crosscheck_max`
/// arguments, decomposed-only beyond it.
pub fn run_af_bench(
    smoke_n: usize,
    smoke_seeds: usize,
    grounded_chain_n: usize,
    sizes: &[usize],
    scc_sizes: &[usize],
    scc_crosscheck_max: usize,
) -> AfBenchReport {
    assert!(smoke_n <= 16, "smoke instances must fit the enumerator");
    let smoke: Vec<Framework> = (0..smoke_seeds as u64)
        .flat_map(|seed| {
            [
                random_framework(smoke_n, 2 * smoke_n, seed),
                deliberation_framework(smoke_n, seed),
                // Multi-SCC shapes: mutual pairs plus singleton tails,
                // so the decomposed walk exercises branching, not just
                // propagation, inside the smoke gate.
                scale_free_framework(smoke_n, seed),
                layered_debate_framework(smoke_n, 3.min(smoke_n), seed),
            ]
        })
        .collect();

    let (naive_ms, naive_verdicts) =
        crate::best_of_ms(3, || smoke.iter().map(naive_sweep).collect::<Vec<_>>());
    let (sat_ms, sat_verdicts) =
        crate::best_of_ms(3, || smoke.iter().map(sat_sweep).collect::<Vec<_>>());
    let extensions_agree = naive_verdicts == sat_verdicts;
    let scc_verdicts: Vec<SemanticsVerdict> = smoke.iter().map(scc_sweep).collect();
    let mut scc_agree = scc_verdicts == sat_verdicts;

    let chain = chain_framework(grounded_chain_n);
    let (grounded_naive_ms, grounded_naive) =
        crate::best_of_ms(3, || naive::grounded_extension(&chain));
    let (grounded_csr_ms, grounded_csr) = crate::best_of_ms(3, || chain.grounded_extension());
    let grounded_agree = grounded_naive == grounded_csr;

    let sizes = sizes
        .iter()
        .map(|&n| {
            let af = random_framework(n, 2 * n, 0xBEEF ^ n as u64);
            let (grounded_ms, grounded) = crate::best_of_ms(3, || af.grounded_extension());
            let (preferred_ms, preferred) = crate::best_of_ms(3, || af.preferred_extensions());
            let (stable_ms, stable) = crate::best_of_ms(3, || af.stable_extensions());
            let dialogue = deliberation_framework(n, 0xBEEF ^ n as u64);
            let deliberation_preferred_is_grounded =
                dialogue.preferred_extensions() == vec![dialogue.grounded_extension()];
            AfSizeReport {
                n,
                attacks: af.attack_count(),
                grounded_ms,
                grounded_size: grounded.len(),
                preferred_ms,
                preferred_count: preferred.len(),
                stable_ms,
                stable_count: stable.len(),
                deliberation_preferred_is_grounded,
            }
        })
        .collect();

    let mut scc_speedup = 0.0;
    let mut scc_largest_n = 0;
    let mut decomposed = Vec::new();
    for &n in scc_sizes {
        for (generator, af) in scc_scenarios(n) {
            let (grounded_ms, _) = crate::best_of_ms(3, || af.grounded_extension());
            let (preferred_ms, preferred) =
                crate::best_of_ms(3, || Decomposed::new(&af).preferred_extensions());
            let (stable_ms, stable) =
                crate::best_of_ms(3, || Decomposed::new(&af).stable_extensions());
            let dec = Decomposed::new(&af);
            let cond = dec.condensation();
            let largest = cond.largest_component();

            let (monolithic_preferred_ms, agrees_with_monolithic, speedup_vs_monolithic) =
                if n <= scc_crosscheck_max {
                    let (mono_ms, mono_preferred) =
                        crate::best_of_ms(3, || AfSat::complete(&af).preferred());
                    let mono_stable = AfSat::stable(&af).extensions(None);
                    let as_set = |v: &[BTreeSet<ArgId>]| -> BTreeSet<BTreeSet<ArgId>> {
                        v.iter().cloned().collect()
                    };
                    let agrees = as_set(&mono_preferred) == as_set(&preferred)
                        && as_set(&mono_stable) == as_set(&stable);
                    scc_agree &= agrees;
                    let speedup = mono_ms / preferred_ms.max(1e-9);
                    scc_speedup = speedup;
                    (Some(mono_ms), Some(agrees), Some(speedup))
                } else {
                    (None, None, None)
                };

            scc_largest_n = scc_largest_n.max(n);
            decomposed.push(AfSccSizeReport {
                generator: generator.to_string(),
                n,
                attacks: af.attack_count(),
                components: cond.num_components(),
                largest_component: largest,
                levels: cond.num_levels(),
                grounded_ms,
                preferred_ms,
                preferred_count: preferred.len(),
                stable_ms,
                stable_count: stable.len(),
                monolithic_preferred_ms,
                agrees_with_monolithic,
                speedup_vs_monolithic,
            });
        }
    }

    AfBenchReport {
        smoke_instances: smoke.len(),
        smoke_n,
        naive_ms,
        sat_ms,
        sat_over_naive: naive_ms / sat_ms.max(1e-9),
        extensions_agree,
        grounded_chain_n,
        grounded_naive_ms,
        grounded_csr_ms,
        grounded_over_naive: grounded_naive_ms / grounded_csr_ms.max(1e-9),
        grounded_agree,
        scc_agree,
        scc_speedup,
        scc_largest_n,
        sizes,
        decomposed,
    }
}

/// Renders the report as JSON (the `BENCH_af.json` artifact).
pub fn bench_af_json(report: &AfBenchReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

/// Human-readable summary for the repro binary.
pub fn render_report(report: &AfBenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "argumentation-framework semantics, {} cross-checked {}-argument instances\n\
           subset enumeration (complete+preferred+stable+credulous): {:>10.3} ms\n\
           SAT labelling sessions (same queries):                    {:>10.3} ms\n\
           speedup: {:.1}x   extensions agree: {}\n\
         grounded on a {}-argument reinstatement chain\n\
           fixpoint with per-candidate attack scans: {:>10.3} ms\n\
           CSR worklist:                             {:>10.3} ms\n\
           speedup: {:.1}x   grounded agree: {}",
        report.smoke_instances,
        report.smoke_n,
        report.naive_ms,
        report.sat_ms,
        report.sat_over_naive,
        report.extensions_agree,
        report.grounded_chain_n,
        report.grounded_naive_ms,
        report.grounded_csr_ms,
        report.grounded_over_naive,
        report.grounded_agree,
    );
    let _ = writeln!(out, "SAT path beyond the old 16-argument ceiling:");
    for s in &report.sizes {
        let _ = writeln!(
            out,
            "  n={:<5} attacks={:<5} grounded {:>8.3} ms ({} in)   \
             preferred {:>9.3} ms ({})   stable {:>9.3} ms ({})   dialogue-unique: {}",
            s.n,
            s.attacks,
            s.grounded_ms,
            s.grounded_size,
            s.preferred_ms,
            s.preferred_count,
            s.stable_ms,
            s.stable_count,
            s.deliberation_preferred_is_grounded,
        );
    }
    let _ = writeln!(
        out,
        "SCC-decomposed engine on deliberation-shaped scenarios \
         (agree: {}, speedup vs monolithic at largest cross-check: {:.1}x):",
        report.scc_agree, report.scc_speedup,
    );
    for s in &report.decomposed {
        let _ = writeln!(
            out,
            "  {:<14} n={:<7} attacks={:<7} comps={:<7} largest={:<3} levels={:<3} \
             grounded {:>8.3} ms   preferred {:>9.3} ms ({})   stable {:>9.3} ms ({})",
            s.generator,
            s.n,
            s.attacks,
            s.components,
            s.largest_component,
            s.levels,
            s.grounded_ms,
            s.preferred_ms,
            s.preferred_count,
            s.stable_ms,
            s.stable_count,
        );
        if let (Some(mono), Some(agrees), Some(speedup)) = (
            s.monolithic_preferred_ms,
            s.agrees_with_monolithic,
            s.speedup_vs_monolithic,
        ) {
            let _ = writeln!(
                out,
                "  {:<14} monolithic preferred {:>9.3} ms   agree: {}   decomposed speedup: {:.1}x",
                "", mono, agrees, speedup,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_framework(10, 20, 7), random_framework(10, 20, 7));
        assert_eq!(deliberation_framework(10, 7), deliberation_framework(10, 7));
        let af = random_framework(10, 20, 7);
        assert_eq!(af.len(), 10);
        assert!(af.attack_count() <= 20);
    }

    #[test]
    fn engines_agree_on_smoke_scale_instances() {
        for seed in 0..4 {
            let af = random_framework(8, 16, seed);
            assert_eq!(naive_sweep(&af), sat_sweep(&af), "random seed {seed}");
            let d = deliberation_framework(8, seed);
            assert_eq!(naive_sweep(&d), sat_sweep(&d), "deliberation seed {seed}");
        }
    }

    #[test]
    fn preferred_succeeds_on_a_200_argument_random_framework() {
        // The acceptance-criteria instance: impossible before the SAT
        // path (the enumerator asserted n <= 16).
        let af = random_framework(200, 400, 0xBEEF ^ 200);
        let preferred = af.preferred_extensions();
        assert!(!preferred.is_empty());
        let grounded = af.grounded_extension();
        for p in &preferred {
            assert!(af.admissible(p));
            assert!(grounded.is_subset(p));
        }
    }

    #[test]
    fn deliberation_frameworks_are_acyclic_and_grounded_decides() {
        let af = deliberation_framework(60, 3);
        let preferred = af.preferred_extensions();
        assert_eq!(preferred, vec![af.grounded_extension()]);
        assert_eq!(af.stable_extensions(), preferred);
    }

    #[test]
    fn csr_grounded_does_not_degrade_quadratically_on_chains() {
        // The old fixpoint re-scans the attack relation per candidate
        // per pass: O(n^2) scans of O(n) each. The CSR worklist is
        // O(V+E); a 50k chain completes instantly, where a quadratic
        // path would need ~10^9 edge visits and a cubic one ~10^14.
        let big = chain_framework(50_000);
        let grounded = big.grounded_extension();
        assert_eq!(grounded.len(), 25_000);
        assert!(grounded.contains(&49_999), "the unattacked top is in");
        assert!(!grounded.contains(&49_998));

        // And on a size the old path can still handle, the two agree —
        // with the CSR path far ahead even at n=160 in a debug build.
        let small = chain_framework(160);
        let (naive_ms, naive_grounded) = crate::best_of_ms(2, || naive::grounded_extension(&small));
        let (csr_ms, csr_grounded) = crate::best_of_ms(2, || small.grounded_extension());
        assert_eq!(naive_grounded, csr_grounded);
        assert!(
            csr_ms <= naive_ms,
            "CSR grounded ({csr_ms} ms) should not lose to the \
             quadratic fixpoint ({naive_ms} ms) on a 160-chain"
        );
    }

    #[test]
    fn report_is_sane_at_small_scale() {
        let report = run_af_bench(8, 2, 120, &[8, 20], &[120], 120);
        assert!(report.extensions_agree);
        assert!(report.grounded_agree);
        assert!(report.scc_agree);
        assert!(report.scc_speedup > 0.0);
        assert_eq!(report.scc_largest_n, 120);
        assert_eq!(report.smoke_instances, 8);
        assert_eq!(report.sizes.len(), 2);
        for s in &report.sizes {
            assert!(s.deliberation_preferred_is_grounded);
            assert!(s.preferred_count >= 1);
        }
        assert_eq!(report.decomposed.len(), 2);
        for s in &report.decomposed {
            assert_eq!(s.agrees_with_monolithic, Some(true));
            assert!(s.preferred_count >= 1);
            assert!(s.components > 1, "multi-SCC by construction");
        }
        let json = bench_af_json(&report);
        assert!(json.contains("\"sat_over_naive\""));
        assert!(json.contains("\"grounded_over_naive\""));
        assert!(json.contains("\"extensions_agree\": true"));
        assert!(json.contains("\"scc_agree\": true"));
        assert!(json.contains("\"speedup_vs_monolithic\""));
        assert!(render_report(&report).contains("extensions agree: true"));
    }

    #[test]
    fn scenario_generators_are_deterministic_and_multi_scc() {
        assert_eq!(scale_free_framework(60, 9), scale_free_framework(60, 9));
        assert_eq!(
            layered_debate_framework(60, 4, 9),
            layered_debate_framework(60, 4, 9)
        );
        for (name, af) in scc_scenarios(200) {
            let dec = Decomposed::new(&af);
            let cond = dec.condensation();
            assert!(
                cond.num_components() < af.len(),
                "{name}: some non-trivial component"
            );
            assert!(
                cond.largest_component() >= 2,
                "{name}: a mutual pair survives"
            );
            assert!(cond.num_levels() >= 2, "{name}: real condensation depth");
            // Bounded branching is the design contract: preferred count
            // stays within 2^pairs regardless of size.
            let preferred = dec.preferred_extensions();
            assert!((1..=8).contains(&preferred.len()), "{name}");
        }
    }

    #[test]
    fn scc_sweep_matches_sat_sweep_on_scenario_shapes() {
        for seed in 0..3 {
            let sf = scale_free_framework(14, seed);
            assert_eq!(scc_sweep(&sf), sat_sweep(&sf), "scale_free seed {seed}");
            let ld = layered_debate_framework(14, 3, seed);
            assert_eq!(scc_sweep(&ld), sat_sweep(&ld), "layered seed {seed}");
        }
    }
}
