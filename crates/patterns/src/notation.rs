//! Matsuno's instantiation-annotation notation (Graydon §III-L).
//!
//! "`[2/x, /y, "hello"/z]` represents that x and z are instantiated with 2
//! and "hello", respectively, whereas y is not instantiated."
//!
//! [`parse_annotation`] parses this notation into bound and unbound parts;
//! [`render_annotation`] prints it back.

use crate::binding::{Binding, ParamValue};
use casekit_logic::{ParseError, Span};

/// A parsed annotation: the bindings plus the explicitly-uninstantiated
/// parameter names.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Annotation {
    /// Instantiated parameters.
    pub binding: Binding,
    /// Parameters marked uninstantiated (`/y`).
    pub uninstantiated: Vec<String>,
}

/// Parses `[value/param, /param, ...]`.
///
/// Values are integers, double-quoted strings, or bracketed lists
/// `(v1; v2; …)` of the same.
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed notation.
pub fn parse_annotation(input: &str) -> Result<Annotation, ParseError> {
    let trimmed = input.trim();
    let inner = trimmed
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| {
            ParseError::new(
                "annotation must be wrapped in [ ]",
                Span::new(0, input.len()),
            )
        })?;
    let mut annotation = Annotation::default();
    if inner.trim().is_empty() {
        return Ok(annotation);
    }
    for (idx, raw_entry) in split_top_level(inner, ',').into_iter().enumerate() {
        let entry = raw_entry.trim();
        let slash = find_top_level(entry, '/').ok_or_else(|| {
            ParseError::new(
                format!("entry {} (`{entry}`) lacks a `/`", idx + 1),
                Span::new(0, input.len()),
            )
        })?;
        let (value_text, param) = entry.split_at(slash);
        let param = param[1..].trim();
        if param.is_empty() {
            return Err(ParseError::new(
                format!("entry {} (`{entry}`) names no parameter", idx + 1),
                Span::new(0, input.len()),
            ));
        }
        let value_text = value_text.trim();
        if value_text.is_empty() {
            annotation.uninstantiated.push(param.to_string());
        } else {
            let value = parse_value(value_text, input.len())?;
            annotation.binding.set(param, value);
        }
    }
    Ok(annotation)
}

fn parse_value(text: &str, input_len: usize) -> Result<ParamValue, ParseError> {
    let text = text.trim();
    if let Some(stripped) = text.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| ParseError::new("unterminated string value", Span::new(0, input_len)))?;
        return Ok(ParamValue::Str(inner.to_string()));
    }
    if let Some(stripped) = text.strip_prefix('(') {
        let inner = stripped
            .strip_suffix(')')
            .ok_or_else(|| ParseError::new("unterminated list value", Span::new(0, input_len)))?;
        let items = if inner.trim().is_empty() {
            Vec::new()
        } else {
            split_top_level(inner, ';')
                .into_iter()
                .map(|item| parse_value(item.trim(), input_len))
                .collect::<Result<Vec<_>, _>>()?
        };
        return Ok(ParamValue::List(items));
    }
    text.parse::<i64>().map(ParamValue::Int).map_err(|_| {
        ParseError::new(
            format!("`{text}` is not an integer, string, or list"),
            Span::new(0, input_len),
        )
    })
}

/// Splits on `sep` outside quotes and parentheses.
fn split_top_level(input: &str, sep: char) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut current = String::new();
    for c in input.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                current.push(c);
            }
            '(' if !in_str => {
                depth += 1;
                current.push(c);
            }
            ')' if !in_str => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            c if c == sep && depth == 0 && !in_str => {
                out.push(std::mem::take(&mut current));
            }
            c => current.push(c),
        }
    }
    out.push(current);
    out
}

/// Position of the *last* top-level `target` (values may contain `/` inside
/// strings).
fn find_top_level(input: &str, target: char) -> Option<usize> {
    let mut depth = 0usize;
    let mut in_str = false;
    let mut found = None;
    for (i, c) in input.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '(' if !in_str => depth += 1,
            ')' if !in_str => depth = depth.saturating_sub(1),
            c if c == target && depth == 0 && !in_str => found = Some(i),
            _ => {}
        }
    }
    found
}

/// Renders an annotation back into Matsuno's notation.
pub fn render_annotation(annotation: &Annotation) -> String {
    let mut parts: Vec<String> = Vec::new();
    for param in annotation.binding.params() {
        if let Some(value) = annotation.binding.get(param) {
            parts.push(format!("{}/{param}", render_value(value)));
        }
    }
    for param in &annotation.uninstantiated {
        parts.push(format!("/{param}"));
    }
    format!("[{}]", parts.join(", "))
}

fn render_value(value: &ParamValue) -> String {
    match value {
        ParamValue::Int(v) => v.to_string(),
        ParamValue::Str(s) => format!("\"{s}\""),
        ParamValue::List(items) => {
            let inner: Vec<String> = items.iter().map(render_value).collect();
            format!("({})", inner.join("; "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_matsunos_example() {
        // "[2/x, /y, "hello"/z]": x=2, y uninstantiated, z="hello".
        let a = parse_annotation(r#"[2/x, /y, "hello"/z]"#).unwrap();
        assert_eq!(a.binding.get("x"), Some(&ParamValue::Int(2)));
        assert_eq!(a.binding.get("z"), Some(&ParamValue::Str("hello".into())));
        assert!(a.binding.get("y").is_none());
        assert_eq!(a.uninstantiated, vec!["y".to_string()]);
    }

    #[test]
    fn parses_lists() {
        let a = parse_annotation(r#"[("h1"; "h2")/hazards]"#).unwrap();
        assert_eq!(
            a.binding.get("hazards"),
            Some(&ParamValue::List(vec!["h1".into(), "h2".into()]))
        );
        let a = parse_annotation("[()/empty]").unwrap();
        assert_eq!(a.binding.get("empty"), Some(&ParamValue::List(vec![])));
    }

    #[test]
    fn empty_annotation() {
        let a = parse_annotation("[]").unwrap();
        assert!(a.binding.is_empty());
        assert!(a.uninstantiated.is_empty());
    }

    #[test]
    fn strings_may_contain_separators() {
        let a = parse_annotation(r#"["a, b/c"/x]"#).unwrap();
        assert_eq!(a.binding.get("x"), Some(&ParamValue::Str("a, b/c".into())));
    }

    #[test]
    fn negative_integers() {
        let a = parse_annotation("[-40/temp]").unwrap();
        assert_eq!(a.binding.get("temp"), Some(&ParamValue::Int(-40)));
    }

    #[test]
    fn errors() {
        assert!(parse_annotation("2/x").is_err()); // no brackets
        assert!(parse_annotation("[2 x]").is_err()); // no slash
        assert!(parse_annotation("[2/]").is_err()); // no param
        assert!(parse_annotation(r#"["open/x]"#).is_err()); // unterminated
        assert!(parse_annotation("[(1; 2/x]").is_err()); // unterminated list
        assert!(parse_annotation("[maybe/x]").is_err()); // not a value
    }

    #[test]
    fn round_trip() {
        for src in [
            r#"[2/x, "hello"/z, /y]"#,
            "[]",
            r#"[(1; 2; 3)/xs]"#,
            r#"[("a"; "b")/names, 5/n]"#,
        ] {
            let a = parse_annotation(src).unwrap();
            let rendered = render_annotation(&a);
            let b = parse_annotation(&rendered).unwrap();
            assert_eq!(a, b, "round-trip failed for {src} -> {rendered}");
        }
    }
}
