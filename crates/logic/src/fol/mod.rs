//! First-order Horn-clause logic: terms, unification, knowledge bases, and
//! SLD resolution — a mini-Prolog.
//!
//! This substrate reproduces Figure 1 of Graydon (DSN 2015): the *desert
//! bank* knowledge base whose query `adjacent(desert_bank, river)` succeeds
//! under formal validation even though the argument equivocates on `bank`.
//!
//! ```
//! use casekit_logic::fol::{KnowledgeBase, parse_program, parse_query};
//!
//! let kb: KnowledgeBase = parse_program(
//!     "is_a(desert_bank, bank).
//!      adjacent(bank, river).
//!      adjacent(X, Y) :- is_a(X, Z), adjacent(Z, Y).",
//! ).unwrap();
//! let goal = parse_query("adjacent(desert_bank, river)").unwrap();
//! assert!(kb.proves(&goal));
//! ```

mod engine;
mod parser;
mod term;
mod unify;

pub use engine::{KnowledgeBase, Solution, SolveConfig, SolveOutcome};
pub use parser::{parse_program, parse_query, parse_term};
pub use term::{Clause, Term};
pub use unify::{unify, Substitution};

/// Builds the exact knowledge base of the paper's Figure 1.
pub fn desert_bank_kb() -> KnowledgeBase {
    parse_program(
        "is_a(desert_bank, bank).\n\
         adjacent(bank, river).\n\
         adjacent(X, Y) :- is_a(X, Z), adjacent(Z, Y).",
    )
    .expect("static program")
}
