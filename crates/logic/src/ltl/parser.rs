//! Parser for LTL formulas.
//!
//! Grammar (lowest precedence first):
//!
//! ```text
//! implies ::= or ( "->" implies )?
//! or      ::= and ( "|" and )*
//! and     ::= until ( "&" until )*
//! until   ::= unary ( ("U" | "R") unary )*      (left associative)
//! unary   ::= ("~" | "X" | "F" | "G") unary | "(" implies ")" | atom
//! ```
//!
//! Unicode aliases `¬ ∧ ∨ → ◇ □ ○` are accepted (`◇` = F, `□` = G, `○` = X).

use super::ast::Ltl;
use crate::error::{ParseError, Span, SyntaxError};

struct P<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn skip_ws(&mut self) {
        let rest = &self.input[self.pos..];
        let trimmed = rest.trim_start();
        self.pos += rest.len() - trimmed.len();
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.input[self.pos..].chars().next()
    }

    fn try_eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    /// Reads a word `[A-Za-z_][A-Za-z0-9_]*` without consuming it.
    fn peek_word(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        let mut end = 0;
        for (i, c) in rest.char_indices() {
            if (i == 0 && (c.is_alphabetic() || c == '_'))
                || (i > 0 && (c.is_alphanumeric() || c == '_'))
            {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        if end == 0 {
            None
        } else {
            Some(&rest[..end])
        }
    }

    fn eat_word(&mut self) -> Option<&'a str> {
        let w = self.peek_word()?;
        self.pos += w.len();
        Some(w)
    }

    /// What sits at the cursor, rendered for an "expected X, found Y"
    /// message (`None` at end of input).
    fn found_here(&mut self) -> Option<String> {
        self.peek().map(|c| format!("`{c}`"))
    }

    fn implies(&mut self) -> Result<Ltl, ParseError> {
        let lhs = self.or()?;
        if self.try_eat("->") || self.try_eat("→") {
            let rhs = self.implies()?;
            return Ok(lhs.implies(rhs));
        }
        Ok(lhs)
    }

    fn or(&mut self) -> Result<Ltl, ParseError> {
        let mut lhs = self.and()?;
        loop {
            if self.try_eat("||")
                || (self.peek() == Some('|') && self.try_eat("|"))
                || self.try_eat("∨")
            {
                let rhs = self.and()?;
                lhs = lhs.or(rhs);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Ltl, ParseError> {
        let mut lhs = self.until()?;
        loop {
            if self.try_eat("&&")
                || (self.peek() == Some('&') && self.try_eat("&"))
                || self.try_eat("∧")
            {
                let rhs = self.until()?;
                lhs = lhs.and(rhs);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn until(&mut self) -> Result<Ltl, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            match self.peek_word() {
                Some("U") => {
                    self.eat_word();
                    let rhs = self.unary()?;
                    lhs = lhs.until(rhs);
                }
                Some("R") => {
                    self.eat_word();
                    let rhs = self.unary()?;
                    lhs = lhs.release(rhs);
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Ltl, ParseError> {
        self.skip_ws();
        if self.try_eat("~") || self.try_eat("!") || self.try_eat("¬") {
            return Ok(self.unary()?.not());
        }
        if self.try_eat("◇") {
            return Ok(self.unary()?.finally());
        }
        if self.try_eat("□") {
            return Ok(self.unary()?.globally());
        }
        if self.try_eat("○") {
            return Ok(self.unary()?.next());
        }
        match self.peek_word() {
            Some("X") => {
                self.eat_word();
                return Ok(self.unary()?.next());
            }
            Some("F") => {
                self.eat_word();
                return Ok(self.unary()?.finally());
            }
            Some("G") => {
                self.eat_word();
                return Ok(self.unary()?.globally());
            }
            Some("true") => {
                self.eat_word();
                return Ok(Ltl::True);
            }
            Some("false") => {
                self.eat_word();
                return Ok(Ltl::False);
            }
            _ => {}
        }
        if self.try_eat("(") {
            let inner = self.implies()?;
            if !self.try_eat(")") {
                let found = self.found_here();
                return Err(
                    SyntaxError::expected_found("`)`", found, Span::point(self.pos))
                        .with_hint("close the parenthesized group"),
                );
            }
            return Ok(inner);
        }
        match self.eat_word() {
            Some(w) if !matches!(w, "U" | "R") => Ok(Ltl::prop(w)),
            _ => {
                let found = self.found_here();
                Err(SyntaxError::expected_found(
                    "an LTL formula",
                    found,
                    Span::point(self.pos),
                ))
            }
        }
    }
}

/// Parses an LTL formula.
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first offending token.
///
/// # Examples
///
/// ```
/// use casekit_logic::ltl::parse_ltl;
/// let f = parse_ltl("G (below_min -> (nonzero U above_min))").unwrap();
/// assert_eq!(f.to_string(), "G (below_min -> nonzero U above_min)");
/// ```
pub fn parse_ltl(input: &str) -> Result<Ltl, ParseError> {
    let mut p = P { input, pos: 0 };
    let f = p.implies()?;
    p.skip_ws();
    if p.pos < input.len() {
        return Err(SyntaxError::with_kind(
            crate::error::SyntaxErrorKind::TrailingInput,
            "unexpected trailing input",
            Span::point(p.pos),
        ));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_and_constants() {
        assert_eq!(parse_ltl("p").unwrap(), Ltl::prop("p"));
        assert_eq!(parse_ltl("true").unwrap(), Ltl::True);
        assert_eq!(parse_ltl("false").unwrap(), Ltl::False);
    }

    #[test]
    fn temporal_operators() {
        assert_eq!(parse_ltl("X p").unwrap(), Ltl::prop("p").next());
        assert_eq!(parse_ltl("F p").unwrap(), Ltl::prop("p").finally());
        assert_eq!(parse_ltl("G p").unwrap(), Ltl::prop("p").globally());
        assert_eq!(
            parse_ltl("p U q").unwrap(),
            Ltl::prop("p").until(Ltl::prop("q"))
        );
        assert_eq!(
            parse_ltl("p R q").unwrap(),
            Ltl::prop("p").release(Ltl::prop("q"))
        );
    }

    #[test]
    fn unicode_operators() {
        assert_eq!(parse_ltl("□ p").unwrap(), parse_ltl("G p").unwrap());
        assert_eq!(parse_ltl("◇ p").unwrap(), parse_ltl("F p").unwrap());
        assert_eq!(parse_ltl("○ p").unwrap(), parse_ltl("X p").unwrap());
        assert_eq!(parse_ltl("¬p ∧ q").unwrap(), parse_ltl("~p & q").unwrap());
    }

    #[test]
    fn brunel_cazin_shape() {
        // The paper's Detect-and-Avoid formalisation (propositionalised).
        let f = parse_ltl("G (below_min -> (nonzero U above_min))").unwrap();
        assert_eq!(f.props().len(), 3);
    }

    #[test]
    fn precedence_until_binds_tighter_than_and() {
        let f = parse_ltl("p U q & r").unwrap();
        assert_eq!(f, Ltl::prop("p").until(Ltl::prop("q")).and(Ltl::prop("r")));
    }

    #[test]
    fn nested_temporal() {
        let f = parse_ltl("G F p").unwrap();
        assert_eq!(f, Ltl::prop("p").finally().globally());
        let f = parse_ltl("~G p").unwrap();
        assert_eq!(f, Ltl::prop("p").globally().not());
    }

    #[test]
    fn operator_names_not_usable_as_props() {
        assert!(parse_ltl("U").is_err());
        assert!(parse_ltl("p U").is_err());
    }

    #[test]
    fn trailing_input_rejected() {
        assert!(parse_ltl("p q").is_err());
        assert!(parse_ltl("(p").is_err());
    }

    #[test]
    fn round_trip() {
        for src in [
            "G (request -> F grant)",
            "p U (q R r)",
            "X X p",
            "~(p & q) | F r",
            "G F p -> F G q",
        ] {
            let f = parse_ltl(src).unwrap();
            assert_eq!(parse_ltl(&f.to_string()).unwrap(), f, "round trip {src}");
        }
    }
}
