//! CaseService benchmark harness: a fleet of live cases under mixed
//! edit/query traffic, measured incremental against the honest
//! recompile-from-scratch baseline.
//!
//! The baseline arm is [`naive_service_traffic`]: a serial loop that
//! replays every case's traffic statelessly — edits apply to the
//! in-memory argument, and every query pays the full batch bill
//! ([`casekit_service::batch_answers`]: one Tseitin compilation for
//! the machine check, another for the lint run, a third for the
//! probe, all passes from cold caches). That is the access pattern of
//! a stateless checking endpoint re-answering each request from
//! source. The service arm is [`CaseService::drive`]: each case keeps
//! its compiled session alive across the stream — a persistent CDCL
//! session whose learned clauses and payload literals survive edits,
//! a witness pool reusing models across questions and revisions, a
//! dirty-tracked step-verdict cache, and an answer bundle that makes
//! repeat queries free — with the per-case streams sharded across
//! `casekit-runtime` workers.
//!
//! `bench_service_json` emits the comparison as `BENCH_service.json`
//! (via `repro service`), with every incremental answer cross-checked
//! against a fresh batch compilation (`answers_agree`) — at every
//! step of every stream, for worker counts 1, 2, and the full fleet —
//! so the speedup is earned on verdict-identical output. `speedup` is
//! baseline/parallel; `thread_speedup` isolates the worker
//! contribution (≈1.0 on a single-core host, where the session reuse
//! supplies the whole win).

use casekit_core::dsl::parse_argument;
use casekit_core::{Argument, FormalPayload, Node, NodeKind};
use casekit_logic::prop::parse;
use casekit_runtime::Runtime;
use casekit_service::{batch_transcript, CaseAnswers, CaseOp, CaseService, EditOp};
use serde::Serialize;

/// Workload shape: `cases` live arguments, each driven through
/// `rounds` rounds of mixed edit/query traffic.
#[derive(Debug, Clone)]
pub struct ServiceBenchConfig {
    /// Number of concurrently live cases.
    pub cases: usize,
    /// Formalised branch goals per case (≥ 3), each a deductive step
    /// over its own premise chain.
    pub premises: usize,
    /// Implication-chain links per premise formula.
    pub width: usize,
    /// Edit/query rounds per case (each round ends in a query; some
    /// rounds are query-only, as real editing sessions are).
    pub rounds: usize,
}

/// The full-scale workload behind the committed `BENCH_service.json`:
/// thousands of live cases.
pub fn scaled_config() -> ServiceBenchConfig {
    ServiceBenchConfig {
        cases: 2_000,
        premises: 4,
        width: 6,
        rounds: 6,
    }
}

/// The CI smoke workload (`repro service --smoke`): small enough to
/// finish in seconds, mixed enough that every op class and every
/// session cache is exercised.
pub fn smoke_config() -> ServiceBenchConfig {
    ServiceBenchConfig {
        cases: 60,
        premises: 3,
        width: 10,
        rounds: 5,
    }
}

/// Builds the corpus the traffic runs over. Every case is a two-level
/// deduction: the top claim (the conjunction of every branch's chain
/// end) argued over a strategy over `premises` formalised *branch*
/// goals, each branch goal in turn argued from its own premise chain
/// (the [`crate::lint`] chain generator, so formula scale matches the
/// lint substrate). Each branch is its own deductive step, which is
/// what makes dirty tracking measurable: editing one premise
/// re-verifies one branch and reuses the rest from the step-verdict
/// cache. Case `k` additionally carries a light defect mix (duplicate
/// evidence, an undeveloped side claim) so the lint plane answers more
/// than a clean stream.
pub fn service_corpus(config: &ServiceBenchConfig) -> Vec<Argument> {
    use std::fmt::Write as _;
    assert!(config.premises >= 3, "at least three branches");
    (0..config.cases)
        .map(|k| {
            let n = config.premises;
            let w = config.width;
            let conclusion = (0..n)
                .map(|i| crate::lint::atom(i, w))
                .collect::<Vec<_>>()
                .join(" & ");
            let mut src = format!("argument \"case-{k}\" {{\n");
            let _ = writeln!(
                src,
                "  goal g0 \"top-level claim\" formal \"{conclusion}\" {{"
            );
            src.push_str("    strategy s0 \"argue per subsystem branch\" {\n");
            for i in 0..n {
                let _ = writeln!(
                    src,
                    "      goal b{i} \"branch {i} chain end\" formal \"{}\" {{",
                    crate::lint::atom(i, w)
                );
                let _ = writeln!(
                    src,
                    "        goal p{i} \"premise {i}\" formal \"{}\" {{",
                    crate::lint::premise_src(i, w)
                );
                let _ = writeln!(src, "          solution e{i} \"analysis report {i}\"");
                if i == 0 && k % 4 == 1 {
                    src.push_str("          solution d1 \"Stress test log\"\n");
                    src.push_str("          solution d2 \"stress  test log\"\n");
                }
                src.push_str("        }\n");
                src.push_str("      }\n");
            }
            if k % 4 == 3 {
                src.push_str("      goal u1 \"unargued side claim\"\n");
            }
            src.push_str("    }\n");
            src.push_str("  }\n");
            src.push_str("}\n");
            parse_argument(&src).expect("generated corpus parses")
        })
        .collect()
}

/// The deterministic mixed traffic stream for case `k`: an opening
/// query, then `rounds` rounds cycling through premise-breaking edits,
/// query-only rounds (the common case in live editing), premise
/// restores with a text touch-up, and structural add/remove toggles of
/// an extra supporting premise. Every round ends in a query, so every
/// revision's answers enter the agreement cross-check.
pub fn service_traffic(config: &ServiceBenchConfig) -> Vec<Vec<CaseOp>> {
    (0..config.cases)
        .map(|k| {
            let mut ops = vec![CaseOp::Query];
            let mut extra_live = false;
            for r in 0..config.rounds {
                let target_premise = (k + r) % config.premises;
                let target = casekit_core::NodeId::new(format!("p{target_premise}"));
                match (k + r) % 4 {
                    0 => {
                        // Sever the chain's last link: the conclusion
                        // loses this premise's chain end.
                        ops.push(CaseOp::Edit(EditOp::ReplaceFormula {
                            node: target,
                            formula: parse(&crate::lint::premise_src(
                                target_premise,
                                config.width - 1,
                            ))
                            .expect("generated formula parses"),
                        }));
                    }
                    1 => {
                        // Query-only round: served from the answer cache.
                    }
                    2 => {
                        // Restore the chain and touch the statement text.
                        ops.push(CaseOp::Edit(EditOp::ReplaceFormula {
                            node: target,
                            formula: parse(&crate::lint::premise_src(target_premise, config.width))
                                .expect("generated formula parses"),
                        }));
                        ops.push(CaseOp::Edit(EditOp::SetText {
                            node: "g0".into(),
                            text: format!("top-level claim, revision {r}"),
                        }));
                    }
                    _ => {
                        // Structural toggle of an extra supporting premise.
                        if extra_live {
                            ops.push(CaseOp::Edit(EditOp::RemoveNode { node: "w0".into() }));
                        } else {
                            ops.push(CaseOp::Edit(EditOp::AddSupport {
                                parent: "s0".into(),
                                node: Node::new("w0", NodeKind::Goal, "late-added premise")
                                    .with_formal(FormalPayload::Prop(
                                        parse(&crate::lint::atom(config.premises, 0))
                                            .expect("generated formula parses"),
                                    )),
                            }));
                        }
                        extra_live = !extra_live;
                    }
                }
                // Two queries per round: a service answers more reads
                // than writes (check panel, lint stream, dashboards all
                // ask again). The second read is served from the answer
                // bundle; the stateless baseline pays full price twice.
                ops.push(CaseOp::Query);
                ops.push(CaseOp::Query);
            }
            ops
        })
        .collect()
}

/// The baseline arm: serial, stateless — every query recompiles the
/// current revision from scratch, three times over (machine, lint,
/// probe), exactly as the pre-service library entry points do.
pub fn naive_service_traffic(
    corpus: &[Argument],
    traffic: &[Vec<CaseOp>],
    config: &casekit_analysis::LintConfig,
) -> Vec<Vec<CaseAnswers>> {
    corpus
        .iter()
        .zip(traffic)
        .map(|(argument, ops)| batch_transcript(argument, ops, config))
        .collect()
}

/// The service arm: live sessions, sharded across the runtime.
fn service_run(
    corpus: &[Argument],
    traffic: &[Vec<CaseOp>],
    runtime: &Runtime,
) -> (CaseService, Vec<Vec<CaseAnswers>>) {
    let mut service = CaseService::new();
    for argument in corpus {
        service.open(argument.clone());
    }
    let transcripts = service.drive(traffic, runtime);
    (service, transcripts)
}

/// The measured comparison, serialized into `BENCH_service.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceBenchReport {
    /// Concurrently live cases.
    pub cases: usize,
    /// Formalised premises per case.
    pub premises_per_case: usize,
    /// Implication-chain links per premise formula.
    pub chain_width: usize,
    /// Edit/query rounds per case.
    pub rounds_per_case: usize,
    /// Total edit ops across the fleet.
    pub edits: usize,
    /// Total queries across the fleet (each cross-checked).
    pub queries: usize,
    /// Worker threads used for the parallel run.
    pub workers: usize,
    /// Cores the host exposed during the measurement (bounds
    /// `thread_speedup`).
    pub host_parallelism: usize,
    /// Stateless recompile-from-scratch replay (serial), milliseconds,
    /// best of several runs.
    pub baseline_ms: f64,
    /// Live sessions with one worker, milliseconds, best of several
    /// runs.
    pub serial_ms: f64,
    /// Live sessions with the full worker count, milliseconds, best of
    /// several runs.
    pub parallel_ms: f64,
    /// baseline / parallel — the end-to-end win of keeping sessions
    /// alive.
    pub speedup: f64,
    /// serial / parallel — the worker contribution alone.
    pub thread_speedup: f64,
    /// Support-step verdicts paid to the solver across the serial run.
    pub steps_checked: u64,
    /// Step verdicts answered from the dirty-tracked cache.
    pub steps_reused: u64,
    /// Queries answered entirely from cached answer bundles.
    pub cached_answers: u64,
    /// Whole-theory invalidations (garbage compaction) triggered.
    pub full_rebuilds: u64,
    /// Sanity: the stateless baseline and the live service at workers
    /// 1, 2, and the full count produced identical transcripts —
    /// every incremental answer equals a fresh batch compilation.
    pub answers_agree: bool,
}

/// Runs the comparison on the full-scale workload.
pub fn run_service_bench(workers: usize) -> ServiceBenchReport {
    run_service_bench_with(&scaled_config(), workers)
}

/// Runs the comparison on an explicit workload shape (the smoke gate
/// passes [`smoke_config`]).
pub fn run_service_bench_with(config: &ServiceBenchConfig, workers: usize) -> ServiceBenchReport {
    let corpus = service_corpus(config);
    let traffic = service_traffic(config);
    let lint_config = casekit_analysis::LintConfig::new();

    let (baseline_ms, baseline_answers) =
        crate::best_of_ms(3, || naive_service_traffic(&corpus, &traffic, &lint_config));
    let serial_runtime = Runtime::serial();
    let (serial_ms, (serial_service, serial_answers)) =
        crate::best_of_ms(3, || service_run(&corpus, &traffic, &serial_runtime));
    let runtime = Runtime::with_workers(workers);
    let (parallel_ms, (_, parallel_answers)) =
        crate::best_of_ms(3, || service_run(&corpus, &traffic, &runtime));

    // Transcript equality across the baseline and an unmeasured worker
    // count: every incremental answer, at every step, equals the
    // from-scratch answer.
    let (_, halfway) = service_run(&corpus, &traffic, &Runtime::with_workers(2));
    let answers_agree = baseline_answers == serial_answers
        && serial_answers == parallel_answers
        && serial_answers == halfway;

    let mut serial_service = serial_service;
    let stats: Vec<_> = serial_service
        .sessions_mut()
        .iter()
        .map(|s| s.stats())
        .collect();
    ServiceBenchReport {
        cases: corpus.len(),
        premises_per_case: config.premises,
        chain_width: config.width,
        rounds_per_case: config.rounds,
        edits: traffic
            .iter()
            .flatten()
            .filter(|op| matches!(op, CaseOp::Edit(_)))
            .count(),
        queries: traffic
            .iter()
            .flatten()
            .filter(|op| matches!(op, CaseOp::Query))
            .count(),
        workers: runtime.workers,
        host_parallelism: Runtime::host_parallelism(),
        baseline_ms,
        serial_ms,
        parallel_ms,
        speedup: baseline_ms / parallel_ms.max(1e-9),
        thread_speedup: serial_ms / parallel_ms.max(1e-9),
        steps_checked: stats.iter().map(|s| s.steps_checked).sum(),
        steps_reused: stats.iter().map(|s| s.steps_reused).sum(),
        cached_answers: stats.iter().map(|s| s.cached_answers).sum(),
        full_rebuilds: stats.iter().map(|s| s.full_rebuilds).sum(),
        answers_agree,
    }
}

/// Renders the report as JSON (the `BENCH_service.json` artifact).
pub fn bench_service_json(report: &ServiceBenchReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

/// Human-readable summary for the repro binary.
pub fn render_report(report: &ServiceBenchReport) -> String {
    format!(
        "case service over {} live cases ({} premises x {}-link chains, {} edits, {} queries)\n\
           baseline (recompile per query, serial):   {:>10.3} ms\n\
           service, 1 worker (live sessions):        {:>10.3} ms\n\
           service, {} workers ({} cores):           {:>10.3} ms\n\
           steps checked/reused: {}/{}   cached answers: {}   rebuilds: {}\n\
           speedup: {:.1}x (threads alone: {:.2}x)   answers agree: {}\n",
        report.cases,
        report.premises_per_case,
        report.chain_width,
        report.edits,
        report.queries,
        report.baseline_ms,
        report.serial_ms,
        report.workers,
        report.host_parallelism,
        report.parallel_ms,
        report.steps_checked,
        report.steps_reused,
        report.cached_answers,
        report.full_rebuilds,
        report.speedup,
        report.thread_speedup,
        report.answers_agree
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServiceBenchConfig {
        ServiceBenchConfig {
            cases: 6,
            premises: 3,
            width: 3,
            rounds: 5,
        }
    }

    #[test]
    fn traffic_covers_every_op_class_and_ends_rounds_with_queries() {
        let config = tiny();
        let traffic = service_traffic(&config);
        assert_eq!(traffic.len(), config.cases);
        let all: Vec<&CaseOp> = traffic.iter().flatten().collect();
        assert!(all
            .iter()
            .any(|op| matches!(op, CaseOp::Edit(EditOp::ReplaceFormula { .. }))));
        assert!(all
            .iter()
            .any(|op| matches!(op, CaseOp::Edit(EditOp::SetText { .. }))));
        assert!(all
            .iter()
            .any(|op| matches!(op, CaseOp::Edit(EditOp::AddSupport { .. }))));
        assert!(all
            .iter()
            .any(|op| matches!(op, CaseOp::Edit(EditOp::RemoveNode { .. }))));
        for stream in &traffic {
            assert!(matches!(stream.last(), Some(CaseOp::Query)));
        }
    }

    #[test]
    fn service_transcripts_match_the_stateless_baseline() {
        let config = tiny();
        let corpus = service_corpus(&config);
        let traffic = service_traffic(&config);
        let lint_config = casekit_analysis::LintConfig::new();
        let baseline = naive_service_traffic(&corpus, &traffic, &lint_config);
        for workers in [1, 3] {
            let (_, transcripts) = service_run(&corpus, &traffic, &Runtime::with_workers(workers));
            assert_eq!(baseline, transcripts, "workers = {workers}");
        }
    }

    #[test]
    fn report_json_has_the_gate_fields() {
        let report = run_service_bench_with(&tiny(), 2);
        assert!(report.answers_agree);
        assert!(report.steps_reused > 0);
        assert!(report.cached_answers > 0);
        let json = bench_service_json(&report);
        assert!(json.contains("\"answers_agree\": true"));
        assert!(json.contains("\"speedup\""));
        assert!(render_report(&report).contains("answers agree: true"));
    }
}
