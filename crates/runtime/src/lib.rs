//! # casekit-runtime
//!
//! The workspace's parallel work farm: a std-only scoped-thread
//! executor whose one operation — [`Runtime::map`] — applies a pure
//! function to every item of a slice and returns the results *in input
//! order*, regardless of how many worker threads participated.
//!
//! The crate sits at the bottom of the workspace so both the experiment
//! harness (`casekit-experiments`, which re-exports [`Runtime`] as
//! `experiments::runtime::Runtime`) and the logic substrates
//! (`casekit-logic::af::scc` farms independent strongly connected
//! components across it) can share one executor without a dependency
//! cycle.
//!
//! # Design rules
//!
//! 1. **Worker count is unobservable.** `f(i, &items[i])` must be a
//!    pure function of its arguments plus captured immutable state;
//!    [`Runtime::map`] then guarantees byte-identical output for every
//!    worker count. The CI matrix runs the whole test suite under
//!    `RUNTIME_WORKERS={1,4}` and expects identical results.
//! 2. **Coarse chunks only.** Spawning a thread costs tens of
//!    microseconds; farming a handful of sub-microsecond items across
//!    four workers is pure overhead (the `thread_speedup: 0.855`
//!    regression this crate's clamp removed). `map` therefore caps the
//!    effective worker count at one worker per [`MIN_CHUNK`] items and
//!    runs small inputs inline on the calling thread.
//! 3. **No oversubscription by default.** [`Runtime::from_env`] (and
//!    `Default`) sizes the pool to the host — `RUNTIME_WORKERS` when
//!    pinned, [`std::thread::available_parallelism`] otherwise. An
//!    *explicit* [`Runtime::with_workers`] count is honored even beyond
//!    the core count so determinism tests can exercise the threaded
//!    path on any host.
//!
//! The executor is std-only (`std::thread::scope`): the vendor tree has
//! no rayon, and the fan-out shape here — one balanced pass over a
//! slice — does not need work stealing.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};

/// Minimum number of items per worker before [`Runtime::map`] spawns
/// threads. Below `workers * MIN_CHUNK` items the effective worker
/// count shrinks so every spawned thread has at least this much work;
/// a single-chunk map runs inline on the calling thread.
pub const MIN_CHUNK: usize = 16;

/// Parallelism configuration for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Runtime {
    /// Worker threads to shard work across. `1` runs serially on the
    /// calling thread; results are identical for every value.
    pub workers: usize,
}

impl Default for Runtime {
    /// [`Runtime::from_env`]: the `RUNTIME_WORKERS` environment
    /// variable when set, one worker per available core otherwise.
    fn default() -> Self {
        Self::from_env()
    }
}

/// Parses a `RUNTIME_WORKERS`-style value: a positive integer, or
/// `None` for anything absent or unparseable (the caller falls back to
/// the core count).
fn parse_workers(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&w| w > 0)
}

impl Runtime {
    /// The runtime CI and local runs configure through the environment:
    /// `RUNTIME_WORKERS` when set to a positive integer, every
    /// available core otherwise. Because worker count is unobservable
    /// in every result, the CI matrix runs the test suite under
    /// `RUNTIME_WORKERS={1,4}` and expects identical results.
    pub fn from_env() -> Self {
        let workers = Self::pinned_from_env().unwrap_or_else(Self::host_parallelism);
        Runtime { workers }
    }

    /// The explicit `RUNTIME_WORKERS` pin, if one is set and parses to
    /// a positive integer — the single source of truth for that
    /// variable's syntax (callers layer their own fallbacks on top).
    pub fn pinned_from_env() -> Option<usize> {
        parse_workers(std::env::var("RUNTIME_WORKERS").ok().as_deref())
    }

    /// The host's available parallelism (1 when it cannot be probed).
    /// Benchmarks record this next to their measurements: a thread
    /// speedup is bounded by it, and on a single-core host the only
    /// honest parallel plan *is* the serial plan.
    pub fn host_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The serial runtime: everything on the calling thread.
    pub fn serial() -> Self {
        Runtime { workers: 1 }
    }

    /// A runtime with exactly `workers` threads (minimum 1). The count
    /// is honored even beyond the host's core count — oversubscription
    /// is sometimes exactly what a determinism test wants to exercise —
    /// but [`Runtime::map`] still shrinks it when the input is too
    /// small to feed that many workers.
    pub fn with_workers(workers: usize) -> Self {
        Runtime {
            workers: workers.max(1),
        }
    }

    /// The worker count `map` would actually use for `items` items:
    /// the configured count, capped so each spawned worker gets at
    /// least [`MIN_CHUNK`] items.
    pub fn effective_workers(&self, items: usize) -> usize {
        let chunk_cap = items.div_ceil(MIN_CHUNK).max(1);
        self.workers.max(1).min(chunk_cap)
    }

    /// Applies `f` to every item, returning results in input order.
    ///
    /// `f(i, &items[i])` must be a pure function of its arguments (plus
    /// captured immutable state) — the contract that makes the worker
    /// count unobservable in the output. Small inputs (fewer than
    /// `2 *` [`MIN_CHUNK`] items) and `workers == 1` run as a plain
    /// inline loop; otherwise items are split into contiguous chunks of
    /// at least [`MIN_CHUNK`] items, one scoped thread per chunk, and
    /// the per-chunk outputs are concatenated back in order into one
    /// exactly-sized allocation.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (the scope joins every worker
    /// first).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.effective_workers(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }
        let chunk_len = items.len().div_ceil(workers);
        let chunks: Vec<Vec<R>> = std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = items
                .chunks(chunk_len)
                .enumerate()
                .map(|(chunk_index, chunk)| {
                    scope.spawn(move || {
                        let base = chunk_index * chunk_len;
                        let mut out = Vec::with_capacity(chunk.len());
                        out.extend(chunk.iter().enumerate().map(|(j, x)| f(base + j, x)));
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("runtime worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(items.len());
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }

    /// [`Runtime::map`] over *mutable* items: applies `f` to every item
    /// in place, returning the per-item results in input order.
    ///
    /// This is the executor for stateful shards — e.g. a service that
    /// owns one long-lived compiled session per case and wants a batch
    /// of independent per-session workloads farmed across cores. The
    /// purity contract shifts accordingly: `f(i, &mut items[i])` may
    /// mutate its own item freely, but the result (and the item's final
    /// state) must be a function of the item's prior state and `i`
    /// alone — items must not communicate. Under that contract the
    /// worker count stays unobservable, exactly as for [`Runtime::map`]:
    /// the chunking is deterministic, every item is visited exactly
    /// once, and outputs are concatenated back in input order.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (the scope joins every worker
    /// first).
    pub fn map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let workers = self.effective_workers(items.len());
        if workers <= 1 {
            return items.iter_mut().enumerate().map(|(i, x)| f(i, x)).collect();
        }
        let chunk_len = items.len().div_ceil(workers);
        let chunks: Vec<Vec<R>> = std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = items
                .chunks_mut(chunk_len)
                .enumerate()
                .map(|(chunk_index, chunk)| {
                    scope.spawn(move || {
                        let base = chunk_index * chunk_len;
                        let mut out = Vec::with_capacity(chunk.len());
                        out.extend(chunk.iter_mut().enumerate().map(|(j, x)| f(base + j, x)));
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("runtime worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(items.len());
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order_for_every_worker_count() {
        let items: Vec<usize> = (0..103).collect();
        let serial = Runtime::serial().map(&items, |i, &x| (i, x * 2));
        for workers in [2, 3, 4, 8, 64, 1000] {
            let parallel = Runtime::with_workers(workers).map(&items, |i, &x| (i, x * 2));
            assert_eq!(serial, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(Runtime::with_workers(8).map(&empty, |_, &x| x).is_empty());
        assert_eq!(
            Runtime::with_workers(8).map(&[7u8], |i, &x| (i, x)),
            vec![(0, 7)]
        );
    }

    #[test]
    fn effective_workers_enforces_chunk_granularity() {
        let rt = Runtime::with_workers(8);
        // Too small to split: runs inline.
        assert_eq!(rt.effective_workers(0), 1);
        assert_eq!(rt.effective_workers(MIN_CHUNK), 1);
        // Enough for two chunks but not eight.
        assert_eq!(rt.effective_workers(2 * MIN_CHUNK), 2);
        // Large inputs use the full configured count.
        assert_eq!(rt.effective_workers(100 * MIN_CHUNK), 8);
        // An explicit count is honored past the core count, but never
        // past one worker per MIN_CHUNK items.
        assert_eq!(Runtime::with_workers(1000).effective_workers(103), 7);
    }

    #[test]
    fn map_mut_mutates_every_item_once_in_order_for_every_worker_count() {
        let reference: Vec<(usize, u64)> = (0..103).map(|i| (i, i as u64 * 3 + 1)).collect();
        for workers in [1, 2, 3, 8, 64] {
            let mut items: Vec<u64> = (0..103).collect();
            let results = Runtime::with_workers(workers).map_mut(&mut items, |i, x| {
                *x = *x * 3 + 1;
                (i, *x)
            });
            assert_eq!(results, reference, "workers = {workers}");
            let finals: Vec<u64> = reference.iter().map(|&(_, v)| v).collect();
            assert_eq!(items, finals, "workers = {workers}");
        }
    }

    #[test]
    fn map_mut_handles_empty_and_tiny_inputs() {
        let mut empty: Vec<u8> = Vec::new();
        assert!(Runtime::with_workers(8)
            .map_mut(&mut empty, |_, x| *x)
            .is_empty());
        let mut one = [7u8];
        assert_eq!(
            Runtime::with_workers(8).map_mut(&mut one, |i, x| {
                *x += 1;
                (i, *x)
            }),
            vec![(0, 8)]
        );
        assert_eq!(one, [8]);
    }

    #[test]
    fn with_workers_clamps_to_at_least_one() {
        assert_eq!(Runtime::with_workers(0).workers, 1);
        assert!(Runtime::default().workers >= 1);
        assert!(Runtime::host_parallelism() >= 1);
    }

    #[test]
    fn runtime_workers_parsing_accepts_positive_integers_only() {
        assert_eq!(parse_workers(Some("4")), Some(4));
        assert_eq!(parse_workers(Some(" 2 ")), Some(2));
        assert_eq!(parse_workers(Some("0")), None);
        assert_eq!(parse_workers(Some("-3")), None);
        assert_eq!(parse_workers(Some("many")), None);
        assert_eq!(parse_workers(Some("")), None);
        assert_eq!(parse_workers(None), None);
    }

    #[test]
    fn env_configured_runtime_matches_serial_results() {
        // Whatever RUNTIME_WORKERS the harness (or the CI matrix) set,
        // the environment-configured runtime must agree with serial —
        // the parallel-identity guarantee the matrix exercises.
        let items: Vec<usize> = (0..57).collect();
        let serial = Runtime::serial().map(&items, |i, &x| (i, x.wrapping_mul(31)));
        let from_env = Runtime::from_env().map(&items, |i, &x| (i, x.wrapping_mul(31)));
        assert_eq!(serial, from_env);
    }
}
