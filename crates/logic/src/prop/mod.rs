//! Propositional logic: formulas, parsing, evaluation, normal forms,
//! satisfiability, and resolution.
//!
//! This is the base formalism for "symbolic, deductive" assurance-argument
//! content in the sense of Graydon §II-B: claims written as symbols
//! connected by operators, e.g. `~on_grnd -> ~threv_en`.
//!
//! # Architecture: two planes
//!
//! Like `casekit-core`'s `NodeId`/`NodeIdx` split, the module has a
//! *name plane* and an *index plane*:
//!
//! * the name plane — [`Formula`], [`Atom`], [`Clause`], [`ClauseSet`]
//!   — is what arguments store and humans read; atoms are interned
//!   strings, clauses are ordered sets;
//! * the index plane — [`solver`] with its [`AtomTable`](solver::Theory)
//!   interner, packed [`Lit`]s, flat clause arenas, and
//!   the CDCL core (first-UIP clause learning, non-chronological
//!   backjumping, VSIDS decisions, learned-clause GC) — is what
//!   actually decides; everything is a dense `u32`.
//!
//! [`dpll`], [`Formula::entails`], and friends keep their historical
//! signatures as thin bridges onto the index plane. Batch callers
//! (argument semantics, fallacy checking, probing, the experiments)
//! compile a [`solver::Theory`] once and issue many
//! `assume`/`check`/`retract` queries against it — and because
//! assumptions enter the CDCL search as decisions, everything learned
//! answering one query speeds up the next. Two older engines survive
//! for differential testing and benchmarking: the seed's recursive
//! solver in [`legacy`], and the PR 2 chronological watched-literal
//! DPLL as [`solver::dpll::DpllSolver`].

mod ast;
mod cnf;
mod eval;
pub mod intern;
mod parser;
mod resolution;
mod sat;
pub mod solver;

pub use ast::{Atom, Formula};
pub use cnf::{Clause, ClauseSet, Literal};
pub use eval::{truth_table, TruthTable, Valuation};
pub use intern::{AtomTable, Lit, Var};
pub use parser::parse;
pub use resolution::{resolution_entails, resolution_refute, ResolutionOutcome};
pub use sat::{all_models, dpll, dpll_clauses, legacy, SatResult};
pub use solver::{DpllSolver, Solver, SolverStats, Theory};
