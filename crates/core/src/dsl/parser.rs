//! The recover-and-continue DSL parser.
//!
//! Where the retained seed parser ([`super::seed`]) returns at the first
//! problem, this parser records a diagnostic and *synchronizes*: it skips
//! to the next place the grammar could plausibly resume (a closing `}` at
//! the current nesting depth, the next node-kind keyword, a `ref`, or end
//! of input) and keeps going. One bad node costs that node, not the file.
//!
//! Recovery decisions, in grammar order:
//!
//! - **Header** (`argument "name" {`): each missing piece is reported
//!   and skipped independently; a missing *name* means no [`Argument`]
//!   can be produced, but the body is still parsed for diagnostics.
//! - **Unknown kind / missing identifier**: the node's remaining header
//!   and body are parsed (so nested problems still surface) but nothing
//!   is recorded — the subtree is *suppressed*.
//! - **Missing text / missing payload string**: reported; the node is
//!   kept with placeholder text so its children survive.
//! - **Bad `formal`/`temporal` payload**: reported as a node-anchored
//!   diagnostic located *inside* the quoted string; the node is kept
//!   without the payload.
//! - **Duplicate id**: reported at the re-declaration; the duplicate
//!   node is dropped but its children attach to the original.
//! - **Bad edges** (`ref` to an undeclared node, self-loops, repeated
//!   edges): reported at the `ref`; the edge is dropped. Matching the
//!   seed parser (and the builder), `ref` targets must already be
//!   declared — there are no forward references.
//!
//! Everything that survives is fed to [`ArgumentBuilder`], which — by
//! construction — accepts it, so a file with errors still yields a
//! best-effort [`Argument`] plus a sorted diagnostic stream.

use std::collections::HashSet;

use casekit_logic::{ltl::parse_ltl, prop, ParseError, Span, SyntaxError, SyntaxErrorKind};

use super::lexer::{lex, Lexed, Tok};
use super::source_map::{NodeSpans, SourceMap};
use super::{edge_kind_for, kind_of, DslError, ParseOutcome};
use crate::argument::Argument;
use crate::node::{EdgeKind, FormalPayload, Node, NodeId, NodeKind};

/// Parses `input`, recovering at every error. See the module docs for
/// the recovery strategy.
pub(crate) fn parse(input: &str) -> ParseOutcome {
    let (toks, lex_errors) = lex(input);
    let mut p = Parser {
        input,
        toks,
        pos: 0,
        end: input.len(),
        errors: lex_errors
            .into_iter()
            .map(|error| DslError { error, node: None })
            .collect(),
        declared: HashSet::new(),
        nodes: Vec::new(),
        edges: Vec::new(),
        edge_set: HashSet::new(),
        source_map: SourceMap::new(),
    };
    let name = p.header();
    // A file whose header already failed *and* ended needs no synthetic
    // "expected `}`" cascade; otherwise parse the body (even without a
    // name — the diagnostics are still real).
    if !(name.is_none() && p.pos >= p.toks.len()) {
        p.node_list(None, false);
    }
    p.trailing();

    let argument = name.and_then(|name| {
        let mut builder = Argument::builder(name);
        for node in std::mem::take(&mut p.nodes) {
            builder = builder.node(node);
        }
        for (from, to, kind) in std::mem::take(&mut p.edges) {
            builder = builder.edge(from.as_str(), to.as_str(), kind);
        }
        match builder.build() {
            Ok(argument) => Some(argument),
            Err(e) => {
                // Unreachable by construction (everything was pre-validated),
                // but never let a builder refusal turn into a panic.
                p.push_err(
                    SyntaxError::with_kind(
                        SyntaxErrorKind::Structure,
                        e.to_string(),
                        Span::point(p.end),
                    ),
                    None,
                );
                None
            }
        }
    });

    let mut errors = p.errors;
    errors.sort_by(|a, b| {
        (a.error.span.start, a.error.span.end, &a.error.message).cmp(&(
            b.error.span.start,
            b.error.span.end,
            &b.error.message,
        ))
    });
    ParseOutcome {
        argument,
        source_map: p.source_map,
        errors,
    }
}

struct Parser<'a> {
    input: &'a str,
    toks: Vec<Lexed>,
    pos: usize,
    end: usize,
    errors: Vec<DslError>,
    declared: HashSet<NodeId>,
    nodes: Vec<Node>,
    edges: Vec<(NodeId, NodeId, EdgeKind)>,
    edge_set: HashSet<(NodeId, NodeId, EdgeKind)>,
    source_map: SourceMap,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|l| &l.tok)
    }

    fn here(&self) -> Span {
        self.toks
            .get(self.pos)
            .map(|l| l.span)
            .unwrap_or(Span::point(self.end))
    }

    fn next(&mut self) -> Option<Lexed> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn push_err(&mut self, error: ParseError, node: Option<NodeId>) {
        // EOF unwinding reports "expected `}`" once per open block at the
        // same point; collapse consecutive identical reports.
        if self.errors.last().is_some_and(|last| last.error == error) {
            return;
        }
        self.errors.push(DslError { error, node });
    }

    /// Reports "expected X, found Y" at the cursor without consuming, so
    /// the offending token can still be claimed by a later production.
    fn err_expected(&mut self, expected: &str) {
        let span = self.here();
        let found = self.peek().map(|t| t.describe());
        self.push_err(SyntaxError::expected_found(expected, found, span), None);
    }

    /// Skips tokens until the grammar can plausibly resume: a `}` at the
    /// current depth (left for the caller), the next kind keyword or
    /// `ref` at the current depth, or end of input.
    fn sync(&mut self) {
        let mut depth = 0usize;
        while let Some(tok) = self.peek() {
            match tok {
                Tok::RBrace => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    self.next();
                }
                Tok::LBrace => {
                    depth += 1;
                    self.next();
                }
                Tok::Word(w) if depth == 0 && (kind_of(w).is_some() || w == "ref") => return,
                _ => {
                    self.next();
                }
            }
        }
    }

    /// Parses `argument "name" {`, recovering each piece independently.
    /// Returns the name when one was present.
    fn header(&mut self) -> Option<String> {
        match self.peek() {
            Some(Tok::Word(w)) if w == "argument" => {
                self.next();
            }
            Some(Tok::Word(_)) => {
                self.err_expected("`argument`");
                self.next();
            }
            _ => self.err_expected("`argument`"),
        }
        let name = match self.peek() {
            Some(Tok::Str(_)) => {
                let span = self.here();
                let Some(Tok::Str(s)) = self.next().map(|l| l.tok) else {
                    unreachable!("peeked a string")
                };
                self.source_map.name = Some(span);
                Some(s)
            }
            _ => {
                self.err_expected("argument name string");
                None
            }
        };
        match self.peek() {
            Some(Tok::LBrace) => {
                self.next();
            }
            _ => self.err_expected("`{`"),
        }
        name
    }

    /// Parses nodes/refs until the matching `}` (consumed) or end of
    /// input (reported). `parent` is `None` at top level. `suppress`
    /// parses without recording — used inside unrecoverable subtrees.
    fn node_list(&mut self, parent: Option<(&NodeId, NodeKind)>, suppress: bool) {
        loop {
            match self.peek() {
                None => {
                    self.err_expected("`}`");
                    return;
                }
                Some(Tok::RBrace) => {
                    self.next();
                    return;
                }
                Some(Tok::Word(w)) if w == "ref" => self.reference(parent, suppress),
                Some(Tok::Word(_)) => self.node(parent, suppress),
                Some(_) => {
                    self.err_expected("a node kind");
                    self.sync();
                }
            }
        }
    }

    /// Parses `ref IDENT`, validating the edge at the reference site
    /// (matching the seed parser's no-forward-reference semantics).
    fn reference(&mut self, parent: Option<(&NodeId, NodeKind)>, suppress: bool) {
        let kw_span = self.here();
        self.next(); // `ref`
        let (target, target_span) = match self.peek() {
            Some(Tok::Word(w)) if kind_of(w).is_none() && w != "ref" => {
                let span = self.here();
                let Some(Tok::Word(w)) = self.next().map(|l| l.tok) else {
                    unreachable!("peeked a word")
                };
                (w, span)
            }
            _ => {
                self.err_expected("a node identifier");
                return;
            }
        };
        match parent {
            None => self.push_err(
                SyntaxError::with_kind(
                    SyntaxErrorKind::Structure,
                    "`ref` is only allowed inside a node body",
                    kw_span,
                )
                .with_hint("nest `ref` under the node it supports"),
                None,
            ),
            Some((parent_id, _)) if !suppress => {
                // Edge kind depends on the *referenced* node's kind, which
                // may not be known yet; we default to SupportedBy — a ref
                // to a context node should use nesting instead.
                self.add_edge(
                    parent_id.clone(),
                    NodeId::new(target),
                    EdgeKind::SupportedBy,
                    target_span,
                );
            }
            Some(_) => {}
        }
    }

    /// Validates and records one edge, reporting (and dropping) exactly
    /// the edges the [`ArgumentBuilder`](crate::argument::ArgumentBuilder)
    /// would refuse — so the builder never fails on what survives.
    fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind, span: Span) {
        if from == to {
            self.push_err(
                SyntaxError::with_kind(
                    SyntaxErrorKind::Structure,
                    format!("self-loop on `{from}`"),
                    span,
                ),
                Some(from),
            );
            return;
        }
        if !self.declared.contains(&to) {
            self.push_err(
                SyntaxError::with_kind(
                    SyntaxErrorKind::Structure,
                    format!("unknown node `{to}`"),
                    span,
                )
                .with_hint("`ref` targets must be declared earlier in the file"),
                None,
            );
            return;
        }
        if !self.edge_set.insert((from.clone(), to.clone(), kind)) {
            self.push_err(
                SyntaxError::with_kind(
                    SyntaxErrorKind::Structure,
                    format!("duplicate edge `{from}` -> `{to}`"),
                    span,
                ),
                Some(to),
            );
            return;
        }
        self.edges.push((from, to, kind));
    }

    /// Parses one node declaration (and its body).
    fn node(&mut self, parent: Option<(&NodeId, NodeKind)>, suppress: bool) {
        let kw_span = self.here();
        let Some(Tok::Word(kind_word)) = self.next().map(|l| l.tok) else {
            unreachable!("caller peeked a word")
        };
        let kind = match kind_of(&kind_word) {
            Some(kind) => Some(kind),
            None => {
                let mut e = SyntaxError::with_kind(
                    SyntaxErrorKind::UnknownKeyword,
                    format!("unknown node kind `{kind_word}`"),
                    kw_span,
                );
                if let Some(suggestion) = nearest_kind(&kind_word) {
                    e = e.with_hint(format!("did you mean `{suggestion}`?"));
                }
                self.push_err(e, None);
                None
            }
        };

        let (id, id_span) = match self.peek() {
            Some(Tok::Word(w)) if kind_of(w).is_none() && w != "ref" => {
                let span = self.here();
                let Some(Tok::Word(w)) = self.next().map(|l| l.tok) else {
                    unreachable!("peeked a word")
                };
                (Some(w), span)
            }
            _ => {
                self.err_expected("a node identifier");
                (None, self.here())
            }
        };

        // A node we can't name or kind can't be recorded; keep parsing
        // its remainder (and body) for diagnostics only.
        let suppress = suppress || kind.is_none() || id.is_none();
        let node_id = NodeId::new(id.as_deref().unwrap_or(""));

        let mut duplicate = false;
        if !suppress && self.declared.contains(&node_id) {
            self.push_err(
                SyntaxError::with_kind(
                    SyntaxErrorKind::Structure,
                    format!("duplicate node id `{node_id}`"),
                    id_span,
                )
                .with_hint("rename one of the declarations, or use `ref` to share a node"),
                Some(node_id.clone()),
            );
            duplicate = true;
        }

        let (text, text_span) = match self.peek() {
            Some(Tok::Str(_)) => {
                let span = self.here();
                let Some(Tok::Str(s)) = self.next().map(|l| l.tok) else {
                    unreachable!("peeked a string")
                };
                (s, span)
            }
            _ => {
                self.err_expected("node text string");
                (String::new(), Span::point(self.here().start))
            }
        };

        let mut formal: Option<FormalPayload> = None;
        let mut undeveloped = false;
        let mut payload_span: Option<Span> = None;
        let mut header_end = text_span.end.max(id_span.end).max(kw_span.end);
        loop {
            match self.peek() {
                Some(Tok::Word(w)) if w == "formal" => {
                    self.next();
                    if let Some((src, span)) = self.payload_string("formula") {
                        payload_span = Some(span);
                        header_end = header_end.max(span.end);
                        match prop::parse(&src) {
                            Ok(f) => formal = Some(FormalPayload::Prop(f)),
                            Err(e) => self.payload_error("formal", &node_id, span, &src, &e),
                        }
                    }
                }
                Some(Tok::Word(w)) if w == "temporal" => {
                    self.next();
                    if let Some((src, span)) = self.payload_string("LTL formula") {
                        payload_span = Some(span);
                        header_end = header_end.max(span.end);
                        match parse_ltl(&src) {
                            Ok(f) => formal = Some(FormalPayload::Temporal(f)),
                            Err(e) => self.payload_error("temporal", &node_id, span, &src, &e),
                        }
                    }
                }
                Some(Tok::Word(w)) if w == "undeveloped" => {
                    header_end = header_end.max(self.here().end);
                    self.next();
                    undeveloped = true;
                }
                _ => break,
            }
        }

        if !suppress && !duplicate {
            let kind = kind.expect("suppress covers kind.is_none()");
            let mut node = Node::new(node_id.clone(), kind, text);
            node.formal = formal;
            node.undeveloped = undeveloped;
            self.declared.insert(node_id.clone());
            self.nodes.push(node);
            self.source_map.record(
                node_id.clone(),
                NodeSpans {
                    keyword: kw_span,
                    id: id_span,
                    text: text_span,
                    payload: payload_span,
                    header: Span::new(kw_span.start, header_end),
                },
            );
            if let Some((parent_id, _)) = parent {
                self.add_edge(
                    parent_id.clone(),
                    node_id.clone(),
                    edge_kind_for(kind),
                    id_span,
                );
            }
        }

        if matches!(self.peek(), Some(Tok::LBrace)) {
            self.next();
            // Children of a duplicate declaration attach to the original
            // node (same id); children of a suppressed subtree are parsed
            // for diagnostics only.
            self.node_list(Some((&node_id, kind.unwrap_or(NodeKind::Goal))), suppress);
        }
    }

    /// Consumes the quoted payload string after `formal`/`temporal`,
    /// reporting (without consuming) anything else.
    fn payload_string(&mut self, what: &str) -> Option<(String, Span)> {
        match self.peek() {
            Some(Tok::Str(_)) => {
                let span = self.here();
                let Some(Tok::Str(s)) = self.next().map(|l| l.tok) else {
                    unreachable!("peeked a string")
                };
                Some((s, span))
            }
            _ => {
                self.err_expected(&format!("{what} string"));
                None
            }
        }
    }

    /// Reports an embedded formula error, re-anchored from the payload's
    /// own coordinates into the enclosing file.
    fn payload_error(
        &mut self,
        which: &str,
        node: &NodeId,
        tok_span: Span,
        src: &str,
        e: &ParseError,
    ) {
        let span = self.anchor_payload(tok_span, src, e.span);
        self.push_err(
            SyntaxError::with_kind(
                SyntaxErrorKind::BadPayload,
                format!("in {which} payload of `{node}`: {}", e.message),
                span,
            ),
            Some(node.clone()),
        );
    }

    /// Maps a span inside a payload string's *content* to file
    /// coordinates. Exact when the literal has no escapes (content bytes
    /// align one-to-one after the opening quote); otherwise the whole
    /// literal is blamed.
    fn anchor_payload(&self, tok_span: Span, content: &str, inner: Span) -> Span {
        let raw = &self.input[tok_span.start..tok_span.end];
        let unescaped = raw.len() == content.len() + 2;
        if unescaped && inner.start <= content.len() {
            Span::new(
                tok_span.start + 1 + inner.start,
                (tok_span.start + 1 + inner.end).min(tok_span.end),
            )
        } else {
            tok_span
        }
    }

    /// Reports anything left after the argument's closing `}`.
    fn trailing(&mut self) {
        if let Some(extra) = self.toks.get(self.pos) {
            self.push_err(
                SyntaxError::with_kind(
                    SyntaxErrorKind::TrailingInput,
                    "unexpected trailing input",
                    extra.span,
                ),
                None,
            );
        }
    }
}

/// The closest node-kind keyword within edit distance 2, for "did you
/// mean" hints on unknown kinds.
fn nearest_kind(word: &str) -> Option<&'static str> {
    const KINDS: [&str; 9] = [
        "goal",
        "strategy",
        "solution",
        "context",
        "assumption",
        "justification",
        "claim",
        "argnode",
        "evidence",
    ];
    KINDS
        .iter()
        .map(|k| (edit_distance(word, k), *k))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, k)| (d, k))
        .map(|(_, k)| k)
}

/// Levenshtein distance, two-row DP.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("goal", "goal"), 0);
        assert_eq!(edit_distance("gaol", "goal"), 2);
        assert_eq!(edit_distance("", "goal"), 4);
        assert_eq!(edit_distance("claim", "clam"), 1);
    }

    #[test]
    fn nearest_kind_suggests_and_gives_up() {
        assert_eq!(nearest_kind("gaol"), Some("goal"));
        assert_eq!(nearest_kind("strateg"), Some("strategy"));
        assert_eq!(nearest_kind("widget"), None);
    }
}
