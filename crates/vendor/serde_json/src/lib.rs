//! Vendored, dependency-free stand-in for `serde_json`, over the vendored
//! `serde` crate's [`Value`] tree. Supports the full JSON grammar
//! (escapes, surrogate pairs, exponents); numbers parse to `i128` when
//! integral and `f64` otherwise.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0)?;
    Ok(out)
}

/// Serializes a value to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let v = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::deserialize(&v)
}

/// Parses JSON text into the raw [`Value`] tree.
pub fn value_from_str(text: &str) -> Result<Value, Error> {
    from_str::<Value>(text)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("JSON cannot represent NaN or infinity"));
            }
            // Rust's shortest round-trip float formatting; integral floats
            // print without a fraction and re-parse as Int, which f64
            // deserialization accepts.
            let _ = write!(out, "{f}");
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1)?;
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::custom(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                let combined = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    /// Reads exactly four hex digits (after `\u`).
    fn hex4(&mut self) -> Result<u32, Error> {
        let mut n = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::custom("invalid hex digit in \\u escape"))?;
            n = n * 16 + digit;
            self.pos += 1;
        }
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            match text.parse::<i128>() {
                Ok(n) => Ok(Value::Int(n)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::custom(format!("invalid number `{text}`"))),
            }
        }
    }
}
