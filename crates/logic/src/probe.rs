//! "What-if" exploration of formalised arguments, after Rushby.
//!
//! Graydon §III-M quotes Rushby's proposal that evaluators should "actively
//! probe the argument using 'what-if' exploration (e.g., temporarily remove
//! or change an assumption and observe how the proof fails)". This module
//! implements that interaction against the propositional substrate: given a
//! theory (premises) and a conclusion, it reports which premises are
//! *critical* (removing them breaks entailment), which are *idle*
//! (entailment survives without them), and what the counterexample looks
//! like when entailment fails.

use crate::prop::{dpll, Formula, SatResult, Valuation};

/// The effect of removing one premise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PremiseImpact {
    /// The conclusion is still entailed without this premise.
    Idle,
    /// Removing the premise breaks entailment; the valuation witnesses
    /// premises-without-it true and the conclusion false.
    Critical(Valuation),
}

impl PremiseImpact {
    /// Whether this premise is critical to the conclusion.
    pub fn is_critical(&self) -> bool {
        matches!(self, PremiseImpact::Critical(_))
    }
}

/// A probe report over a whole theory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeReport {
    /// Whether the full premise set entails the conclusion.
    pub entailed: bool,
    /// Per-premise impact, in premise order (empty when `entailed` is
    /// false — there is nothing to probe).
    pub impacts: Vec<PremiseImpact>,
}

impl ProbeReport {
    /// Indices of the critical premises.
    pub fn critical_indices(&self) -> Vec<usize> {
        self.impacts
            .iter()
            .enumerate()
            .filter(|(_, imp)| imp.is_critical())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the idle premises (those whose removal changes nothing —
    /// Rushby's candidates for "red herring" premises).
    pub fn idle_indices(&self) -> Vec<usize> {
        self.impacts
            .iter()
            .enumerate()
            .filter(|(_, imp)| !imp.is_critical())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Checks whether `premises ⊢ conclusion` and, if so, probes each premise
/// by removal.
pub fn probe(premises: &[Formula], conclusion: &Formula) -> ProbeReport {
    if !entails(premises, conclusion, None) {
        return ProbeReport {
            entailed: false,
            impacts: Vec::new(),
        };
    }
    let impacts = (0..premises.len())
        .map(
            |skip| match counterexample(premises, conclusion, Some(skip)) {
                None => PremiseImpact::Idle,
                Some(v) => PremiseImpact::Critical(v),
            },
        )
        .collect();
    ProbeReport {
        entailed: true,
        impacts,
    }
}

/// What-if for a single premise: does entailment survive without premise
/// `index`?
///
/// # Panics
///
/// Panics if `index` is out of range.
pub fn what_if_removed(premises: &[Formula], conclusion: &Formula, index: usize) -> PremiseImpact {
    assert!(index < premises.len(), "premise index out of range");
    match counterexample(premises, conclusion, Some(index)) {
        None => PremiseImpact::Idle,
        Some(v) => PremiseImpact::Critical(v),
    }
}

fn entails(premises: &[Formula], conclusion: &Formula, skip: Option<usize>) -> bool {
    counterexample(premises, conclusion, skip).is_none()
}

/// A valuation satisfying the (possibly reduced) premises but not the
/// conclusion, if entailment fails.
fn counterexample(
    premises: &[Formula],
    conclusion: &Formula,
    skip: Option<usize>,
) -> Option<Valuation> {
    let kept = premises
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != skip)
        .map(|(_, f)| f.clone());
    let theory = Formula::conj(kept).and(conclusion.clone().not());
    match dpll(&theory) {
        SatResult::Sat(v) => Some(v),
        SatResult::Unsat => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::parse;

    fn f(s: &str) -> Formula {
        parse(s).unwrap()
    }

    #[test]
    fn haley_premises_probe() {
        // From the paper's eleven-line proof: which premises does D -> H
        // actually need? I -> V turns out to be idle (V is never used to
        // reach H) — exactly the insight Rushby says probing surfaces.
        let premises = vec![f("I -> V"), f("C -> H"), f("Y -> V & C"), f("D -> Y")];
        let report = probe(&premises, &f("D -> H"));
        assert!(report.entailed);
        assert_eq!(report.idle_indices(), vec![0]);
        assert_eq!(report.critical_indices(), vec![1, 2, 3]);
    }

    #[test]
    fn critical_impact_carries_counterexample() {
        let premises = vec![f("p -> q"), f("p")];
        let report = probe(&premises, &f("q"));
        assert!(report.entailed);
        for (i, impact) in report.impacts.iter().enumerate() {
            match impact {
                PremiseImpact::Critical(v) => {
                    // Witness: remaining premises hold, conclusion fails.
                    let remaining: Vec<_> = premises
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, p)| p.clone())
                        .collect();
                    assert!(Formula::conj(remaining).eval(v));
                    assert!(!f("q").eval(v));
                }
                PremiseImpact::Idle => panic!("both premises are critical here"),
            }
        }
    }

    #[test]
    fn non_entailed_theory_reports_flat_failure() {
        let report = probe(&[f("p")], &f("q"));
        assert!(!report.entailed);
        assert!(report.impacts.is_empty());
    }

    #[test]
    fn duplicate_premises_are_individually_idle() {
        let premises = vec![f("p"), f("p")];
        let report = probe(&premises, &f("p"));
        assert!(report.entailed);
        assert_eq!(report.idle_indices(), vec![0, 1]);
    }

    #[test]
    fn what_if_single() {
        let premises = vec![f("a"), f("a -> b")];
        assert!(what_if_removed(&premises, &f("b"), 0).is_critical());
        assert!(what_if_removed(&premises, &f("a"), 1) == PremiseImpact::Idle);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn what_if_out_of_range_panics() {
        let _ = what_if_removed(&[f("p")], &f("p"), 3);
    }

    #[test]
    fn tautological_conclusion_makes_all_premises_idle() {
        let premises = vec![f("p"), f("q")];
        let report = probe(&premises, &f("r | ~r"));
        assert!(report.entailed);
        assert_eq!(report.idle_indices(), vec![0, 1]);
    }
}
