//! Linear temporal logic, after Brunel & Cazin's formalised safety
//! argumentation (Graydon §III-G).
//!
//! Claims such as *"the Detect-and-Avoid function is correct"* are
//! formalised as LTL formulas like
//! `G (below_min -> (nonzero U above_min))` and evaluated over traces of
//! the system model, or checked over a [`Kripke`] structure by bounded
//! lasso enumeration.
//!
//! ```
//! use casekit_logic::ltl::{parse_ltl, Trace};
//!
//! let f = parse_ltl("G (request -> F grant)").unwrap();
//! let trace = Trace::lasso(
//!     vec![vec!["request"], vec![], vec!["grant"]],
//!     vec![vec![]],
//! );
//! assert!(trace.satisfies(&f));
//! ```
//!
//! # Architecture: two planes, one oracle
//!
//! Model checking is split the same way as the `prop`, `af`, and `fol`
//! substrates:
//!
//! * The name plane ([`Kripke`], [`Trace`]) keeps states labelled with
//!   `Arc<str>` proposition sets and evaluates formulas recursively over
//!   [`Trace`]s; [`Kripke::check_bounded_naive`] is the seed checker,
//!   retained as the differential oracle.
//! * The index plane (`csr`) compiles the structure to a [`CsrKripke`]
//!   — compressed-sparse-row out-edges plus bitset labels over an
//!   interned proposition universe — and the formula to a
//!   [`CompiledLtl`] flat node arena. Candidate lassos are evaluated by
//!   a closure table (one boolean row per node over the lasso's
//!   positions) instead of re-hashing label strings per step.
//!
//! [`Kripke::check_bounded`] routes through the index plane by default
//! and visits lassos in the oracle's exact order, so the two planes
//! return identical results, counterexample paths included. The bench
//! substrate (`crates/bench/src/ltl.rs`, `repro ltl`) sweeps both and
//! cross-checks answer-for-answer.

mod ast;
mod csr;
mod kripke;
mod parser;
mod trace;

pub use ast::Ltl;
pub use csr::{CompiledLtl, CsrKripke};
pub use kripke::{CheckResult, Kripke, StateId};
pub use parser::parse_ltl;
pub use trace::Trace;
