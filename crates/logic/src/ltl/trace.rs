//! Trace semantics for LTL.
//!
//! Two trace shapes are supported:
//!
//! * **finite** traces, evaluated with the standard finite-trace (LTLf)
//!   semantics: `X p` is false at the last step, `G p` means "p for the
//!   remaining steps", `F p` means "p at some remaining step";
//! * **lasso** traces `prefix · loopω` — ultimately periodic infinite
//!   traces, for which evaluation is exact.

use super::ast::Ltl;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A trace: a sequence of states, each a set of true propositions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    states: Vec<BTreeSet<Arc<str>>>,
    /// For a lasso trace, the index where the loop begins; `None` for a
    /// finite trace.
    loop_start: Option<usize>,
}

fn to_state<I, S>(props: I) -> BTreeSet<Arc<str>>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    props.into_iter().map(|s| Arc::from(s.as_ref())).collect()
}

impl Trace {
    /// A finite trace from per-step proposition lists.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty: LTL traces are non-empty.
    pub fn finite<I, J, S>(steps: I) -> Trace
    where
        I: IntoIterator<Item = J>,
        J: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let states: Vec<_> = steps.into_iter().map(to_state).collect();
        assert!(!states.is_empty(), "traces must be non-empty");
        Trace {
            states,
            loop_start: None,
        }
    }

    /// A lasso trace `prefix · loopω`.
    ///
    /// # Panics
    ///
    /// Panics if `looped` is empty: the loop must repeat at least one state.
    pub fn lasso<I, J, S>(prefix: I, looped: I) -> Trace
    where
        I: IntoIterator<Item = J>,
        J: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut states: Vec<_> = prefix.into_iter().map(to_state).collect();
        let loop_start = states.len();
        let loop_states: Vec<_> = looped.into_iter().map(to_state).collect();
        assert!(!loop_states.is_empty(), "lasso loop must be non-empty");
        states.extend(loop_states);
        Trace {
            states,
            loop_start: Some(loop_start),
        }
    }

    /// Number of distinct stored states (prefix + one loop unrolling).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the trace stores no states (never true: constructors forbid
    /// empty traces, but provided for the conventional pairing with `len`).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Whether the trace is a lasso (infinite) trace.
    pub fn is_lasso(&self) -> bool {
        self.loop_start.is_some()
    }

    /// Whether `prop` holds at stored position `i`.
    pub fn holds(&self, i: usize, prop: &str) -> bool {
        self.states
            .get(i)
            .is_some_and(|s| s.iter().any(|p| p.as_ref() == prop))
    }

    /// The successor of stored position `i`, or `None` at the end of a
    /// finite trace.
    fn successor(&self, i: usize) -> Option<usize> {
        if i + 1 < self.states.len() {
            Some(i + 1)
        } else {
            self.loop_start
        }
    }

    /// Evaluates `formula` at the start of the trace.
    pub fn satisfies(&self, formula: &Ltl) -> bool {
        self.satisfies_at(formula, 0)
    }

    /// Evaluates `formula` at stored position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn satisfies_at(&self, formula: &Ltl, pos: usize) -> bool {
        assert!(pos < self.states.len(), "position out of range");
        match formula {
            Ltl::True => true,
            Ltl::False => false,
            Ltl::Prop(p) => self.holds(pos, p),
            Ltl::Not(a) => !self.satisfies_at(a, pos),
            Ltl::And(a, b) => self.satisfies_at(a, pos) && self.satisfies_at(b, pos),
            Ltl::Or(a, b) => self.satisfies_at(a, pos) || self.satisfies_at(b, pos),
            Ltl::Implies(a, b) => !self.satisfies_at(a, pos) || self.satisfies_at(b, pos),
            Ltl::Next(a) => match self.successor(pos) {
                Some(next) => self.satisfies_at(a, next),
                None => false, // strong next on finite traces
            },
            Ltl::Finally(a) => self
                .positions_from(pos)
                .into_iter()
                .any(|i| self.satisfies_at(a, i)),
            Ltl::Globally(a) => self
                .positions_from(pos)
                .into_iter()
                .all(|i| self.satisfies_at(a, i)),
            Ltl::Until(a, b) => {
                // Find a position where b holds with a holding strictly
                // before; one pass over the reachable positions suffices
                // because lasso states repeat verbatim.
                for i in self.positions_from(pos) {
                    if self.satisfies_at(b, i) {
                        return true;
                    }
                    if !self.satisfies_at(a, i) {
                        return false;
                    }
                }
                // Positions exhausted without reaching b: until fails.
                false
            }
            Ltl::Release(a, b) => {
                // p R q ≡ ¬(¬p U ¬q)
                let neg = Ltl::clone(a).not().until(Ltl::clone(b).not()).not();
                self.satisfies_at(&neg, pos)
            }
        }
    }

    /// The distinct stored positions reachable from `pos`, in temporal
    /// order: `pos..len`, then — when `pos` sits strictly inside the loop —
    /// the wrapped-around loop positions `loop_start..pos`. Visiting each
    /// stored position once suffices because lasso states repeat verbatim.
    fn positions_from(&self, pos: usize) -> Vec<usize> {
        let mut out: Vec<usize> = (pos..self.states.len()).collect();
        if let Some(loop_start) = self.loop_start {
            if pos > loop_start {
                out.extend(loop_start..pos);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse_ltl;
    use super::*;

    fn f(src: &str) -> Ltl {
        parse_ltl(src).unwrap()
    }

    const NONE: [&str; 0] = [];

    #[test]
    fn props_at_positions() {
        let t = Trace::finite(vec![vec!["a"], vec!["b"], vec!["a", "b"]]);
        assert!(t.holds(0, "a"));
        assert!(!t.holds(0, "b"));
        assert!(t.holds(2, "a") && t.holds(2, "b"));
        assert!(!t.holds(3, "a"));
        assert_eq!(t.len(), 3);
        assert!(!t.is_lasso());
        assert!(!t.is_empty());
    }

    #[test]
    fn finite_globally_finally() {
        let t = Trace::finite(vec![vec!["p"], vec!["p"], vec!["p", "q"]]);
        assert!(t.satisfies(&f("G p")));
        assert!(t.satisfies(&f("F q")));
        assert!(!t.satisfies(&f("G q")));
        assert!(!t.satisfies(&f("F r")));
    }

    #[test]
    fn finite_next_is_strong() {
        let t = Trace::finite(vec![vec!["p"]]);
        // Only one state: X anything is false (strong next).
        assert!(!t.satisfies(&f("X p")));
        assert!(!t.satisfies(&f("X true")));
        let t = Trace::finite(vec![vec![], vec!["p"]]);
        assert!(t.satisfies(&f("X p")));
    }

    #[test]
    fn until_semantics() {
        let t = Trace::finite(vec![vec!["a"], vec!["a"], vec!["b"]]);
        assert!(t.satisfies(&f("a U b")));
        let t = Trace::finite(vec![vec!["a"], vec![], vec!["b"]]);
        assert!(!t.satisfies(&f("a U b")));
        // b immediately: a need not hold at all.
        let t = Trace::finite(vec![vec!["b"]]);
        assert!(t.satisfies(&f("a U b")));
        // Finite trace without b: fails even if a always holds.
        let t = Trace::finite(vec![vec!["a"], vec!["a"]]);
        assert!(!t.satisfies(&f("a U b")));
    }

    #[test]
    fn release_semantics() {
        // q must hold up to and including when p first holds.
        let t = Trace::finite(vec![vec!["q"], vec!["q", "p"], vec![]]);
        assert!(t.satisfies(&f("p R q")));
        // q fails before p: release fails.
        let t = Trace::finite(vec![vec!["q"], vec![], vec!["p", "q"]]);
        assert!(!t.satisfies(&f("p R q")));
        // p never holds: q must hold for the whole (finite) trace.
        let t = Trace::finite(vec![vec!["q"], vec!["q"]]);
        assert!(t.satisfies(&f("p R q")));
    }

    #[test]
    fn lasso_infinite_behaviour() {
        // Lasso: p in the loop means G F p.
        let t = Trace::lasso(vec![Vec::<&str>::new()], vec![vec!["p"], vec![]]);
        assert!(t.satisfies(&f("G F p")));
        assert!(t.is_lasso());
        // Lasso with p only in the prefix: F p holds but G p does not.
        let t2 = Trace::lasso(vec![vec!["p"]], vec![NONE.to_vec()]);
        assert!(t2.satisfies(&f("F p")));
        assert!(!t2.satisfies(&f("G p")));
        // And from inside the loop, p is gone forever.
        assert!(!t2.satisfies(&f("X F p")));
    }

    #[test]
    fn finally_wraps_around_lasso_loop() {
        // Loop [{p}, {}]: from loop position 1 the future wraps back to
        // position 0, so F p must hold there.
        let t = Trace::lasso(Vec::<Vec<&str>>::new(), vec![vec!["p"], NONE.to_vec()]);
        assert!(t.satisfies(&f("X F p")));
        assert!(t.satisfies(&f("G F p")));
        assert!(!t.satisfies(&f("G p")));
        // Until also wraps: at position 1, (true U p) must succeed.
        assert!(t.satisfies(&f("X (true U p)")));
    }

    #[test]
    fn lasso_next_wraps_around() {
        // Single-state loop: X p ≡ p.
        let t = Trace::lasso(Vec::<Vec<&str>>::new(), vec![vec!["p"]]);
        assert!(t.satisfies(&f("p")));
        assert!(t.satisfies(&f("X p")));
        assert!(t.satisfies(&f("X X p")));
        assert!(t.satisfies(&f("G p")));
    }

    #[test]
    fn request_grant_pattern() {
        let ok = Trace::lasso(vec![vec!["request"], vec![], vec!["grant"]], vec![vec![]]);
        assert!(ok.satisfies(&f("G (request -> F grant)")));
        let bad = Trace::lasso(vec![vec!["request"], vec![]], vec![vec![]]);
        assert!(!bad.satisfies(&f("G (request -> F grant)")));
    }

    #[test]
    fn brunel_cazin_detect_and_avoid() {
        // Propositionalised: G (below_min -> (nonzero U above_min)).
        let good = Trace::finite(vec![
            vec!["above_min", "nonzero"],
            vec!["below_min", "nonzero"],
            vec!["nonzero"],
            vec!["above_min", "nonzero"],
        ]);
        assert!(good.satisfies(&f("G (below_min -> (nonzero U above_min))")));
        let collision = Trace::finite(vec![
            vec!["below_min", "nonzero"],
            vec![], // distance reaches zero: collision
        ]);
        assert!(!collision.satisfies(&f("G (below_min -> (nonzero U above_min))")));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_finite_trace_panics() {
        let _ = Trace::finite(Vec::<Vec<&str>>::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_position_panics() {
        let t = Trace::finite(vec![vec!["p"]]);
        let _ = t.satisfies_at(&f("p"), 5);
    }
}
