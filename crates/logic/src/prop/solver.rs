//! The conflict-driven solver core: packed-literal clause arena,
//! CDCL search (first-UIP clause learning, non-chronological
//! backjumping, VSIDS decisions with phase saving, learned-clause
//! garbage collection), and incremental assume/check/retract sessions.
//!
//! This is the engine behind every entailment query in the workspace.
//! The legacy path (kept as [`super::legacy`]) re-derives a
//! `BTreeSet<Literal>` clause set and recursively solves it per query;
//! the PR 2 chronological DPLL it replaced survives as
//! [`dpll::DpllSolver`] (the differential-testing baseline). The
//! [`Solver`] here keeps one flat clause database and answers many
//! queries against it, learning across conflicts *and across checks*:
//!
//! * **two watched literals** — each clause is indexed by two of its
//!   literals; propagation touches a clause only when a watched literal
//!   is falsified, instead of rescanning every clause per round;
//! * **trail + decision levels** — assignments are pushed onto a trail
//!   with per-variable decision levels and *reasons* (the clause that
//!   propagated each implied literal), which together form the
//!   implication graph conflict analysis walks;
//! * **first-UIP learning** — every conflict is resolved back to its
//!   first unique implication point ([`analyze`]), yielding a clause
//!   that is a consequence of the database alone and that immediately
//!   propagates after backjumping;
//! * **non-chronological backjumping** — instead of flipping the
//!   deepest decision, search jumps straight to the second-highest
//!   level in the learned clause, discarding every decision the
//!   conflict proved irrelevant;
//! * **VSIDS + phase saving** ([`vsids`]) — decisions follow
//!   conflict-driven activity, and re-entered variables resume their
//!   last polarity;
//! * **restarts + clause GC** — Luby-scheduled restarts escape stuck
//!   regions (phase saving preserves progress), and the learned-clause
//!   store is garbage-collected under an LBD/activity budget whenever
//!   the search is back at the root;
//! * **sessions** — [`Solver::assume`] / [`Solver::check`] /
//!   [`Solver::retract`] answer a stream of queries over one fixed
//!   clause database. Assumptions enter the search as *decisions*, so
//!   learned clauses never depend on them and stay valid after
//!   `retract` — the clause store keeps getting smarter as a session
//!   progresses.
//!
//! # Invariants
//!
//! The trail is partitioned into decision levels by `trail_lim`
//! (`trail_lim[d]` is the index of the first literal of level `d + 1`;
//! level 0 holds root facts). Every trail literal is either a decision
//! (reason `NO_REASON`) or was forced by exactly one clause whose
//! other literals were all false earlier on the trail — that clause is
//! its reason, and the reasons form the implication graph. Propagation
//! maintains the watched-literal invariant: a watched literal is only
//! false while the clause's other watch is true, or the clause has
//! been visited and found unit/conflicting. Garbage collection runs
//! only at level 0, where it may also strip root-false literals and
//! drop root-satisfied clauses (sound: root facts are consequences of
//! the database), then rebuilds every watch list.
//!
//! [`Theory`] sits on top: it Tseitin-compiles [`Formula`]s directly
//! into packed literals (no intermediate `Clause` sets) against an
//! [`AtomTable`], and bridges models back to [`Valuation`]s.

pub mod analyze;
pub mod dpll;
pub mod vsids;

use super::ast::{Atom, Formula};
use super::cnf::ClauseSet;
use super::eval::Valuation;
use super::intern::{AtomTable, Lit, Var};
use analyze::{Analyzer, ImplicationGraph};
use vsids::Vsids;

pub use dpll::DpllSolver;

/// Reason sentinel: the variable was a decision (or an assumption, or a
/// root fact with no surviving reason).
const NO_REASON: u32 = u32::MAX;

/// Conflicts before the first restart; later restarts scale by the Luby
/// sequence.
const RESTART_BASE: u64 = 100;

/// Learned clauses with an LBD at or below this are "glue" and survive
/// every garbage collection.
const GLUE_LBD: u32 = 2;

/// One stored clause: bounds into the shared literal arena plus the
/// learned-clause metadata the garbage collector ranks by.
#[derive(Debug, Clone, Copy)]
struct ClauseHeader {
    /// First literal's index in the arena.
    start: u32,
    /// Number of literals.
    len: u32,
    /// Whether the clause was learned (GC candidates) or added by the
    /// caller (permanent).
    learned: bool,
    /// Literal-block distance at learning time (lower = more valuable).
    lbd: u32,
    /// Conflict-participation activity (bumped when the clause is a
    /// reason in an analyzed conflict).
    activity: f64,
}

/// Cumulative search counters for one [`Solver`]'s lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions (assumptions included).
    pub decisions: u64,
    /// Literals enqueued by unit propagation.
    pub propagations: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Restarts taken.
    pub restarts: u64,
    /// Clauses learned (units included).
    pub learned: u64,
    /// Learned clauses dropped by garbage collection.
    pub learned_dropped: u64,
    /// Root-level simplification + GC passes.
    pub simplifications: u64,
}

/// An incremental CDCL SAT solver over packed literals.
///
/// Clauses are permanent once added; queries vary through assumptions,
/// and everything the solver learns from one query carries over to the
/// next. A typical session:
///
/// ```
/// use casekit_logic::prop::solver::Solver;
/// let mut s = Solver::new();
/// let p = s.new_var();
/// let q = s.new_var();
/// s.add_clause(&[p.negative(), q.positive()]); // p -> q
/// s.assume(p.positive());
/// s.assume(q.negative());
/// assert!(!s.check()); // p & ~q contradicts p -> q
/// s.retract(); // drop ~q
/// assert!(s.check());
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    /// Flat clause arena: every clause's literals, back to back. Slots
    /// `start` and `start + 1` of each clause hold its two watches.
    lits: Vec<Lit>,
    /// Clause headers (problem and learned interleaved).
    headers: Vec<ClauseHeader>,
    /// Per literal code: indices of clauses currently watching it.
    watches: Vec<Vec<u32>>,
    /// Unit clauses (caller-added and learned), re-asserted at the
    /// start of every check.
    units: Vec<Lit>,
    /// Whether the database is known unsatisfiable (empty clause added
    /// or derived).
    empty_clause: bool,
    /// Per variable: `0` unassigned, `1` true, `-1` false.
    assign: Vec<i8>,
    /// Per variable: decision level of the current assignment.
    level: Vec<u32>,
    /// Per variable: clause that propagated it, or [`NO_REASON`].
    reason: Vec<u32>,
    /// Assigned literals in assignment order.
    trail: Vec<Lit>,
    /// Decision-level boundaries: `trail_lim[d]` is where level `d + 1`
    /// starts.
    trail_lim: Vec<usize>,
    /// Propagation queue head (index into `trail`).
    prop_head: usize,
    /// Decision heuristic: activity heap + saved phases.
    vsids: Vsids,
    /// First-UIP conflict analyzer (owns its scratch).
    analyzer: Analyzer,
    /// Current assumption stack.
    assumptions: Vec<Lit>,
    /// Live learned (non-GC'd) clause count.
    learned_live: usize,
    /// Non-learned clause count (for the GC budget formula).
    problem_count: usize,
    /// Caller override for the learned-clause budget.
    budget_override: Option<usize>,
    /// Live learned count right after the last GC pass — a GC only
    /// re-arms once new clauses have been learned past it, so a pass
    /// that cannot get below budget (all glue) never loops.
    gc_floor: usize,
    /// Current clause-activity bump increment.
    cla_inc: f64,
    /// Whether the level-0 prefix of the trail is a propagation
    /// fixpoint of the current database, reusable by the next check
    /// without re-propagating every persisted unit. Invalidated by any
    /// database mutation (every mutation path runs [`Solver::unwind_all`]).
    root_trail_valid: bool,
    /// How many entries of `units` the persistent root trail already
    /// accounts for; a check only enqueues the suffix.
    units_propagated: usize,
    /// Cumulative search counters.
    stats: SolverStats,
}

/// The implication-graph view conflict analysis reads: disjoint borrows
/// of the solver's arrays, so the analyzer (a separate field) can be
/// borrowed mutably alongside.
struct TrailGraph<'a> {
    lits: &'a [Lit],
    headers: &'a [ClauseHeader],
    level: &'a [u32],
    reason: &'a [u32],
}

impl ImplicationGraph for TrailGraph<'_> {
    fn level_of(&self, v: Var) -> u32 {
        self.level[v.index()]
    }

    fn reason_of(&self, v: Var) -> Option<&[Lit]> {
        match self.reason[v.index()] {
            NO_REASON => None,
            r => {
                let h = &self.headers[r as usize];
                Some(&self.lits[h.start as usize..(h.start + h.len) as usize])
            }
        }
    }
}

/// Value of `x` in the Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …),
/// indexed from 0.
fn luby(mut x: u64) -> u64 {
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// What the decision phase of the search loop produced.
enum Decide {
    /// Every variable is assigned: the database is satisfiable and the
    /// trail is a model.
    Sat,
    /// An assumption is falsified by the current (root-implied) state.
    Unsat,
    /// A new decision was enqueued; propagate next.
    Decided,
}

impl Default for Solver {
    /// Identical to [`Solver::new`] — written out by hand because the
    /// clause-activity increment must start at 1.0 (a derived `0.0`
    /// would silently disable activity-ranked garbage collection for
    /// every solver built through `Default`, e.g. via `Theory::new`).
    fn default() -> Self {
        Solver {
            lits: Vec::new(),
            headers: Vec::new(),
            watches: Vec::new(),
            units: Vec::new(),
            empty_clause: false,
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            vsids: Vsids::new(),
            analyzer: Analyzer::new(),
            assumptions: Vec::new(),
            learned_live: 0,
            problem_count: 0,
            budget_override: None,
            gc_floor: 0,
            cla_inc: 1.0,
            root_trail_valid: false,
            units_propagated: 0,
            stats: SolverStats::default(),
        }
    }
}

impl Solver {
    /// An empty solver: no variables, no clauses.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        // Lit packs the variable index shifted left by one, so the
        // index must stay below 2^31 — guard that bound, not u32::MAX.
        let index = u32::try_from(self.assign.len())
            .ok()
            .filter(|i| *i <= u32::MAX >> 1)
            .expect("variable count fits in a packed literal (2^31)");
        let v = Var(index);
        self.assign.push(0);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.vsids.grow();
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of stored non-unit caller clauses plus persisted units.
    /// The unit store mixes caller-added units with root facts the
    /// search derived (learned units, simplification products), and
    /// root simplification may drop satisfied clauses — so this count
    /// can drift in both directions across checks; treat it as a
    /// database-size indicator, not an invariant. Learned non-unit
    /// clauses are counted by [`Solver::num_learned`] instead.
    pub fn num_clauses(&self) -> usize {
        self.problem_count + self.units.len() + usize::from(self.empty_clause)
    }

    /// Number of live learned clauses (excluding learned units, which
    /// merge into the unit store).
    pub fn num_learned(&self) -> usize {
        self.learned_live
    }

    /// Cumulative search counters.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Overrides the learned-clause budget (GC triggers above it). The
    /// default scales with the problem size; tests use a small budget
    /// to exercise collection.
    pub fn set_learned_budget(&mut self, budget: usize) {
        self.budget_override = Some(budget.max(1));
    }

    fn learned_budget(&self) -> usize {
        self.budget_override
            .unwrap_or_else(|| 2000 + self.problem_count / 2)
    }

    /// Drops every learned non-unit clause, keeping the problem clauses
    /// (and the persisted unit store) intact.
    ///
    /// This is the conservative session-invalidation hook for
    /// long-lived incremental callers: learned clauses are consequences
    /// of the clause database, so a session whose database only ever
    /// *grows* (the `Theory::formula_lit` compilation discipline) never
    /// needs this — but a caller that cannot establish that invariant,
    /// or that wants to bound learnt-store memory across thousands of
    /// edit rounds, can forget the learnt set wholesale and let the
    /// search re-derive what the next queries need. Learned *units*
    /// have already merged into the persistent unit store and stay (a
    /// unit consequence of a monotonically-grown database remains a
    /// consequence); a caller that cannot even trust those must rebuild
    /// the theory from scratch — whole-theory invalidation is the
    /// correct fallback, not a partial one.
    pub fn forget_learned(&mut self) {
        self.unwind_all();
        let old_lits = std::mem::take(&mut self.lits);
        let old_headers = std::mem::take(&mut self.headers);
        for w in &mut self.watches {
            w.clear();
        }
        self.problem_count = 0;
        self.stats.learned_dropped += self.learned_live as u64;
        self.learned_live = 0;
        self.gc_floor = 0;
        for h in &old_headers {
            if h.learned {
                continue;
            }
            let clause = &old_lits[h.start as usize..(h.start + h.len) as usize];
            self.store_clause(clause, false, h.lbd);
            self.problem_count += 1;
        }
    }

    /// Adds a permanent clause (a disjunction of `lits`).
    ///
    /// Duplicate literals collapse; tautologous clauses (`p | ~p | …`)
    /// are dropped; the empty clause marks the database unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if any literal's variable was not allocated by
    /// [`Solver::new_var`].
    pub fn add_clause(&mut self, lits: &[Lit]) {
        for l in lits {
            assert!(
                l.var().index() < self.assign.len(),
                "literal {l} references an unallocated variable"
            );
        }
        // Mutating the database invalidates the current trail.
        self.unwind_all();
        // Normalise: sort by code, drop duplicates, detect tautology
        // (complementary literals are adjacent codes after sorting).
        let mut clause: Vec<Lit> = lits.to_vec();
        clause.sort_unstable_by_key(|l| l.code());
        clause.dedup();
        if clause.windows(2).any(|w| w[0] == !w[1]) {
            return;
        }
        match clause.len() {
            0 => self.empty_clause = true,
            1 => self.units.push(clause[0]),
            _ => {
                self.store_clause(&clause, false, 0);
                self.problem_count += 1;
            }
        }
    }

    /// Appends a clause to the arena, watching its first two literals.
    /// Returns the clause index.
    fn store_clause(&mut self, clause: &[Lit], learned: bool, lbd: u32) -> u32 {
        debug_assert!(clause.len() >= 2);
        let start = u32::try_from(self.lits.len()).expect("clause arena fits in u32");
        let ci = u32::try_from(self.headers.len()).expect("clause count fits in u32");
        self.watches[clause[0].code()].push(ci);
        self.watches[clause[1].code()].push(ci);
        self.lits.extend_from_slice(clause);
        self.headers.push(ClauseHeader {
            start,
            len: clause.len() as u32,
            learned,
            lbd,
            activity: if learned { self.cla_inc } else { 0.0 },
        });
        ci
    }

    /// Pushes an assumption for subsequent [`Solver::check`] calls.
    pub fn assume(&mut self, lit: Lit) {
        assert!(
            lit.var().index() < self.assign.len(),
            "assumption {lit} references an unallocated variable"
        );
        self.assumptions.push(lit);
    }

    /// Pops the most recent assumption.
    pub fn retract(&mut self) -> Option<Lit> {
        self.assumptions.pop()
    }

    /// Drops every assumption.
    pub fn retract_all(&mut self) {
        self.assumptions.clear();
    }

    /// The current assumption stack, oldest first.
    pub fn assumptions(&self) -> &[Lit] {
        &self.assumptions
    }

    /// Decides satisfiability of the clause database under the current
    /// assumptions. On `true`, a model is readable via
    /// [`Solver::value`] until the next mutation.
    ///
    /// Clauses learned while answering one check persist into the next:
    /// assumptions enter the search as decisions, so every learned
    /// clause is a consequence of the database alone.
    ///
    /// The level-0 trail also persists between checks (incremental-SAT
    /// style): every literal on it is a consequence of the database
    /// alone — units, their propagation cone, and learned root facts —
    /// so a back-to-back check resumes from that fixpoint instead of
    /// re-propagating it, and only enqueues units persisted since. Any
    /// database mutation unwinds the trail and drops the reuse.
    pub fn check(&mut self) -> bool {
        if self.empty_clause {
            return false;
        }
        if self.root_trail_valid {
            self.cancel_until(0);
        } else {
            self.unwind_all();
        }
        // Root level: every persisted unit (caller-added and learned)
        // the trail does not already carry.
        for i in self.units_propagated..self.units.len() {
            let lit = self.units[i];
            match self.lit_value(lit) {
                Some(true) => {}
                Some(false) => {
                    // Two persisted units conflict: the database itself
                    // is unsatisfiable.
                    self.empty_clause = true;
                    return false;
                }
                None => self.enqueue(lit, NO_REASON),
            }
        }
        self.units_propagated = self.units.len();
        let sat = self.search();
        self.root_trail_valid = !self.empty_clause;
        sat
    }

    /// The literal's value under the current (partial) assignment.
    pub fn value(&self, lit: Lit) -> Option<bool> {
        self.lit_value(lit)
    }

    /// The variable's value under the current (partial) assignment.
    pub fn var_value(&self, var: Var) -> Option<bool> {
        match self.assign[var.index()] {
            0 => None,
            v => Some(v > 0),
        }
    }

    #[inline]
    fn lit_value(&self, lit: Lit) -> Option<bool> {
        match self.assign[lit.var().index()] {
            0 => None,
            v => Some((v > 0) == lit.is_positive()),
        }
    }

    #[inline]
    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    #[inline]
    fn enqueue(&mut self, lit: Lit, reason: u32) {
        debug_assert!(
            self.lit_value(lit).is_none(),
            "enqueue of an assigned literal"
        );
        let vi = lit.var().index();
        self.assign[vi] = if lit.is_positive() { 1 } else { -1 };
        self.level[vi] = self.decision_level() as u32;
        self.reason[vi] = reason;
        self.trail.push(lit);
    }

    /// Unwinds the trail completely (used between checks and before
    /// database mutation), saving phases and re-enqueueing decision
    /// candidates.
    ///
    /// Re-inserting only the trail's variables restores the
    /// "unassigned ⇒ enqueued" heap invariant in O(trail): a variable
    /// only ever leaves the heap by being popped in `next_decision`,
    /// and every popped variable is (or already was) assigned — i.e.
    /// on the trail.
    fn unwind_all(&mut self) {
        self.root_trail_valid = false;
        self.units_propagated = 0;
        for i in (0..self.trail.len()).rev() {
            let lit = self.trail[i];
            let vi = lit.var().index();
            self.vsids.save_phase(lit.var(), lit.is_positive());
            self.assign[vi] = 0;
            self.reason[vi] = NO_REASON;
            self.vsids.insert(lit.var());
        }
        self.trail.clear();
        self.trail_lim.clear();
        self.prop_head = 0;
    }

    /// Backjumps to `target_level`, undoing every deeper assignment.
    fn cancel_until(&mut self, target_level: usize) {
        if self.decision_level() <= target_level {
            return;
        }
        let start = self.trail_lim[target_level];
        for i in (start..self.trail.len()).rev() {
            let lit = self.trail[i];
            let vi = lit.var().index();
            self.vsids.save_phase(lit.var(), lit.is_positive());
            self.assign[vi] = 0;
            self.reason[vi] = NO_REASON;
            self.vsids.insert(lit.var());
        }
        self.trail.truncate(start);
        self.trail_lim.truncate(target_level);
        self.prop_head = start;
    }

    /// The CDCL loop: propagate, analyze/learn/backjump on conflict,
    /// restart on the Luby schedule, GC at the root, decide otherwise.
    fn search(&mut self) -> bool {
        let mut conflicts_since_restart: u64 = 0;
        let mut restarts_this_check: u64 = 0;
        let mut restart_threshold = RESTART_BASE * luby(0);
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    // A root conflict refutes the database itself
                    // (assumptions live on decision levels ≥ 1).
                    self.empty_clause = true;
                    return false;
                }
                self.learn_from(conflict);
            } else {
                // Root fixpoint: the only place clause GC is sound.
                if self.decision_level() == 0
                    && self.learned_live > self.learned_budget()
                    && self.learned_live > self.gc_floor
                {
                    if !self.simplify_and_reduce() {
                        return false;
                    }
                    self.gc_floor = self.learned_live;
                    continue; // propagate any units the rebuild surfaced
                }
                if conflicts_since_restart >= restart_threshold {
                    conflicts_since_restart = 0;
                    restarts_this_check += 1;
                    self.stats.restarts += 1;
                    restart_threshold = RESTART_BASE * luby(restarts_this_check);
                    self.cancel_until(0);
                    continue;
                }
                match self.next_decision() {
                    Decide::Sat => return true,
                    Decide::Unsat => return false,
                    Decide::Decided => {}
                }
            }
        }
    }

    /// Watched-literal unit propagation. Returns the conflicting clause
    /// index, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.prop_head < self.trail.len() {
            let lit = self.trail[self.prop_head];
            self.prop_head += 1;
            let falsified = !lit;
            let fcode = falsified.code();
            let mut i = 0;
            'clauses: while i < self.watches[fcode].len() {
                let ci = self.watches[fcode][i] as usize;
                let h = self.headers[ci];
                let (s, e) = (h.start as usize, (h.start + h.len) as usize);
                // Keep the falsified literal in the second watch slot.
                if self.lits[s] == falsified {
                    self.lits.swap(s, s + 1);
                }
                let other = self.lits[s];
                if self.lit_value(other) == Some(true) {
                    i += 1;
                    continue;
                }
                // Hunt for a non-false replacement watch.
                for k in s + 2..e {
                    let cand = self.lits[k];
                    if self.lit_value(cand) != Some(false) {
                        self.lits.swap(s + 1, k);
                        self.watches[fcode].swap_remove(i);
                        self.watches[cand.code()].push(ci as u32);
                        continue 'clauses;
                    }
                }
                // Every other literal is false: unit or conflict.
                match self.lit_value(other) {
                    Some(false) => return Some(ci as u32),
                    None => {
                        self.stats.propagations += 1;
                        self.enqueue(other, ci as u32);
                        i += 1;
                    }
                    Some(true) => unreachable!("handled above"),
                }
            }
        }
        None
    }

    /// Conflict response: first-UIP analysis, activity bumps, backjump,
    /// learned-clause insertion, and assertion of the UIP literal.
    fn learn_from(&mut self, conflict: u32) {
        let current_level = self.decision_level() as u32;
        let analysis = {
            let Self {
                ref lits,
                ref headers,
                ref level,
                ref reason,
                ref trail,
                ref mut analyzer,
                ..
            } = *self;
            let graph = TrailGraph {
                lits,
                headers,
                level,
                reason,
            };
            let h = &headers[conflict as usize];
            let conflict_lits = &lits[h.start as usize..(h.start + h.len) as usize];
            analyzer.analyze(&graph, trail, current_level, conflict_lits)
        };

        // Variable activity: everyone who took part in the resolution.
        for &v in &analysis.touched {
            self.vsids.bump(v);
        }
        self.vsids.decay();
        // Clause activity: every learned clause used as a reason at the
        // conflict level.
        self.bump_reason_clauses(&analysis.touched, current_level);

        self.stats.learned += 1;
        self.cancel_until(analysis.backjump as usize);
        if analysis.learned.len() == 1 {
            // A learned unit is a root fact of the database: persist it
            // alongside the caller's units for every future check.
            let lit = analysis.learned[0];
            self.units.push(lit);
            debug_assert!(self.lit_value(lit).is_none());
            self.enqueue(lit, NO_REASON);
        } else {
            let ci = self.store_clause(&analysis.learned, true, analysis.lbd);
            self.learned_live += 1;
            self.enqueue(analysis.learned[0], ci);
        }
    }

    fn bump_reason_clauses(&mut self, touched: &[Var], current_level: u32) {
        for &v in touched {
            if self.level[v.index()] != current_level {
                continue;
            }
            let r = self.reason[v.index()];
            if r == NO_REASON {
                continue;
            }
            let h = &mut self.headers[r as usize];
            if h.learned {
                h.activity += self.cla_inc;
                if h.activity > 1e20 {
                    for header in &mut self.headers {
                        header.activity *= 1e-20;
                    }
                    self.cla_inc *= 1e-20;
                }
            }
        }
        self.cla_inc /= 0.999;
    }

    /// Places the next decision: pending assumptions first (as
    /// decisions, so learning never depends on them), then the highest-
    /// activity unassigned variable in its saved phase.
    fn next_decision(&mut self) -> Decide {
        while self.decision_level() < self.assumptions.len() {
            let a = self.assumptions[self.decision_level()];
            match self.lit_value(a) {
                Some(true) => {
                    // Already implied: open an empty level to keep the
                    // level ↔ assumption-index correspondence.
                    self.trail_lim.push(self.trail.len());
                }
                Some(false) => return Decide::Unsat,
                None => {
                    self.stats.decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(a, NO_REASON);
                    return Decide::Decided;
                }
            }
        }
        loop {
            match self.vsids.pop() {
                None => return Decide::Sat,
                Some(v) if self.assign[v.index()] != 0 => continue,
                Some(v) => {
                    self.stats.decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(v.lit(self.vsids.phase(v)), NO_REASON);
                    return Decide::Decided;
                }
            }
        }
    }

    /// Root-level database maintenance: drop clauses satisfied by root
    /// facts, strip root-false literals, garbage-collect learned
    /// clauses over the LBD/activity budget, rebuild the arena and
    /// every watch list. Returns `false` if the rebuild refuted the
    /// database.
    ///
    /// Sound because every root fact is a consequence of the database
    /// (assumptions are decisions on levels ≥ 1 and never reach level
    /// 0), so stripping preserves the model set; only callable at the
    /// root propagation fixpoint.
    fn simplify_and_reduce(&mut self) -> bool {
        debug_assert!(self.trail_lim.is_empty(), "GC runs only at the root");
        self.stats.simplifications += 1;

        // Root facts become the persistent unit set; their reasons die
        // with the clause indices below.
        self.units.clear();
        self.units.extend_from_slice(&self.trail);
        for i in 0..self.trail.len() {
            let vi = self.trail[i].var().index();
            self.reason[vi] = NO_REASON;
        }

        // Rank the learned clauses; everything beyond the budget dies,
        // glue clauses (LBD ≤ GLUE_LBD) always survive.
        let mut keep = vec![true; self.headers.len()];
        let mut live: Vec<u32> = (0..self.headers.len() as u32)
            .filter(|&ci| self.headers[ci as usize].learned)
            .collect();
        if live.len() > self.learned_budget() {
            let headers = &self.headers;
            live.sort_by(|&a, &b| {
                let (ha, hb) = (&headers[a as usize], &headers[b as usize]);
                ha.lbd
                    .cmp(&hb.lbd)
                    .then(
                        hb.activity
                            .partial_cmp(&ha.activity)
                            .unwrap_or(std::cmp::Ordering::Equal),
                    )
                    .then(a.cmp(&b))
            });
            let keep_n = (self.learned_budget() / 2).max(1);
            for &ci in live.iter().skip(keep_n) {
                if headers[ci as usize].lbd > GLUE_LBD {
                    keep[ci as usize] = false;
                    self.stats.learned_dropped += 1;
                }
            }
        }

        // Rebuild the arena: surviving clauses, minus satisfied ones,
        // minus root-false literals.
        let old_lits = std::mem::take(&mut self.lits);
        let old_headers = std::mem::take(&mut self.headers);
        for w in &mut self.watches {
            w.clear();
        }
        self.problem_count = 0;
        self.learned_live = 0;
        let mut scratch: Vec<Lit> = Vec::new();
        for (ci, h) in old_headers.iter().enumerate() {
            if !keep[ci] {
                continue;
            }
            let clause = &old_lits[h.start as usize..(h.start + h.len) as usize];
            if clause.iter().any(|&l| self.lit_value(l) == Some(true)) {
                continue;
            }
            scratch.clear();
            scratch.extend(clause.iter().filter(|&&l| self.lit_value(l).is_none()));
            match scratch.len() {
                0 => {
                    // Cannot happen at a propagation fixpoint (the
                    // clause would have conflicted), but refute safely.
                    self.empty_clause = true;
                    return false;
                }
                1 => {
                    // Became unit under the root facts: persist and
                    // enqueue so propagation resumes from it.
                    self.units.push(scratch[0]);
                    self.enqueue(scratch[0], NO_REASON);
                }
                _ => {
                    self.store_clause(&scratch, h.learned, h.lbd);
                    let stored = self.headers.last_mut().expect("just stored");
                    stored.activity = h.activity;
                    if h.learned {
                        self.learned_live += 1;
                    } else {
                        self.problem_count += 1;
                    }
                }
            }
        }
        // The rebuilt unit store is exactly the root trail (plus the
        // newly-unit clauses enqueued above): all accounted for.
        self.units_propagated = self.units.len();
        true
    }
}

/// A compiled propositional theory: an [`AtomTable`], a [`Solver`], and
/// a Tseitin compiler from [`Formula`]s straight to packed literals.
///
/// Every sub-formula is defined by a fresh variable with full
/// biconditional definition clauses, so the returned literal is
/// *equivalent* to the formula in every model — which makes both the
/// literal and its negation usable as assumptions. That is what turns
/// entailment probing into a session over one clause database:
///
/// ```
/// use casekit_logic::prop::{parse, solver::Theory};
/// let mut th = Theory::new();
/// let rule = th.formula_lit(&parse("p -> q").unwrap());
/// let p = th.formula_lit(&parse("p").unwrap());
/// let q = th.formula_lit(&parse("q").unwrap());
/// // {p -> q, p} ⊢ q: assuming the premises and ~q is unsatisfiable.
/// th.assume(rule);
/// th.assume(p);
/// th.assume(!q);
/// assert!(!th.check());
/// th.retract(); // drop ~q: the premises alone are consistent
/// assert!(th.check());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Theory {
    solver: Solver,
    atoms: AtomTable,
    /// Lazily created constant-true variable.
    true_lit: Option<Lit>,
}

impl Theory {
    /// An empty theory.
    pub fn new() -> Self {
        Self::default()
    }

    /// The atom interner (name ↔ solver variable).
    pub fn atoms(&self) -> &AtomTable {
        &self.atoms
    }

    /// Number of solver variables (atoms plus Tseitin definitions).
    pub fn num_vars(&self) -> usize {
        self.solver.num_vars()
    }

    /// Number of clauses in the database.
    pub fn num_clauses(&self) -> usize {
        self.solver.num_clauses()
    }

    /// The underlying solver's cumulative search counters.
    pub fn stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// Number of live learned (non-unit) clauses in the session.
    pub fn num_learned(&self) -> usize {
        self.solver.num_learned()
    }

    /// Drops the session's learned non-unit clauses
    /// ([`Solver::forget_learned`]): the conservative invalidation hook
    /// for incremental callers that cannot establish the learnt set is
    /// still a consequence of their edited database, or that want to
    /// bound its memory across many edit rounds. Sessions compiled
    /// exclusively through [`Theory::formula_lit`] (definitional
    /// clauses only, database only grows) never *need* this for
    /// soundness.
    pub fn forget_learned(&mut self) {
        self.solver.forget_learned();
    }

    /// The positive literal for `atom`, interning it on first sight.
    pub fn atom_lit(&mut self, atom: &Atom) -> Lit {
        let solver = &mut self.solver;
        self.atoms.intern_with(atom, || solver.new_var()).positive()
    }

    /// A literal constrained true in every model.
    fn constant_true(&mut self) -> Lit {
        if let Some(t) = self.true_lit {
            return t;
        }
        let t = self.solver.new_var().positive();
        self.solver.add_clause(&[t]);
        self.true_lit = Some(t);
        t
    }

    /// Compiles `formula` to an equivalent literal, adding Tseitin
    /// definition clauses (full biconditionals) to the database.
    pub fn formula_lit(&mut self, formula: &Formula) -> Lit {
        match formula {
            Formula::True => self.constant_true(),
            Formula::False => !self.constant_true(),
            Formula::Atom(a) => self.atom_lit(a),
            Formula::Not(inner) => !self.formula_lit(inner),
            Formula::And(l, r) => {
                let a = self.formula_lit(l);
                let b = self.formula_lit(r);
                let x = self.solver.new_var().positive();
                // x <-> a & b
                self.solver.add_clause(&[!x, a]);
                self.solver.add_clause(&[!x, b]);
                self.solver.add_clause(&[x, !a, !b]);
                x
            }
            Formula::Or(l, r) => {
                let a = self.formula_lit(l);
                let b = self.formula_lit(r);
                let x = self.solver.new_var().positive();
                // x <-> a | b
                self.solver.add_clause(&[!x, a, b]);
                self.solver.add_clause(&[x, !a]);
                self.solver.add_clause(&[x, !b]);
                x
            }
            Formula::Implies(l, r) => {
                let a = self.formula_lit(l);
                let b = self.formula_lit(r);
                let x = self.solver.new_var().positive();
                // x <-> (a -> b)
                self.solver.add_clause(&[!x, !a, b]);
                self.solver.add_clause(&[x, a]);
                self.solver.add_clause(&[x, !b]);
                x
            }
            Formula::Iff(l, r) => {
                let a = self.formula_lit(l);
                let b = self.formula_lit(r);
                let x = self.solver.new_var().positive();
                // x <-> (a <-> b)
                self.solver.add_clause(&[!x, !a, b]);
                self.solver.add_clause(&[!x, a, !b]);
                self.solver.add_clause(&[x, a, b]);
                self.solver.add_clause(&[x, !a, !b]);
                x
            }
        }
    }

    /// Asserts `formula` (adds its literal as a unit clause).
    pub fn assert_formula(&mut self, formula: &Formula) {
        let lit = self.formula_lit(formula);
        self.solver.add_clause(&[lit]);
    }

    /// Asserts every clause of a [`ClauseSet`] directly (no Tseitin
    /// definitions — the set is already CNF).
    pub fn assert_clauses(&mut self, cs: &ClauseSet) {
        let mut buf: Vec<Lit> = Vec::new();
        for clause in cs.clauses() {
            buf.clear();
            for literal in clause.literals() {
                let lit = self.atom_lit(&literal.atom);
                buf.push(if literal.positive { lit } else { !lit });
            }
            self.solver.add_clause(&buf);
        }
    }

    /// Pushes an assumption.
    pub fn assume(&mut self, lit: Lit) {
        self.solver.assume(lit);
    }

    /// Compiles `formula` and assumes its literal, returning it.
    pub fn assume_formula(&mut self, formula: &Formula) -> Lit {
        let lit = self.formula_lit(formula);
        self.solver.assume(lit);
        lit
    }

    /// Pops the most recent assumption.
    pub fn retract(&mut self) -> Option<Lit> {
        self.solver.retract()
    }

    /// Drops every assumption.
    pub fn retract_all(&mut self) {
        self.solver.retract_all();
    }

    /// Checks satisfiability under the current assumptions.
    pub fn check(&mut self) -> bool {
        self.solver.check()
    }

    /// One complete question: checks satisfiability under the current
    /// assumptions *plus* `assumptions`, then retracts back to the
    /// prior assumption stack. This is the session idiom every batch
    /// caller uses — keep the discipline here, not at each call site.
    pub fn check_under<I: IntoIterator<Item = Lit>>(&mut self, assumptions: I) -> bool {
        let depth = self.solver.assumptions().len();
        for lit in assumptions {
            self.solver.assume(lit);
        }
        let sat = self.solver.check();
        while self.solver.assumptions().len() > depth {
            self.solver.retract();
        }
        sat
    }

    /// Like [`Theory::check_under`], but on satisfiability returns the
    /// model restricted to `atoms`.
    pub fn model_under<'a, I, A>(&mut self, assumptions: I, atoms: A) -> Option<Valuation>
    where
        I: IntoIterator<Item = Lit>,
        A: IntoIterator<Item = &'a Atom>,
    {
        let depth = self.solver.assumptions().len();
        for lit in assumptions {
            self.solver.assume(lit);
        }
        let model = if self.solver.check() {
            Some(self.model(atoms))
        } else {
            None
        };
        while self.solver.assumptions().len() > depth {
            self.solver.retract();
        }
        model
    }

    /// Like [`Theory::check_under`], but on satisfiability returns the
    /// complete variable assignment as a dense vector indexed by
    /// [`Var::index`] (variables the search left unassigned read as
    /// `false`, which keeps the vector a model: a SAT answer with
    /// unassigned variables means every clause over them is already
    /// satisfied).
    ///
    /// Witness-reusing probe engines (CaseLint's logical passes) store
    /// these vectors and answer later satisfiability questions by
    /// evaluating the assumption literals against stored witnesses —
    /// a handful of array reads — falling back to a real solver call
    /// only when no witness covers the assumptions. A stored witness
    /// stays valid across later checks on the same session: learned
    /// clauses are consequences of the database, and Tseitin
    /// definitions added later only constrain the fresh variables,
    /// which an index-bounds check excludes.
    pub fn witness_under<I: IntoIterator<Item = Lit>>(
        &mut self,
        assumptions: I,
    ) -> Option<Vec<bool>> {
        let depth = self.solver.assumptions().len();
        for lit in assumptions {
            self.solver.assume(lit);
        }
        let witness = if self.solver.check() {
            Some(
                (0..self.solver.num_vars())
                    .map(|i| self.solver.var_value(Var(i as u32)) == Some(true))
                    .collect(),
            )
        } else {
            None
        };
        while self.solver.assumptions().len() > depth {
            self.solver.retract();
        }
        witness
    }

    /// After a satisfiable check: the value of `atom` in the model.
    pub fn value(&self, atom: &Atom) -> Option<bool> {
        let var = self.atoms.var(atom)?;
        self.solver.var_value(var)
    }

    /// After a satisfiable check: the model restricted to `atoms`
    /// (unassigned or unknown atoms read as `false`, matching
    /// [`Valuation`] semantics).
    pub fn model<'a, I: IntoIterator<Item = &'a Atom>>(&self, atoms: I) -> Valuation {
        atoms
            .into_iter()
            .map(|a| (a.clone(), self.value(a).unwrap_or(false)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::parse;
    use super::*;

    #[test]
    fn empty_solver_is_sat() {
        let mut s = Solver::new();
        assert!(s.check());
        assert_eq!(s.num_vars(), 0);
        assert_eq!(s.num_clauses(), 0);
    }

    #[test]
    fn default_matches_new_including_the_activity_increment() {
        // Theory::new builds its solver through Default; a derived 0.0
        // increment would disable clause-activity GC ranking there.
        assert_eq!(Solver::default().cla_inc, 1.0);
        assert_eq!(Solver::new().cla_inc, Solver::default().cla_inc);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.add_clause(&[]);
        assert!(!s.check());
        assert_eq!(s.num_clauses(), 1);
    }

    #[test]
    fn unit_propagation_chain() {
        // p, p->q, q->r ... forced all the way; ~last is unsat.
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..20).map(|_| s.new_var()).collect();
        s.add_clause(&[vars[0].positive()]);
        for w in vars.windows(2) {
            s.add_clause(&[w[0].negative(), w[1].positive()]);
        }
        assert!(s.check());
        for v in &vars {
            assert_eq!(s.var_value(*v), Some(true));
        }
        s.assume(vars[19].negative());
        assert!(!s.check());
        s.retract_all();
        assert!(s.check());
    }

    #[test]
    fn tautologous_and_duplicate_clauses_are_harmless() {
        let mut s = Solver::new();
        let p = s.new_var();
        let q = s.new_var();
        s.add_clause(&[p.positive(), p.negative()]); // dropped
        assert_eq!(s.num_clauses(), 0);
        s.add_clause(&[q.positive(), q.positive()]); // collapses to unit
        assert!(s.check());
        assert_eq!(s.var_value(q), Some(true));
    }

    #[test]
    fn assume_retract_session_reuses_database() {
        let mut s = Solver::new();
        let p = s.new_var();
        let q = s.new_var();
        let r = s.new_var();
        // (p | q) & (~p | r)
        s.add_clause(&[p.positive(), q.positive()]);
        s.add_clause(&[p.negative(), r.positive()]);
        assert!(s.check());
        s.assume(p.positive());
        s.assume(r.negative());
        assert!(!s.check());
        assert_eq!(s.retract(), Some(r.negative()));
        assert!(s.check());
        assert_eq!(s.value(r.positive()), Some(true));
        s.assume(q.negative());
        assert!(s.check()); // p & ~q & r works
        assert_eq!(s.assumptions().len(), 2);
        s.retract_all();
        assert!(s.check());
    }

    #[test]
    fn contradictory_assumptions_unsat_without_corruption() {
        let mut s = Solver::new();
        let p = s.new_var();
        s.assume(p.positive());
        s.assume(p.negative());
        assert!(!s.check());
        s.retract_all();
        assert!(s.check());
    }

    #[test]
    fn duplicate_assumptions_are_harmless() {
        let mut s = Solver::new();
        let p = s.new_var();
        let q = s.new_var();
        s.add_clause(&[p.negative(), q.positive()]);
        s.assume(p.positive());
        s.assume(p.positive());
        s.assume(p.positive());
        assert!(s.check());
        assert_eq!(s.var_value(q), Some(true));
        s.retract_all();
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: each pigeon somewhere, no hole shared.
        let mut s = Solver::new();
        let at: Vec<Vec<Var>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var()).collect())
            .collect();
        for p in &at {
            s.add_clause(&[p[0].positive(), p[1].positive()]);
        }
        for a in 0..3 {
            for b in a + 1..3 {
                for (x, y) in at[a].iter().zip(&at[b]) {
                    s.add_clause(&[x.negative(), y.negative()]);
                }
            }
        }
        assert!(!s.check());
        assert!(s.stats().conflicts > 0, "refutation needs conflicts");
    }

    #[test]
    fn pigeonhole_5_into_4_is_unsat_and_5_into_5_is_sat() {
        for holes in [4usize, 5] {
            let mut s = Solver::new();
            let at: Vec<Vec<Var>> = (0..5)
                .map(|_| (0..holes).map(|_| s.new_var()).collect())
                .collect();
            for p in &at {
                let clause: Vec<Lit> = p.iter().map(|v| v.positive()).collect();
                s.add_clause(&clause);
            }
            for a in 0..5 {
                for b in a + 1..5 {
                    for (x, y) in at[a].iter().zip(&at[b]) {
                        s.add_clause(&[x.negative(), y.negative()]);
                    }
                }
            }
            assert_eq!(s.check(), holes == 5, "holes = {holes}");
        }
    }

    #[test]
    fn model_satisfies_every_clause() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..8).map(|_| s.new_var()).collect();
        let clauses: Vec<Vec<Lit>> = (0..12)
            .map(|i| {
                (0..3)
                    .map(|j| {
                        let v = vars[(i * 3 + j * 5) % 8];
                        v.lit((i + j) % 2 == 0)
                    })
                    .collect()
            })
            .collect();
        for c in &clauses {
            s.add_clause(c);
        }
        assert!(s.check());
        for c in &clauses {
            assert!(
                c.iter().any(|&l| s.value(l) == Some(true)),
                "model falsifies a clause"
            );
        }
    }

    #[test]
    fn incremental_clause_add_after_check() {
        let mut s = Solver::new();
        let p = s.new_var();
        assert!(s.check());
        s.add_clause(&[p.positive()]);
        assert!(s.check());
        assert_eq!(s.var_value(p), Some(true));
        s.add_clause(&[p.negative()]);
        assert!(!s.check());
    }

    #[test]
    fn learned_clauses_persist_across_checks_and_verdicts_stay_stable() {
        // An unsat core plus free variables: repeated checks under
        // rotating assumptions must answer identically while the
        // learned store grows and is reused.
        let mut s = Solver::new();
        let free: Vec<Var> = (0..6).map(|_| s.new_var()).collect();
        let at: Vec<Vec<Var>> = (0..4)
            .map(|_| (0..3).map(|_| s.new_var()).collect())
            .collect();
        for p in &at {
            let clause: Vec<Lit> = p.iter().map(|v| v.positive()).collect();
            s.add_clause(&clause);
        }
        for a in 0..4 {
            for b in a + 1..4 {
                for (x, y) in at[a].iter().zip(&at[b]) {
                    s.add_clause(&[x.negative(), y.negative()]);
                }
            }
        }
        for round in 0..10 {
            s.assume(free[round % free.len()].lit(round % 2 == 0));
            assert!(!s.check(), "core stays unsat on round {round}");
            s.retract_all();
        }
        let learned_units = s.units.len();
        assert!(
            s.stats().learned > 0,
            "conflict-driven search must learn clauses"
        );
        // Knowledge persisted (units or stored learned clauses).
        assert!(s.num_learned() + learned_units > 0);
    }

    #[test]
    fn forget_learned_preserves_verdicts_and_problem_clauses() {
        // The relaxed-pigeonhole shape: conflict-rich under ~r,
        // satisfiable under r. Forgetting the learnt set between rounds
        // must leave every verdict unchanged — the search just re-earns
        // its shortcuts.
        let mut s = Solver::new();
        let r = s.new_var();
        let at: Vec<Vec<Var>> = (0..5)
            .map(|_| (0..4).map(|_| s.new_var()).collect())
            .collect();
        for p in &at {
            let clause: Vec<Lit> = p.iter().map(|v| v.positive()).collect();
            s.add_clause(&clause);
        }
        for a in 0..5 {
            for b in a + 1..5 {
                for (x, y) in at[a].iter().zip(&at[b]) {
                    s.add_clause(&[x.negative(), y.negative(), r.positive()]);
                }
            }
        }
        let problem_clauses = s.num_clauses();
        for round in 0..4 {
            s.assume(r.negative());
            assert!(!s.check(), "strict pigeonhole stays unsat (round {round})");
            s.retract_all();
            s.assume(r.positive());
            assert!(s.check(), "relaxed pigeonhole stays sat (round {round})");
            s.retract_all();
            s.forget_learned();
            assert_eq!(s.num_learned(), 0, "learnt store empty after forget");
        }
        // Problem clauses survive every forget pass (the unit store may
        // have grown by derived root facts, which are consequences and
        // deliberately kept).
        assert!(s.num_clauses() >= problem_clauses - s.units.len());
        assert!(s.stats().conflicts > 0);

        // The Theory wrapper exposes the same hook.
        let mut th = Theory::new();
        let f = parse("(p -> q) & (q -> r) & p").unwrap();
        let lit = th.formula_lit(&f);
        let r_lit = th.formula_lit(&parse("r").unwrap());
        assert!(!th.check_under([lit, !r_lit]));
        th.forget_learned();
        assert_eq!(th.num_learned(), 0);
        assert!(!th.check_under([lit, !r_lit]));
        assert!(th.check_under([lit, r_lit]));
    }

    #[test]
    fn garbage_collection_under_a_tiny_budget_preserves_verdicts() {
        // A pigeonhole core with a relaxation variable `r` added to
        // every exclusion clause: assuming ~r reinstates the unsat
        // core (conflict-rich), assuming r relaxes it (satisfiable).
        // With a budget of 2 the learned store is collected over and
        // over; verdicts must never change.
        let mut s = Solver::new();
        s.set_learned_budget(2);
        let r = s.new_var();
        let at: Vec<Vec<Var>> = (0..5)
            .map(|_| (0..4).map(|_| s.new_var()).collect())
            .collect();
        for p in &at {
            let clause: Vec<Lit> = p.iter().map(|v| v.positive()).collect();
            s.add_clause(&clause);
        }
        for a in 0..5 {
            for b in a + 1..5 {
                for (x, y) in at[a].iter().zip(&at[b]) {
                    s.add_clause(&[x.negative(), y.negative(), r.positive()]);
                }
            }
        }
        for round in 0..6 {
            s.assume(r.negative());
            assert!(!s.check(), "strict pigeonhole stays unsat (round {round})");
            s.retract_all();
            s.assume(r.positive());
            assert!(s.check(), "relaxed pigeonhole stays sat (round {round})");
            s.retract_all();
        }
        assert!(
            s.stats().conflicts > 0,
            "the strict rounds must be conflict-driven"
        );
        assert!(
            s.stats().simplifications > 0,
            "tiny budget must trigger garbage collection"
        );
    }

    #[test]
    fn solver_agrees_with_dpll_baseline_on_scripted_sessions() {
        // Same clause database, same assumption script, both engines.
        let clauses: Vec<Vec<(u32, bool)>> = vec![
            vec![(0, true), (1, true), (2, false)],
            vec![(0, false), (3, true)],
            vec![(3, false), (4, true)],
            vec![(1, false), (4, false)],
            vec![(2, true), (5, true)],
            vec![(4, true), (5, false), (6, true)],
            vec![(6, false), (7, true)],
            vec![(7, false), (0, true), (5, true)],
        ];
        let mut cdcl = Solver::new();
        let mut base = DpllSolver::new();
        let cv: Vec<Var> = (0..8).map(|_| cdcl.new_var()).collect();
        let bv: Vec<Var> = (0..8).map(|_| base.new_var()).collect();
        for c in &clauses {
            let cc: Vec<Lit> = c.iter().map(|&(v, pos)| cv[v as usize].lit(pos)).collect();
            let bc: Vec<Lit> = c.iter().map(|&(v, pos)| bv[v as usize].lit(pos)).collect();
            cdcl.add_clause(&cc);
            base.add_clause(&bc);
        }
        let script: Vec<Vec<(u32, bool)>> = vec![
            vec![],
            vec![(0, true)],
            vec![(0, true), (4, false)],
            vec![(1, true), (5, false)],
            vec![(2, false), (6, true), (7, false)],
            vec![(3, true), (4, true), (1, true)],
        ];
        for assumptions in &script {
            for &(v, pos) in assumptions {
                cdcl.assume(cv[v as usize].lit(pos));
                base.assume(bv[v as usize].lit(pos));
            }
            assert_eq!(
                cdcl.check(),
                base.check(),
                "engines disagree under {assumptions:?}"
            );
            cdcl.retract_all();
            base.retract_all();
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let prefix: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(prefix, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn theory_compiles_and_checks_formulas() {
        let mut th = Theory::new();
        th.assert_formula(&parse("(p | q) & (~p | r)").unwrap());
        assert!(th.check());
        th.assert_formula(&parse("p & ~r").unwrap());
        assert!(!th.check());
    }

    #[test]
    fn theory_definition_literals_are_equivalences() {
        // Assuming the *negation* of a definition literal must force the
        // formula false — only true with full biconditional definitions.
        let mut th = Theory::new();
        let f = parse("p & q").unwrap();
        let lit = th.formula_lit(&f);
        th.assume(!lit);
        th.assume_formula(&parse("p").unwrap());
        th.assume_formula(&parse("q").unwrap());
        assert!(!th.check());
        th.retract_all();
        th.assume(!lit);
        assert!(th.check());
        let model = th.model(f.atoms().iter());
        assert!(!f.eval(&model), "negated definition still satisfied f");
    }

    #[test]
    fn theory_constants() {
        let mut th = Theory::new();
        th.assert_formula(&Formula::True);
        assert!(th.check());
        th.assert_formula(&Formula::False);
        assert!(!th.check());
    }

    #[test]
    fn theory_model_restricts_and_defaults() {
        let mut th = Theory::new();
        th.assert_formula(&parse("p").unwrap());
        assert!(th.check());
        let atoms = [Atom::new("p"), Atom::new("never_seen")];
        let v = th.model(atoms.iter());
        assert_eq!(v.get(&Atom::new("p")), Some(true));
        assert_eq!(v.get(&Atom::new("never_seen")), Some(false));
    }

    #[test]
    fn theory_clause_set_assertion() {
        let cs = parse("(p | q) & ~p").unwrap().to_cnf();
        let mut th = Theory::new();
        th.assert_clauses(&cs);
        assert!(th.check());
        assert_eq!(th.value(&Atom::new("q")), Some(true));
    }
}
