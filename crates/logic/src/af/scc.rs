//! The SCC-decomposed semantics engine: condensation, per-component
//! solving, and topological reassembly.
//!
//! # Why decompose
//!
//! The monolithic encoding ([`super::encode::AfSat`]) hands the whole
//! framework to one SAT session — fine at hundreds of arguments,
//! hopeless at 10^5. But complete, stable, preferred, and grounded
//! semantics are all *SCC-recursive* (Baroni, Giacomin & Guida 2005):
//! a labelling is legal iff its restriction to every strongly connected
//! component of the attack graph is legal for that component *given the
//! labels of the component's upstream attackers*. Attacks between
//! components only flow one way in the condensation, so components can
//! be solved in topological order and the global answer reassembled
//! from small local ones.
//!
//! # The pipeline
//!
//! 1. **Condense** ([`Condensation::build`]) — an iterative
//!    (non-recursive, stack-safe at 10^5 nodes) Tarjan pass over the
//!    CSR [`Adjacency`] groups arguments into components, renumbers
//!    them so *attackers come first* (every attack edge goes from a
//!    lower-numbered component to a higher one, or stays inside one),
//!    and assigns each component its longest-path *depth*. Components
//!    at the same depth have no edges between them, so they are
//!    independent given all shallower labels.
//! 2. **Walk depth by depth** ([`Decomposed`]) — the engine carries a
//!    set of *branches* (partial labellings of everything at shallower
//!    depths; one branch per distinct way the semantics could have
//!    labelled upstream). At each depth every component sees only its
//!    upstream labels, summarized per member as an *interface
//!    signature*: does some external attacker carry `In`, else some
//!    `Undec`, else all `Out`/none.
//! 3. **Trivial components propagate** — a singleton with an `In`
//!    external attacker is `Out`; with all externals `Out` (or no
//!    attackers) it is `In`; otherwise (or with a self-loop) `Undec`.
//!    No SAT call. In large deliberation graphs nearly every component
//!    is a singleton, which is exactly why this path scales.
//! 4. **Non-trivial components get a small SAT encoding** — the same
//!    labelling clauses as the monolithic engine, but only over the
//!    component's members, with the interface signature baked in as
//!    unit clauses (`In` attacker ⇒ forced `Out`; `Undec` attacker ⇒
//!    the member can no longer be `In`). Complete/stable semantics
//!    enumerate all local labellings; preferred branches only the
//!    *locally maximal* ones — SCC-recursiveness guarantees greedy
//!    local maximality in topological order composes to global
//!    maximality. Distinct `(component, signature)` tasks at one depth
//!    are independent, so they are farmed across the
//!    [`casekit_runtime::Runtime`] and memoized (two branches that
//!    agree on a component's interface share the solve).
//! 5. **Reassemble** — surviving branches *are* the labellings; the
//!    extensions are their `In` sets. Under stable semantics a branch
//!    dies the moment any argument goes `Undec`.
//!
//! Acceptance queries ([`Decomposed::credulous`],
//! [`Decomposed::sceptical_preferred`]) shortcut through the grounded
//! labelling — grounded-`In` arguments are in every complete extension,
//! grounded-`Out` ones in none — and only enumerate labellings of the
//! queried argument's *ancestor cone* (the components that can reach
//! it) when it is genuinely undecided; everything downstream of the
//! query is never solved.
//!
//! # When the decomposed path is selected
//!
//! [`super::Framework`]'s semantics methods route here at or above
//! [`DECOMPOSITION_THRESHOLD`] arguments and keep the monolithic
//! encoding below it, where it doubles as the differential oracle
//! (`tests/properties.rs` cross-checks the two engines set-for-set;
//! `repro af` measures the speedup into `BENCH_af.json`).

use super::{Adjacency, ArgId, Framework, Label};
use crate::prop::intern::Lit;
use crate::prop::solver::Solver;
use casekit_runtime::Runtime;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Argument count at which [`Framework`]'s semantics
/// methods switch from the monolithic SAT encoding to the
/// SCC-decomposed engine. Below it the monolithic path is typically
/// faster (one small encoding beats condensation bookkeeping) and
/// serves as the differential cross-check.
pub const DECOMPOSITION_THRESHOLD: usize = 64;

/// Per-member summary of a component's upstream attackers, ordered so
/// `max` over attackers is the summary: all `Out` (or none) < some
/// `Undec` < some `In`.
const EXT_OUT: u8 = 0;
const EXT_UNDEC: u8 = 1;
const EXT_IN: u8 = 2;

/// Which local labellings a component solve enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// All complete labellings.
    Complete,
    /// Complete labellings with no `Undec` member.
    Stable,
    /// Only the ⊆-maximal (by `In` set) complete labellings.
    Preferred,
}

/// The strongly-connected-component condensation of an attack graph,
/// in topological order.
///
/// Components are numbered attackers-first: for every attack `(a, t)`,
/// `component_of(a) <= component_of(t)`, with equality exactly when
/// both ends share a component. `depth` is the longest path from any
/// source component; components of equal depth have no attacks between
/// them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condensation {
    comp_of: Vec<usize>,
    /// `members[comp_start[c]..comp_start[c + 1]]` belong to `c`,
    /// sorted ascending.
    comp_start: Vec<usize>,
    members: Vec<ArgId>,
    depth: Vec<usize>,
    /// `level_comps[level_start[d]..level_start[d + 1]]` are the
    /// components at depth `d`, ascending.
    level_start: Vec<usize>,
    level_comps: Vec<usize>,
}

impl Condensation {
    /// Condenses `adj` with an iterative Tarjan pass — an explicit
    /// work stack instead of recursion, so a 10^5-node attack chain
    /// cannot overflow the call stack.
    pub fn build(adj: &Adjacency) -> Self {
        const UNVISITED: usize = usize::MAX;
        let n = adj.num_args();
        let mut index = vec![UNVISITED; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<ArgId> = Vec::new();
        // Tarjan emission ids: the first component emitted is a sink of
        // the condensation, so emission order is reverse topological.
        let mut emission = vec![UNVISITED; n];
        let mut emitted = 0usize;
        let mut next_index = 0usize;
        let mut call: Vec<(ArgId, usize)> = Vec::new();
        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            call.push((root, 0));
            while let Some(frame) = call.last_mut() {
                let v = frame.0;
                let targets = adj.targets(v);
                if frame.1 < targets.len() {
                    let w = targets[frame.1];
                    frame.1 += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(parent) = call.last() {
                        low[parent.0] = low[parent.0].min(low[v]);
                    }
                    if low[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("Tarjan stack holds the component");
                            on_stack[w] = false;
                            emission[w] = emitted;
                            if w == v {
                                break;
                            }
                        }
                        emitted += 1;
                    }
                }
            }
        }
        // Reverse the emission order so attackers come first.
        let num_comps = emitted;
        let comp_of: Vec<usize> = emission.iter().map(|&e| num_comps - 1 - e).collect();
        let mut comp_start = vec![0usize; num_comps + 1];
        for &c in &comp_of {
            comp_start[c + 1] += 1;
        }
        for c in 0..num_comps {
            comp_start[c + 1] += comp_start[c];
        }
        let mut members = vec![0 as ArgId; n];
        let mut cursor = comp_start.clone();
        // Ascending argument order in, sorted members per component out.
        for (a, &c) in comp_of.iter().enumerate() {
            members[cursor[c]] = a;
            cursor[c] += 1;
        }
        // Longest-path depth: attackers are upstream, hence already
        // finalized when their target's component comes around.
        let mut depth = vec![0usize; num_comps];
        for c in 0..num_comps {
            for &a in &members[comp_start[c]..comp_start[c + 1]] {
                for &b in adj.attackers(a) {
                    let cb = comp_of[b];
                    if cb != c {
                        depth[c] = depth[c].max(depth[cb] + 1);
                    }
                }
            }
        }
        let num_levels = depth.iter().map(|&d| d + 1).max().unwrap_or(0);
        let mut level_start = vec![0usize; num_levels + 1];
        for &d in &depth {
            level_start[d + 1] += 1;
        }
        for d in 0..num_levels {
            level_start[d + 1] += level_start[d];
        }
        let mut level_comps = vec![0usize; num_comps];
        let mut cursor = level_start.clone();
        for (c, &d) in depth.iter().enumerate() {
            level_comps[cursor[d]] = c;
            cursor[d] += 1;
        }
        Condensation {
            comp_of,
            comp_start,
            members,
            depth,
            level_start,
            level_comps,
        }
    }

    /// Number of arguments the condensation covers.
    pub fn num_args(&self) -> usize {
        self.comp_of.len()
    }

    /// Number of strongly connected components.
    pub fn num_components(&self) -> usize {
        self.comp_start.len() - 1
    }

    /// Number of depth levels (0 for an empty framework).
    pub fn num_levels(&self) -> usize {
        self.level_start.len() - 1
    }

    /// The component containing argument `id`.
    pub fn component_of(&self, id: ArgId) -> usize {
        self.comp_of[id]
    }

    /// The arguments of component `c`, sorted ascending.
    pub fn members(&self, c: usize) -> &[ArgId] {
        &self.members[self.comp_start[c]..self.comp_start[c + 1]]
    }

    /// The longest-path depth of component `c` in the condensation.
    pub fn depth(&self, c: usize) -> usize {
        self.depth[c]
    }

    /// The components at depth `d`, ascending. They have no attacks
    /// between them, so they are independent given shallower labels.
    pub fn level(&self, d: usize) -> &[usize] {
        &self.level_comps[self.level_start[d]..self.level_start[d + 1]]
    }

    /// Size of the largest component (0 for an empty framework) — the
    /// knob that decides whether decomposition can win: per-component
    /// SAT cost is driven by this, not by the framework size.
    pub fn largest_component(&self) -> usize {
        (0..self.num_components())
            .map(|c| self.members(c).len())
            .max()
            .unwrap_or(0)
    }
}

/// The SCC-decomposed semantics engine over one framework.
///
/// Build once ([`Decomposed::new`] / [`Decomposed::with_runtime`]) and
/// ask any number of questions; the condensation and the grounded
/// labelling are computed up front, every query walks the condensation
/// from there. See the [module docs](self) for the pipeline.
#[derive(Debug)]
pub struct Decomposed {
    adj: Adjacency,
    cond: Condensation,
    grounded: Vec<Label>,
    runtime: Runtime,
    n: usize,
}

impl Decomposed {
    /// Builds the decomposed engine with the environment-configured
    /// work farm ([`Runtime::from_env`]).
    pub fn new(af: &Framework) -> Self {
        Self::with_runtime(af, Runtime::from_env())
    }

    /// Builds the decomposed engine over an explicit [`Runtime`].
    pub fn with_runtime(af: &Framework, runtime: Runtime) -> Self {
        let adj = af.adjacency();
        let cond = Condensation::build(&adj);
        let grounded = adj.grounded_labels();
        let n = af.len();
        Decomposed {
            adj,
            cond,
            grounded,
            runtime,
            n,
        }
    }

    /// The condensation the engine walks.
    pub fn condensation(&self) -> &Condensation {
        &self.cond
    }

    /// The grounded extension (shared with the monolithic path: the
    /// O(V+E) worklist fixpoint needs no decomposition to scale).
    pub fn grounded_extension(&self) -> BTreeSet<ArgId> {
        in_set(&self.grounded)
    }

    /// All complete extensions, reassembled from per-component
    /// labellings.
    pub fn complete_extensions(&self) -> Vec<BTreeSet<ArgId>> {
        self.labellings(Mode::Complete, None)
            .iter()
            .map(|l| in_set(l))
            .collect()
    }

    /// The stable extensions (possibly none: a branch dies the moment
    /// any argument goes undecided).
    pub fn stable_extensions(&self) -> Vec<BTreeSet<ArgId>> {
        self.labellings(Mode::Stable, None)
            .iter()
            .map(|l| in_set(l))
            .collect()
    }

    /// The preferred extensions: at every component only the locally
    /// ⊆-maximal labellings are branched, which SCC-recursiveness
    /// composes into exactly the globally maximal complete extensions.
    pub fn preferred_extensions(&self) -> Vec<BTreeSet<ArgId>> {
        self.labellings(Mode::Preferred, None)
            .iter()
            .map(|l| in_set(l))
            .collect()
    }

    /// Whether `id` is in some complete (equivalently, some preferred)
    /// extension. Grounded-`In` arguments are credulously accepted and
    /// grounded-`Out` ones are not, with no enumeration at all; only a
    /// grounded-`Undec` argument walks its ancestor cone.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (this engine mirrors the
    /// low-level [`AfSat`](super::encode::AfSat) contract;
    /// [`Framework::credulously_accepted`] is the `Result` wrapper).
    pub fn credulous(&self, id: ArgId) -> bool {
        assert!(
            id < self.n,
            "argument id {id} is out of range for a framework of {} argument(s)",
            self.n
        );
        match self.grounded[id] {
            Label::In => true,
            Label::Out => false,
            Label::Undec => {
                let cone = self.ancestor_cone(self.cond.component_of(id));
                self.labellings(Mode::Preferred, Some(&cone))
                    .iter()
                    .any(|l| l[id] == Label::In)
            }
        }
    }

    /// Whether `id` is in *every* preferred extension. The grounded
    /// shortcut answers both poles (grounded arguments are in every
    /// complete extension; arguments they defeat are in none); only a
    /// grounded-`Undec` argument enumerates its ancestor cone's
    /// preferred labellings.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (see [`Decomposed::credulous`]).
    pub fn sceptical_preferred(&self, id: ArgId) -> bool {
        assert!(
            id < self.n,
            "argument id {id} is out of range for a framework of {} argument(s)",
            self.n
        );
        match self.grounded[id] {
            Label::In => true,
            Label::Out => false,
            Label::Undec => {
                let cone = self.ancestor_cone(self.cond.component_of(id));
                self.labellings(Mode::Preferred, Some(&cone))
                    .iter()
                    .all(|l| l[id] == Label::In)
            }
        }
    }

    /// The components that can reach `c0` (including `c0` itself):
    /// everything whose labels the semantics of `c0`'s members can
    /// depend on. Reverse reachability over attacker edges.
    fn ancestor_cone(&self, c0: usize) -> Vec<bool> {
        let mut in_cone = vec![false; self.cond.num_components()];
        in_cone[c0] = true;
        let mut work = vec![c0];
        while let Some(c) = work.pop() {
            for &a in self.cond.members(c) {
                for &b in self.adj.attackers(a) {
                    let cb = self.cond.component_of(b);
                    if !in_cone[cb] {
                        in_cone[cb] = true;
                        work.push(cb);
                    }
                }
            }
        }
        in_cone
    }

    /// The engine core: walks the condensation depth by depth carrying
    /// every labelling branch, and returns the complete labellings
    /// (restricted to `cone`'s components if given; everything outside
    /// the cone stays `Undec` and is never solved).
    fn labellings(&self, mode: Mode, cone: Option<&[bool]>) -> Vec<Vec<Label>> {
        let mut memo: HashMap<(usize, Vec<u8>), Vec<Vec<Label>>> = HashMap::new();
        let mut branches: Vec<Vec<Label>> = vec![vec![Label::Undec; self.n]];
        for d in 0..self.cond.num_levels() {
            let mut singles: Vec<usize> = Vec::new();
            let mut compound: Vec<usize> = Vec::new();
            for &c in self.cond.level(d) {
                if cone.is_some_and(|m| !m[c]) {
                    continue;
                }
                if self.cond.members(c).len() == 1 {
                    singles.push(c);
                } else {
                    compound.push(c);
                }
            }
            if singles.is_empty() && compound.is_empty() {
                continue;
            }
            // Farm every distinct (component, interface) SAT task at
            // this depth in one parallel batch. Branch order fixes the
            // task order, so results are worker-count deterministic.
            if !compound.is_empty() {
                let mut queued: HashSet<(usize, Vec<u8>)> = HashSet::new();
                let mut tasks: Vec<(usize, Vec<u8>)> = Vec::new();
                for branch in &branches {
                    for &c in &compound {
                        let key = (c, self.signature(branch, c));
                        if !memo.contains_key(&key) && queued.insert(key.clone()) {
                            tasks.push(key);
                        }
                    }
                }
                let solved = self
                    .runtime
                    .map(&tasks, |_, (c, sig)| self.solve_component(*c, sig, mode));
                for (key, labellings) in tasks.into_iter().zip(solved) {
                    memo.insert(key, labellings);
                }
            }
            let mut next: Vec<Vec<Label>> = Vec::new();
            'branch: for mut branch in std::mem::take(&mut branches) {
                // Interface signatures only depend on shallower depths,
                // so they are fixed before any same-depth writes.
                let signatures: Vec<Vec<u8>> = compound
                    .iter()
                    .map(|&c| self.signature(&branch, c))
                    .collect();
                // Singleton components: direct propagation, farmed as
                // one parallel pass per branch.
                if !singles.is_empty() {
                    let labels = self
                        .runtime
                        .map(&singles, |_, &c| self.propagate_singleton(&branch, c));
                    for (&c, &label) in singles.iter().zip(&labels) {
                        if mode == Mode::Stable && label == Label::Undec {
                            continue 'branch;
                        }
                        branch[self.cond.members(c)[0]] = label;
                    }
                }
                // Non-trivial components: cross-product of the local
                // labellings each component admits under this branch.
                let mut partials = vec![branch];
                for (&c, sig) in compound.iter().zip(&signatures) {
                    let locals = &memo[&(c, sig.clone())];
                    if locals.is_empty() {
                        // Only stable solves can come back empty.
                        continue 'branch;
                    }
                    if locals.len() == 1 {
                        for p in &mut partials {
                            self.write_local(p, c, &locals[0]);
                        }
                    } else {
                        let mut grown = Vec::with_capacity(partials.len() * locals.len());
                        for p in partials {
                            for local in locals {
                                let mut q = p.clone();
                                self.write_local(&mut q, c, local);
                                grown.push(q);
                            }
                        }
                        partials = grown;
                    }
                }
                next.extend(partials);
            }
            branches = next;
        }
        branches
    }

    /// Writes a component's local labelling into a branch.
    fn write_local(&self, branch: &mut [Label], c: usize, local: &[Label]) {
        for (&a, &label) in self.cond.members(c).iter().zip(local) {
            branch[a] = label;
        }
    }

    /// The interface signature of component `c` under `branch`: per
    /// member, the strongest label among its external (upstream)
    /// attackers.
    fn signature(&self, branch: &[Label], c: usize) -> Vec<u8> {
        self.cond
            .members(c)
            .iter()
            .map(|&a| {
                let mut summary = EXT_OUT;
                for &b in self.adj.attackers(a) {
                    if self.cond.component_of(b) == c {
                        continue;
                    }
                    match branch[b] {
                        Label::In => {
                            summary = EXT_IN;
                            break;
                        }
                        Label::Undec => summary = EXT_UNDEC,
                        Label::Out => {}
                    }
                }
                summary
            })
            .collect()
    }

    /// Labels a singleton component under `branch` without SAT: an
    /// `In` external attacker defeats it; all-`Out` externals (or no
    /// attackers) accept it; otherwise — an `Undec` external, or a
    /// self-loop — it stays `Undec`. (Under stable semantics the
    /// caller kills the branch on `Undec`.)
    fn propagate_singleton(&self, branch: &[Label], c: usize) -> Label {
        let a = self.cond.members(c)[0];
        let mut self_loop = false;
        let mut summary = EXT_OUT;
        for &b in self.adj.attackers(a) {
            if b == a {
                self_loop = true;
                continue;
            }
            match branch[b] {
                Label::In => {
                    summary = EXT_IN;
                    break;
                }
                Label::Undec => summary = EXT_UNDEC,
                Label::Out => {}
            }
        }
        if summary == EXT_IN {
            Label::Out
        } else if self_loop || summary == EXT_UNDEC {
            Label::Undec
        } else {
            Label::In
        }
    }

    /// Solves one non-trivial component: the monolithic labelling
    /// clauses restricted to the component's members, with the
    /// interface signature baked in as units (`EXT_IN` ⇒ forced out;
    /// `EXT_UNDEC` ⇒ the member cannot be in, and the all-attackers-out
    /// completion clause is dropped because an undecided attacker is
    /// not out). Returns every local labelling the mode admits.
    fn solve_component(&self, c: usize, sig: &[u8], mode: Mode) -> Vec<Vec<Label>> {
        let members = self.cond.members(c);
        let m = members.len();
        let local_of: HashMap<ArgId, usize> =
            members.iter().enumerate().map(|(i, &a)| (a, i)).collect();
        let internal: Vec<Vec<usize>> = members
            .iter()
            .map(|&a| {
                self.adj
                    .attackers(a)
                    .iter()
                    .filter_map(|b| local_of.get(b).copied())
                    .collect()
            })
            .collect();
        let mut solver = Solver::new();
        let in_l: Vec<Lit> = (0..m).map(|_| solver.new_var().positive()).collect();
        let out_l: Vec<Lit> = (0..m).map(|_| solver.new_var().positive()).collect();
        let mut clause: Vec<Lit> = Vec::new();
        for i in 0..m {
            solver.add_clause(&[!in_l[i], !out_l[i]]);
            if mode == Mode::Stable {
                solver.add_clause(&[in_l[i], out_l[i]]);
            }
            if sig[i] == EXT_IN {
                solver.add_clause(&[out_l[i]]);
                solver.add_clause(&[!in_l[i]]);
                continue;
            }
            for &j in &internal[i] {
                solver.add_clause(&[!in_l[i], out_l[j]]);
                // Attacker in → i out. Without this direction the
                // solver may leave out_i false next to an In attacker,
                // and the completion clause of whatever i attacks
                // would read a label that is not complete.
                solver.add_clause(&[!in_l[j], out_l[i]]);
            }
            // out_i → some internal attacker in (no external is In).
            clause.clear();
            clause.push(!out_l[i]);
            clause.extend(internal[i].iter().map(|&j| in_l[j]));
            solver.add_clause(&clause);
            if sig[i] == EXT_UNDEC {
                solver.add_clause(&[!in_l[i]]);
            } else {
                // All attackers out → in_i (externals already are).
                clause.clear();
                clause.push(in_l[i]);
                clause.extend(internal[i].iter().map(|&j| !out_l[j]));
                solver.add_clause(&clause);
            }
        }
        // Out labels are a function of the in set (plus the fixed
        // interface), so blocking and reading the in set is enough.
        let labelling = |in_set: &[bool]| -> Vec<Label> {
            (0..m)
                .map(|i| {
                    if in_set[i] {
                        Label::In
                    } else if sig[i] == EXT_IN || internal[i].iter().any(|&j| in_set[j]) {
                        Label::Out
                    } else {
                        Label::Undec
                    }
                })
                .collect()
        };
        let read_in_set = |solver: &Solver| -> Vec<bool> {
            in_l.iter()
                .map(|&l| solver.value(l) == Some(true))
                .collect()
        };
        let mut found = Vec::new();
        match mode {
            Mode::Complete | Mode::Stable => {
                while solver.check() {
                    let in_set = read_in_set(&solver);
                    let block: Vec<Lit> = (0..m)
                        .map(|i| if in_set[i] { !in_l[i] } else { in_l[i] })
                        .collect();
                    solver.add_clause(&block);
                    found.push(labelling(&in_set));
                }
            }
            Mode::Preferred => {
                // The same maximality loop as AfSat::for_each_preferred,
                // on the component-local encoding.
                let selector = solver.new_var().positive();
                loop {
                    solver.retract_all();
                    solver.assume(selector);
                    if !solver.check() {
                        break;
                    }
                    let mut in_set = read_in_set(&solver);
                    loop {
                        let grow = solver.new_var().positive();
                        let mut grow_clause = vec![!grow];
                        grow_clause.extend((0..m).filter(|&i| !in_set[i]).map(|i| in_l[i]));
                        solver.add_clause(&grow_clause);
                        solver.retract_all();
                        solver.assume(selector);
                        for i in (0..m).filter(|&i| in_set[i]) {
                            solver.assume(in_l[i]);
                        }
                        solver.assume(grow);
                        if solver.check() {
                            in_set = read_in_set(&solver);
                        } else {
                            break;
                        }
                    }
                    solver.retract_all();
                    let mut block = vec![!selector];
                    block.extend((0..m).filter(|&i| !in_set[i]).map(|i| in_l[i]));
                    solver.add_clause(&block);
                    found.push(labelling(&in_set));
                }
            }
        }
        found
    }
}

/// The `In` set of a labelling.
fn in_set(labels: &[Label]) -> BTreeSet<ArgId> {
    labels
        .iter()
        .enumerate()
        .filter(|(_, l)| **l == Label::In)
        .map(|(a, _)| a)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::encode::AfSat;
    use super::*;

    fn framework(n: usize, attacks: &[(ArgId, ArgId)]) -> Framework {
        let mut af = Framework::new();
        for i in 0..n {
            af.add_argument(format!("a{i}"));
        }
        for &(a, t) in attacks {
            af.add_attack(a, t).unwrap();
        }
        af
    }

    fn as_set(extensions: Vec<BTreeSet<ArgId>>) -> BTreeSet<BTreeSet<ArgId>> {
        extensions.into_iter().collect()
    }

    /// A mutual pair feeding a chain feeding a 3-cycle feeding a sink:
    /// four kinds of component in one framework.
    fn multi_scc() -> Framework {
        framework(
            8,
            &[
                (0, 1),
                (1, 0), // mutual pair
                (1, 2),
                (2, 3), // chain
                (4, 5),
                (5, 6),
                (6, 4), // odd cycle
                (3, 7),
                (6, 7), // sink attacked by both
            ],
        )
    }

    #[test]
    fn condensation_orders_attackers_first() {
        let af = multi_scc();
        let adj = af.adjacency();
        let cond = Condensation::build(&adj);
        assert_eq!(cond.num_args(), 8);
        // {0,1}, {2}, {3}, {4,5,6}, {7}.
        assert_eq!(cond.num_components(), 5);
        assert_eq!(cond.largest_component(), 3);
        assert_eq!(cond.component_of(0), cond.component_of(1));
        assert_eq!(cond.component_of(4), cond.component_of(6));
        for &(a, t) in &[(0usize, 1usize), (1, 2), (2, 3), (3, 7), (6, 7)] {
            assert!(
                cond.component_of(a) <= cond.component_of(t),
                "edge {a}->{t} goes backwards"
            );
        }
        // Depths: pair and cycle are sources; 2, 3, 7 hang below.
        let d = |id: ArgId| cond.depth(cond.component_of(id));
        assert_eq!(d(0), 0);
        assert_eq!(d(4), 0);
        assert_eq!(d(2), 1);
        assert_eq!(d(3), 2);
        assert_eq!(d(7), 3);
        assert_eq!(cond.num_levels(), 4);
        // Members cover every argument exactly once.
        let mut covered = [0usize; 8];
        for c in 0..cond.num_components() {
            assert_eq!(
                cond.level(cond.depth(c))
                    .iter()
                    .filter(|&&x| x == c)
                    .count(),
                1
            );
            for &a in cond.members(c) {
                covered[a] += 1;
            }
        }
        assert!(covered.iter().all(|&k| k == 1));
    }

    #[test]
    fn condensation_of_a_single_cycle_is_one_component() {
        let af = framework(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let cond = Condensation::build(&af.adjacency());
        assert_eq!(cond.num_components(), 1);
        assert_eq!(cond.members(0), &[0, 1, 2, 3, 4]);
        assert_eq!(cond.num_levels(), 1);
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        // 50k-argument chain: recursion would die here; the iterative
        // Tarjan and the worklist propagation must not.
        let n = 50_000;
        let mut af = Framework::new();
        for i in 0..n {
            af.add_argument(format!("c{i}"));
        }
        for i in 1..n {
            af.add_attack(i - 1, i).unwrap();
        }
        let dec = Decomposed::with_runtime(&af, Runtime::with_workers(2));
        assert_eq!(dec.condensation().num_components(), n);
        assert_eq!(dec.condensation().num_levels(), n);
        let preferred = dec.preferred_extensions();
        assert_eq!(preferred.len(), 1);
        // Alternating labels down the chain.
        assert_eq!(preferred[0], dec.grounded_extension());
        assert_eq!(preferred[0].len(), n.div_ceil(2));
    }

    #[test]
    fn decomposed_agrees_with_monolithic_on_assorted_shapes() {
        let shapes: Vec<(usize, Vec<(ArgId, ArgId)>)> = vec![
            (0, vec![]),
            (1, vec![]),
            (1, vec![(0, 0)]),
            (2, vec![(0, 1), (1, 0)]),
            (3, vec![(0, 1), (1, 2), (2, 0)]),
            (3, vec![(0, 1), (1, 0), (0, 2), (1, 2)]),
            (4, vec![(0, 1), (1, 0), (2, 3), (3, 2)]),
            (5, vec![(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 2)]),
            (
                6,
                vec![(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 5), (5, 3)],
            ),
            // Undec flowing into a pair: exercises EXT_UNDEC interfaces.
            (4, vec![(0, 0), (0, 1), (1, 2), (2, 1), (2, 3)]),
            // Regression: a compound component where the extra complete
            // labelling {7} once slipped through because the local
            // encoding lacked the attacker-in → target-out direction —
            // out_6 could stay false beside in_7, letting 3 dodge its
            // completion clause and hang Undec.
            (
                8,
                vec![
                    (2, 0),
                    (7, 0),
                    (4, 1),
                    (1, 2),
                    (2, 2),
                    (3, 2),
                    (6, 3),
                    (2, 5),
                    (4, 5),
                    (5, 5),
                    (0, 6),
                    (7, 6),
                    (1, 7),
                    (5, 7),
                ],
            ),
        ];
        for (n, attacks) in shapes {
            let af = framework(n, &attacks);
            let dec = Decomposed::with_runtime(&af, Runtime::with_workers(3));
            let mut sat = AfSat::complete(&af);
            assert_eq!(
                as_set(dec.complete_extensions()),
                as_set(sat.extensions(None)),
                "complete disagrees on {attacks:?}"
            );
            assert_eq!(
                as_set(dec.preferred_extensions()),
                as_set(sat.preferred()),
                "preferred disagrees on {attacks:?}"
            );
            assert_eq!(
                as_set(dec.stable_extensions()),
                as_set(AfSat::stable(&af).extensions(None)),
                "stable disagrees on {attacks:?}"
            );
            for id in 0..n {
                assert_eq!(
                    dec.credulous(id),
                    sat.credulous(id),
                    "credulous disagrees on {attacks:?} id {id}"
                );
                assert_eq!(
                    dec.sceptical_preferred(id),
                    sat.sceptical_preferred(id),
                    "sceptical disagrees on {attacks:?} id {id}"
                );
            }
        }
    }

    #[test]
    fn multi_scc_instance_reassembles_every_semantics() {
        let af = multi_scc();
        let dec = Decomposed::with_runtime(&af, Runtime::with_workers(2));
        let mut sat = AfSat::complete(&af);
        assert_eq!(
            as_set(dec.complete_extensions()),
            as_set(sat.extensions(None))
        );
        assert_eq!(as_set(dec.preferred_extensions()), as_set(sat.preferred()));
        // The odd cycle hangs undecided in every labelling, so no
        // stable extension exists despite the pair's two options.
        assert!(dec.stable_extensions().is_empty());
        assert_eq!(dec.preferred_extensions().len(), 2);
    }

    #[test]
    fn framework_api_routes_large_instances_through_the_decomposition() {
        // A mutual pair gating a long alternating chain, sized past the
        // routing threshold: the decomposed path must agree with a
        // monolithic encoding built directly.
        let n = 2 * DECOMPOSITION_THRESHOLD;
        let mut af = Framework::new();
        for i in 0..n {
            af.add_argument(format!("a{i}"));
        }
        af.add_attack(0, 1).unwrap();
        af.add_attack(1, 0).unwrap();
        af.add_attack(1, 2).unwrap();
        for i in 3..n {
            af.add_attack(i - 1, i).unwrap();
        }
        assert!(af.len() >= DECOMPOSITION_THRESHOLD);
        let preferred = af.preferred_extensions();
        assert_eq!(
            as_set(preferred.clone()),
            as_set(AfSat::complete(&af).preferred())
        );
        assert_eq!(preferred.len(), 2);
        assert_eq!(
            as_set(af.stable_extensions()),
            as_set(AfSat::stable(&af).extensions(None))
        );
        assert!(af.credulously_accepted(0).unwrap());
        assert!(!af.sceptically_accepted_preferred(0).unwrap());
        // Grounded-shortcut poles inside the chain.
        assert!(af.credulously_accepted(2).unwrap());
    }

    #[test]
    fn acceptance_only_walks_the_ancestor_cone() {
        // query argument 3's cone excludes the independent pair {4,5}:
        // the answer must not depend on branches it never enumerates.
        let af = framework(6, &[(0, 1), (1, 0), (1, 2), (2, 3), (4, 5), (5, 4)]);
        let dec = Decomposed::with_runtime(&af, Runtime::serial());
        let cone = dec.ancestor_cone(dec.condensation().component_of(3));
        let c45 = dec.condensation().component_of(4);
        assert!(!cone[c45], "independent pair leaked into the cone");
        assert!(dec.credulous(3));
        assert!(!dec.sceptical_preferred(3));
    }

    #[test]
    fn worker_count_is_unobservable_in_decomposed_results() {
        let af = multi_scc();
        let serial = Decomposed::with_runtime(&af, Runtime::serial());
        for workers in [2, 4, 8] {
            let parallel = Decomposed::with_runtime(&af, Runtime::with_workers(workers));
            assert_eq!(
                serial.preferred_extensions(),
                parallel.preferred_extensions(),
                "workers = {workers}"
            );
            assert_eq!(
                serial.complete_extensions(),
                parallel.complete_extensions(),
                "workers = {workers}"
            );
        }
    }
}
