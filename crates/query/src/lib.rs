//! # casekit-query
//!
//! Metadata annotation and structured querying over assurance arguments,
//! implementing Denney, Naylor & Pai's proposal (Graydon §III-H): nodes are
//! "semantically enriched" with typed attributes drawn from a
//! user-defined [`Ontology`], and readers pose structured queries such as
//!
//! ```text
//! select goals where hazard.severity = catastrophic and hazard.likelihood = remote
//! ```
//!
//! — the paper's own example of "traceability to only those hazards whose
//! likelihood of occurrence is remote, and whose severity is catastrophic".
//!
//! The crate also extracts *traceability views*: the sub-argument
//! containing the matching nodes and every ancestor up to the root, which
//! is what a reviewer actually looks at.
//!
//! ```
//! use casekit_core::dsl::parse_argument;
//! use casekit_query::{AnnotationStore, Ontology, FieldType, parse_query};
//!
//! let arg = parse_argument(r#"
//!     argument "haz" {
//!       goal g1 "All hazards mitigated" {
//!         goal g2 "Fire mitigated" { solution e1 "extinguisher test" }
//!       }
//!     }
//! "#).unwrap();
//!
//! let mut ontology = Ontology::new();
//! ontology.declare_enum("severity", ["catastrophic", "major", "minor"]);
//! ontology.declare_attribute("hazard", [("severity", FieldType::Enum("severity".into()))]);
//!
//! let mut store = AnnotationStore::new(ontology);
//! store.annotate(&arg, "g2", "hazard", [("severity", "catastrophic")]).unwrap();
//!
//! let q = parse_query("select goals where hazard.severity = catastrophic").unwrap();
//! let hits = q.run(&arg, &store);
//! assert_eq!(hits.len(), 1);
//! ```

#![forbid(unsafe_code)]

mod annotation;
mod ontology;
mod query;
mod view;

pub use annotation::{AnnotationError, AnnotationStore, FieldValue};
pub use ontology::{FieldType, Ontology};
pub use query::{parse_query, Condition, Op, Query, Selector};
pub use view::traceability_view;
