//! CaseLint benchmark harness: the full lint-pass set over a synthetic
//! corpus of `.case` sources, measured parse-and-compile-once against
//! one-tool-per-lint.
//!
//! The naive arm is [`naive_lint_corpus`]: a serial loop over
//! [`casekit_analysis::baseline::lint_source_recompiling`], which runs
//! every check as its own standalone tool — each of the fifteen tools
//! re-parses the case text, and each solver-backed tool pays a fresh
//! Tseitin compilation (thirteen per fully-formal argument). That is
//! the access pattern of pointing fifteen separate command-line
//! checkers at one file. The engine arm is
//! [`casekit_analysis::lint_sources`]: one parse and one compilation
//! per argument, every pass an assume/check/retract round on that
//! session (with a witness pool reusing models across questions),
//! sharded across `casekit-runtime` workers.
//!
//! `bench_lint_json` emits the comparison as `BENCH_lint.json` (via
//! `repro lint`), with the diagnostic streams of every engine and every
//! worker count checked identical (`diagnostics_agree`) — determinism
//! measured, not assumed. `speedup` is naive/parallel;
//! `thread_speedup` isolates the worker contribution (≈1.0 on a
//! single-core host, where compile-once supplies the whole win).

use casekit_analysis::{baseline, lint_sources, Diagnostic, LintConfig};
use casekit_runtime::Runtime;
use serde::Serialize;
use std::fmt::Write as _;

/// Corpus shape: `arguments` synthetic cases, each with `premises`
/// formalised premise goals whose payloads are implication chains of
/// `width` links.
#[derive(Debug, Clone)]
pub struct LintBenchConfig {
    /// Number of arguments in the corpus.
    pub arguments: usize,
    /// Formalised premise goals per argument (≥ 3).
    pub premises: usize,
    /// Implication-chain links per premise formula.
    pub width: usize,
}

/// The full-scale corpus behind the committed `BENCH_lint.json`.
pub fn scaled_config() -> LintBenchConfig {
    LintBenchConfig {
        arguments: 120,
        premises: 5,
        width: 16,
    }
}

/// The CI smoke corpus (`repro lint --smoke`): small enough to finish
/// in seconds, large enough that the compile-once ratio is stable.
pub fn smoke_config() -> LintBenchConfig {
    LintBenchConfig {
        arguments: 30,
        premises: 3,
        width: 18,
    }
}

/// Atom `j` of premise `i`'s chain. Descriptive names, as real
/// formalised cases carry ("`hazard_h7_mitigation_verified`", not
/// "`p3`"): the frontend pays to lex and intern them, which is exactly
/// the cost a parse-once engine amortises.
pub(crate) fn atom(i: usize, j: usize) -> String {
    format!(
        "independent_verification_activity_for_subsystem_component_{i}_confirms_the_stage_{j}_safety_requirement_allocation"
    )
}

/// Formula text for premise `i`: an asserted atom pushed through a
/// `width`-link implication chain, `a{i}_0 & (a{i}_0 -> a{i}_1) & …`.
/// Chains of distinct premises share no atoms, so every premise except
/// the deliberately redundant last one is critical to the conclusion.
pub(crate) fn premise_src(i: usize, width: usize) -> String {
    let mut src = atom(i, 0);
    for j in 0..width {
        let _ = write!(src, " & ({} -> {})", atom(i, j), atom(i, j + 1));
    }
    src
}

/// Builds the synthetic corpus as `.case` source text. Every argument
/// is a goal ⟦conjunction of chain heads⟧ over a strategy over
/// `premises` formalised premise goals (each resting on its own
/// solution), with the last premise redundant by construction. On top
/// of that base, argument `k` carries the defect class `k % 6`: nothing
/// extra, duplicate evidence, a detached support cycle, an undeveloped
/// gap plus a shadowed context, a contradictory premise pair, or a
/// quantifier mismatch — so the sweep exercises every pass, structural
/// and logical, at corpus scale.
pub fn lint_corpus(config: &LintBenchConfig) -> Vec<String> {
    assert!(config.premises >= 3, "at least three premises");
    (0..config.arguments)
        .map(|k| {
            let n = config.premises;
            let w = config.width;
            // Conclusion: the chain ends of all premises but the last.
            let conclusion = (0..n - 1)
                .map(|i| atom(i, w))
                .collect::<Vec<_>>()
                .join(" & ");
            let mut src = format!("argument \"case-{k}\" {{\n");
            let _ = writeln!(src, "  goal g0 \"top-level claim\" formal \"{conclusion}\" {{");
            if k % 6 == 3 {
                src.push_str("    context c1 \"Operating envelope\"\n");
            }
            src.push_str("    strategy s0 \"argue over premise chains\" {\n");
            for i in 0..n {
                let _ = writeln!(
                    src,
                    "      goal p{i} \"premise {i}\" formal \"{}\" {{",
                    premise_src(i, w)
                );
                if i == 0 && k % 6 == 3 {
                    src.push_str("        context c2 \"operating  envelope\"\n");
                }
                let _ = writeln!(src, "        solution e{i} \"analysis report {i}\"");
                if i == 0 && k % 6 == 1 {
                    // Two more solutions under p0 with the same text.
                    src.push_str("        solution d1 \"Stress test log\"\n");
                    src.push_str("        solution d2 \"stress  test log\"\n");
                }
                src.push_str("      }\n");
            }
            match k % 6 {
                3 => {
                    // An implicit gap alongside the shadowed context.
                    src.push_str("      goal u1 \"unargued side claim\"\n");
                }
                4 => {
                    // A contradictory premise pair (inconsistency + the
                    // incompatible-premises fallacy; redundancy gates off).
                    src.push_str(
                        "      goal q1 \"asserts q\" formal \"q\" { solution eq1 \"report for q\" }\n",
                    );
                    src.push_str(
                        "      goal q2 \"denies q\" formal \"~q\" { solution eq2 \"report against q\" }\n",
                    );
                }
                _ => {}
            }
            src.push_str("    }\n");
            if k % 6 == 5 {
                // A universal claim resting on sampled evidence.
                src.push_str("    goal a1 \"All inputs are validated\" {\n");
                src.push_str("      solution ea1 \"spot checks on some inputs\"\n");
                src.push_str("    }\n");
            }
            src.push_str("  }\n");
            if k % 6 == 2 {
                // A two-node support cycle: the back-reference gives the
                // top-level node a parent, detaching the pair from every
                // root (unreachable *and* cyclic).
                src.push_str("  goal x1 \"orbiting claim a\" {\n");
                src.push_str("    goal x2 \"orbiting claim b\" { ref x1 }\n");
                src.push_str("  }\n");
            }
            src.push_str("}\n");
            src
        })
        .collect()
}

/// The naive arm: a serial loop, each case linted the
/// one-tool-per-lint way (fifteen parses, thirteen compilations).
pub fn naive_lint_corpus(sources: &[String], config: &LintConfig) -> Vec<Vec<Diagnostic>> {
    sources
        .iter()
        .map(|src| baseline::lint_source_recompiling(src, config).expect("generated corpus parses"))
        .collect()
}

/// The engine arm: parse once, compile once, sweep across workers.
fn engine_lint_corpus(
    sources: &[String],
    config: &LintConfig,
    runtime: &Runtime,
) -> Vec<Vec<Diagnostic>> {
    lint_sources(sources, config, runtime).expect("generated corpus parses")
}

/// The measured comparison, serialized into `BENCH_lint.json`.
#[derive(Debug, Clone, Serialize)]
pub struct LintBenchReport {
    /// Arguments in the corpus.
    pub arguments: usize,
    /// Formalised premises per argument.
    pub premises_per_argument: usize,
    /// Implication-chain links per premise formula.
    pub chain_width: usize,
    /// Total `.case` source bytes linted.
    pub source_bytes: usize,
    /// Total diagnostics the engine emitted over the corpus.
    pub diagnostics: usize,
    /// Worker threads used for the parallel run.
    pub workers: usize,
    /// Cores the host exposed during the measurement (bounds
    /// `thread_speedup`).
    pub host_parallelism: usize,
    /// Naive loop (serial, one parse per tool and one compilation per
    /// solver-backed tool), milliseconds, best of several runs.
    pub naive_ms: f64,
    /// Parse-and-compile-once sweep with one worker, milliseconds, best
    /// of several runs.
    pub serial_ms: f64,
    /// Parse-and-compile-once sweep with the full worker count,
    /// milliseconds, best of several runs.
    pub parallel_ms: f64,
    /// naive / parallel — the end-to-end win of the engine.
    pub speedup: f64,
    /// serial / parallel — the worker contribution alone.
    pub thread_speedup: f64,
    /// Sanity: naive, serial, and every measured worker count produced
    /// byte-identical diagnostic streams.
    pub diagnostics_agree: bool,
}

/// Runs the comparison on the full-scale corpus.
pub fn run_lint_bench(workers: usize) -> LintBenchReport {
    run_lint_bench_with(&scaled_config(), workers)
}

/// Runs the comparison on an explicit corpus shape (the smoke gate
/// passes [`smoke_config`]).
pub fn run_lint_bench_with(config: &LintBenchConfig, workers: usize) -> LintBenchReport {
    let sources = lint_corpus(config);
    let lint_config = LintConfig::new();

    let (naive_ms, naive_diags) =
        crate::best_of_ms(3, || naive_lint_corpus(&sources, &lint_config));
    let serial_runtime = Runtime::serial();
    let (serial_ms, serial_diags) = crate::best_of_ms(3, || {
        engine_lint_corpus(&sources, &lint_config, &serial_runtime)
    });
    let runtime = Runtime::with_workers(workers);
    let (parallel_ms, parallel_diags) =
        crate::best_of_ms(3, || engine_lint_corpus(&sources, &lint_config, &runtime));

    // Stream-equality across engines and an unmeasured worker count.
    let halfway = engine_lint_corpus(&sources, &lint_config, &Runtime::with_workers(2));
    let diagnostics_agree =
        naive_diags == serial_diags && serial_diags == parallel_diags && serial_diags == halfway;

    LintBenchReport {
        arguments: sources.len(),
        premises_per_argument: config.premises,
        chain_width: config.width,
        source_bytes: sources.iter().map(String::len).sum(),
        diagnostics: serial_diags.iter().map(Vec::len).sum(),
        workers: runtime.workers,
        host_parallelism: Runtime::host_parallelism(),
        naive_ms,
        serial_ms,
        parallel_ms,
        speedup: naive_ms / parallel_ms.max(1e-9),
        thread_speedup: serial_ms / parallel_ms.max(1e-9),
        diagnostics_agree,
    }
}

/// Renders the report as JSON (the `BENCH_lint.json` artifact).
pub fn bench_lint_json(report: &LintBenchReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

/// Human-readable summary for the repro binary.
pub fn render_report(report: &LintBenchReport) -> String {
    format!(
        "caselint over {} cases ({} premises x {}-link chains, {} KiB, {} diagnostics)\n\
           naive (one tool per lint, serial):        {:>10.3} ms\n\
           engine, 1 worker (parse+compile once):    {:>10.3} ms\n\
           engine, {} workers ({} cores):            {:>10.3} ms\n\
           speedup: {:.1}x (threads alone: {:.2}x)   diagnostics agree: {}\n",
        report.arguments,
        report.premises_per_argument,
        report.chain_width,
        report.source_bytes / 1024,
        report.diagnostics,
        report.naive_ms,
        report.serial_ms,
        report.workers,
        report.host_parallelism,
        report.parallel_ms,
        report.speedup,
        report.thread_speedup,
        report.diagnostics_agree
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use casekit_analysis::LintCode;

    #[test]
    fn corpus_defect_classes_hit_every_pass() {
        let corpus = lint_corpus(&LintBenchConfig {
            arguments: 6,
            premises: 4,
            width: 3,
        });
        let config = LintConfig::new();
        let diags = naive_lint_corpus(&corpus, &config);
        let has = |k: usize, code: LintCode| diags[k].iter().any(|d| d.code == code);
        // Base: the deliberately redundant last premise, on every case.
        assert!(has(0, LintCode::RedundantPremise));
        assert!(has(1, LintCode::DuplicateEvidence));
        assert!(has(2, LintCode::UnreachableNode) && has(2, LintCode::SupportCycle));
        assert!(has(3, LintCode::UndevelopedGoal) && has(3, LintCode::ContextShadowing));
        assert!(has(4, LintCode::InconsistentPremises) && !has(4, LintCode::RedundantPremise));
        assert!(has(5, LintCode::QuantifierMismatch));
    }

    #[test]
    fn naive_loop_matches_engine_stream_for_stream() {
        let corpus = lint_corpus(&LintBenchConfig {
            arguments: 8,
            premises: 3,
            width: 2,
        });
        let config = LintConfig::new();
        let naive = naive_lint_corpus(&corpus, &config);
        for workers in [1, 3] {
            let swept = engine_lint_corpus(&corpus, &config, &Runtime::with_workers(workers));
            assert_eq!(naive, swept);
        }
    }

    #[test]
    fn report_json_has_the_gate_fields() {
        let report = LintBenchReport {
            arguments: 8,
            premises_per_argument: 3,
            chain_width: 2,
            source_bytes: 4096,
            diagnostics: 12,
            workers: 4,
            host_parallelism: 4,
            naive_ms: 10.0,
            serial_ms: 1.0,
            parallel_ms: 0.9,
            speedup: 11.1,
            thread_speedup: 1.1,
            diagnostics_agree: true,
        };
        let json = bench_lint_json(&report);
        assert!(json.contains("\"diagnostics_agree\": true"));
        assert!(json.contains("\"speedup\""));
        assert!(render_report(&report).contains("diagnostics agree: true"));
    }
}
