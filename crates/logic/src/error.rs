//! Shared error types for the logic substrates.
//!
//! The parsing side of the toolkit — propositional formulas, LTL
//! formulas, and the `.case` DSL in `casekit-core` — reports failures
//! through one typed family: [`SyntaxError`], a structured record of
//! *what kind* of thing went wrong ([`SyntaxErrorKind`]), *where*
//! ([`Span`]), what the parser *expected* and *found*, and an optional
//! fix-it hint. [`ParseError`] is an alias for [`SyntaxError`]: the
//! historical constructor ([`SyntaxError::new`]) and fields
//! (`message`, `span`) are preserved, so the typed family is a strict
//! extension of the old message-and-span errors.
//!
//! [`LineIndex`] precomputes the line table of a source string so
//! errors and diagnostics can render human-locatable `line:col`
//! positions ([`SyntaxError::located`]) without re-scanning the source
//! for every lookup.

use std::fmt;

/// A half-open byte range into a source string, used to locate parse errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character of the offending region.
    pub start: usize,
    /// Byte offset one past the last character of the offending region.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `pos`, used for end-of-input errors.
    pub fn point(pos: usize) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The span shifted right by `delta` bytes — used to re-anchor an
    /// error produced against an embedded sub-string (a formula payload
    /// inside a `.case` file) into the enclosing source.
    pub fn offset(self, delta: usize) -> Self {
        Span {
            start: self.start + delta,
            end: self.end + delta,
        }
    }

    /// Number of bytes the span covers.
    pub fn len(self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span covers zero bytes (an end-of-input point).
    pub fn is_empty(self) -> bool {
        self.end <= self.start
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// What class of syntax problem a [`SyntaxError`] reports.
///
/// The kinds are deliberately coarse — one per *recovery strategy and
/// diagnostic code*, not one per grammar production — so downstream
/// tooling (the CaseLint `CK2xx` codes, editor integrations) can key
/// on them without tracking every parser change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SyntaxErrorKind {
    /// A character no token can start with.
    UnexpectedChar,
    /// A string literal that never closes.
    UnterminatedString,
    /// A well-lexed token in a position the grammar does not allow.
    UnexpectedToken,
    /// The input ended where the grammar required more.
    UnexpectedEof,
    /// A word appeared where a known keyword was required.
    UnknownKeyword,
    /// An embedded payload (a `formal`/`temporal` formula inside a
    /// `.case` file) failed to parse.
    BadPayload,
    /// The parsed text is structurally invalid (duplicate ids,
    /// dangling references, misplaced constructs).
    Structure,
    /// Well-formed input followed by trailing garbage.
    TrailingInput,
    /// Errors constructed from a bare message ([`SyntaxError::new`]).
    Other,
}

impl fmt::Display for SyntaxErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SyntaxErrorKind::UnexpectedChar => "unexpected-char",
            SyntaxErrorKind::UnterminatedString => "unterminated-string",
            SyntaxErrorKind::UnexpectedToken => "unexpected-token",
            SyntaxErrorKind::UnexpectedEof => "unexpected-eof",
            SyntaxErrorKind::UnknownKeyword => "unknown-keyword",
            SyntaxErrorKind::BadPayload => "bad-payload",
            SyntaxErrorKind::Structure => "structure",
            SyntaxErrorKind::TrailingInput => "trailing-input",
            SyntaxErrorKind::Other => "other",
        })
    }
}

/// A typed syntax error: kind, location, expected/found, and hint.
///
/// Produced by the propositional, LTL, and `.case` DSL parsers.
/// `message` is always populated with the rendered human-readable
/// description (so string-matching callers keep working); the
/// structured fields carry the same information for tooling that wants
/// to render "expected X, found Y" fix-its itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    /// The error class (drives recovery and diagnostic codes).
    pub kind: SyntaxErrorKind,
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Where in the input the problem was detected.
    pub span: Span,
    /// What the parser was looking for, when it can tell.
    pub expected: Option<String>,
    /// What it found instead (`None` when the input simply ended).
    pub found: Option<String>,
    /// How to fix it, when the parser can tell.
    pub hint: Option<String>,
}

/// The historical name for [`SyntaxError`]. Every parser in the
/// workspace returns this alias; the two names are the same type.
pub type ParseError = SyntaxError;

impl SyntaxError {
    /// Creates a parse error with the given message and location
    /// (kind [`SyntaxErrorKind::Other`], no structured fields).
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        SyntaxError {
            kind: SyntaxErrorKind::Other,
            message: message.into(),
            span,
            expected: None,
            found: None,
            hint: None,
        }
    }

    /// Creates a parse error of an explicit kind.
    pub fn with_kind(kind: SyntaxErrorKind, message: impl Into<String>, span: Span) -> Self {
        SyntaxError {
            kind,
            ..SyntaxError::new(message, span)
        }
    }

    /// Creates an "expected X, found Y" error. `found: None` means the
    /// input ended ([`SyntaxErrorKind::UnexpectedEof`]); otherwise the
    /// kind is [`SyntaxErrorKind::UnexpectedToken`].
    pub fn expected_found(expected: impl Into<String>, found: Option<String>, span: Span) -> Self {
        let expected = expected.into();
        let (kind, message) = match &found {
            Some(found) => (
                SyntaxErrorKind::UnexpectedToken,
                format!("expected {expected}, found {found}"),
            ),
            None => (
                SyntaxErrorKind::UnexpectedEof,
                format!("expected {expected}, found end of input"),
            ),
        };
        SyntaxError {
            kind,
            message,
            span,
            expected: Some(expected),
            found,
            hint: None,
        }
    }

    /// Attaches a fix-it hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }

    /// The error re-anchored `delta` bytes to the right — used when an
    /// embedded sub-string (a formula payload) was parsed standalone
    /// and the error must locate into the enclosing source.
    pub fn offset(mut self, delta: usize) -> Self {
        self.span = self.span.offset(delta);
        self
    }

    /// A display adapter rendering the error at `line:col` resolved
    /// through a precomputed [`LineIndex`] — human-locatable without
    /// the CLI's caret excerpts.
    ///
    /// ```
    /// use casekit_logic::{LineIndex, ParseError, Span};
    /// let src = "p &\n q @";
    /// let index = LineIndex::new(src);
    /// let err = ParseError::new("unexpected character `@`", Span::new(7, 8));
    /// assert_eq!(err.located(&index).to_string(), "2:4: unexpected character `@`");
    /// ```
    pub fn located<'a>(&'a self, index: &'a LineIndex) -> Located<'a> {
        Located { error: self, index }
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)?;
        if let Some(hint) = &self.hint {
            write!(f, " (help: {hint})")?;
        }
        Ok(())
    }
}

impl std::error::Error for SyntaxError {}

/// [`SyntaxError`] rendered at a `line:col` position (see
/// [`SyntaxError::located`]).
#[derive(Debug, Clone, Copy)]
pub struct Located<'a> {
    error: &'a SyntaxError,
    index: &'a LineIndex,
}

impl fmt::Display for Located<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (line, col) = self.index.line_col(self.error.span.start);
        write!(f, "{line}:{col}: {}", self.error.message)?;
        if let Some(hint) = &self.error.hint {
            write!(f, " (help: {hint})")?;
        }
        Ok(())
    }
}

/// A precomputed table of line-start byte offsets for one source
/// string, answering byte-offset → `line:col` lookups in O(log lines)
/// — so rendering a thousand diagnostics does not re-scan the source a
/// thousand times.
///
/// Lines and columns are 1-based; columns count bytes from the line
/// start (identical to character columns for ASCII sources).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineIndex {
    /// Byte offset of the first byte of each line (always starts `[0]`).
    line_starts: Vec<usize>,
    /// Total length of the indexed source, in bytes.
    len: usize,
}

impl LineIndex {
    /// Builds the line table for `src` in one pass.
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0];
        for (i, byte) in src.bytes().enumerate() {
            if byte == b'\n' {
                line_starts.push(i + 1);
            }
        }
        LineIndex {
            line_starts,
            len: src.len(),
        }
    }

    /// The 1-based `(line, column)` of a byte offset. Offsets past the
    /// end of the source resolve to one past the last line's content
    /// (where end-of-input errors point).
    pub fn line_col(&self, byte: usize) -> (usize, usize) {
        let byte = byte.min(self.len);
        let line = match self.line_starts.binary_search(&byte) {
            Ok(exact) => exact,
            Err(insert) => insert - 1,
        };
        (line + 1, byte - self.line_starts[line] + 1)
    }

    /// The byte span of 1-based `line`'s content (newline excluded), or
    /// `None` if the source has no such line.
    pub fn line_span(&self, line: usize) -> Option<Span> {
        let start = *self.line_starts.get(line.checked_sub(1)?)?;
        let end = self.line_starts.get(line).map_or(self.len, |next| next - 1);
        Some(Span::new(start, end.max(start)))
    }

    /// Number of lines in the indexed source (at least 1).
    pub fn lines(&self) -> usize {
        self.line_starts.len()
    }
}

/// Errors produced by logic-engine operations other than parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicError {
    /// A proof step referenced a line that does not exist (or is not yet
    /// available at that point in the proof).
    BadLineReference {
        /// The proof line making the reference.
        at_line: usize,
        /// The referenced line number.
        referenced: usize,
    },
    /// A proof step's cited rule does not justify its formula.
    InvalidStep {
        /// The offending proof line (1-based, as printed).
        line: usize,
        /// Why the step is not justified.
        reason: String,
    },
    /// The resolution/SLD engine exceeded its depth or work budget.
    BudgetExhausted {
        /// The budget that was exceeded, in engine-specific units.
        budget: usize,
    },
    /// A symbol was used in a way inconsistent with its declared sort.
    SortViolation {
        /// The offending symbol.
        symbol: String,
        /// Description of the clash.
        detail: String,
    },
    /// A name was referenced but never declared.
    Undeclared {
        /// The undeclared name.
        name: String,
    },
    /// An enumeration-based procedure (truth table, model listing) was
    /// asked to cover more atoms than it can enumerate.
    TooManyAtoms {
        /// How many atoms the formula has.
        atoms: usize,
        /// The procedure's limit.
        limit: usize,
    },
    /// An argumentation-framework operation referenced an argument id
    /// that the framework never allocated.
    UnknownArgument {
        /// The out-of-range argument id.
        id: usize,
        /// How many arguments the framework holds (valid ids are
        /// `0..arguments`).
        arguments: usize,
    },
    /// A Kripke-structure operation referenced a state id that the
    /// structure never allocated.
    UnknownState {
        /// The out-of-range state id.
        id: usize,
        /// How many states the structure holds (valid ids are
        /// `0..states`).
        states: usize,
    },
    /// A model-checking run was asked for on a Kripke structure with no
    /// initial states, so there is nothing to check.
    NoInitialState,
    /// An operation that requires a ground (variable-free) term was
    /// given a term containing variables.
    NonGroundTerm {
        /// Rendering of the offending term.
        term: String,
    },
    /// An axiom's conclusion mentions a variable that its trigger does
    /// not bind, so applying the axiom could produce non-ground facts.
    UnguardedVariable {
        /// The unbound variable name.
        variable: String,
        /// Rendering of the offending axiom.
        axiom: String,
    },
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::BadLineReference {
                at_line,
                referenced,
            } => {
                write!(
                    f,
                    "line {at_line} references line {referenced}, which is not available"
                )
            }
            LogicError::InvalidStep { line, reason } => {
                write!(f, "invalid step at line {line}: {reason}")
            }
            LogicError::BudgetExhausted { budget } => {
                write!(f, "inference budget of {budget} exhausted")
            }
            LogicError::SortViolation { symbol, detail } => {
                write!(f, "sort violation on `{symbol}`: {detail}")
            }
            LogicError::Undeclared { name } => write!(f, "`{name}` was not declared"),
            LogicError::TooManyAtoms { atoms, limit } => {
                write!(
                    f,
                    "{atoms} atoms exceed the enumeration limit of {limit}; \
                     use the solver for deciding"
                )
            }
            LogicError::UnknownArgument { id, arguments } => {
                write!(
                    f,
                    "argument id {id} is out of range for a framework of \
                     {arguments} argument(s)"
                )
            }
            LogicError::UnknownState { id, states } => {
                write!(
                    f,
                    "state id {id} is out of range for a structure of \
                     {states} state(s)"
                )
            }
            LogicError::NoInitialState => {
                write!(f, "the Kripke structure has no initial states")
            }
            LogicError::NonGroundTerm { term } => {
                write!(
                    f,
                    "`{term}` contains variables where a ground term is required"
                )
            }
            LogicError::UnguardedVariable { variable, axiom } => {
                write!(
                    f,
                    "variable `{variable}` in `{axiom}` is not bound by the \
                     axiom's trigger"
                )
            }
        }
    }
}

impl std::error::Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_display() {
        assert_eq!(Span::new(3, 7).to_string(), "3..7");
        assert_eq!(Span::point(5).to_string(), "5..5");
    }

    #[test]
    fn span_offset_and_len() {
        let s = Span::new(3, 7).offset(10);
        assert_eq!(s, Span::new(13, 17));
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(Span::point(4).is_empty());
    }

    #[test]
    fn parse_error_display_mentions_span_and_message() {
        let e = ParseError::new("unexpected token", Span::new(1, 2));
        let s = e.to_string();
        assert!(s.contains("1..2"));
        assert!(s.contains("unexpected token"));
        assert_eq!(e.kind, SyntaxErrorKind::Other);
    }

    #[test]
    fn expected_found_renders_both_arms() {
        let e = SyntaxError::expected_found("`}`", Some("`goal`".into()), Span::new(4, 8));
        assert_eq!(e.kind, SyntaxErrorKind::UnexpectedToken);
        assert_eq!(e.message, "expected `}`, found `goal`");
        assert_eq!(e.expected.as_deref(), Some("`}`"));
        assert_eq!(e.found.as_deref(), Some("`goal`"));

        let e = SyntaxError::expected_found("a formula", None, Span::point(9));
        assert_eq!(e.kind, SyntaxErrorKind::UnexpectedEof);
        assert_eq!(e.message, "expected a formula, found end of input");
        assert!(e.found.is_none());
    }

    #[test]
    fn hints_render_in_both_displays() {
        let src = "goal g1\n  x";
        let index = LineIndex::new(src);
        let e = SyntaxError::with_kind(
            SyntaxErrorKind::UnknownKeyword,
            "unknown node kind `x`",
            Span::new(10, 11),
        )
        .with_hint("try `goal`");
        assert!(e.to_string().contains("help: try `goal`"));
        let located = e.located(&index).to_string();
        assert!(located.starts_with("2:3: "), "{located}");
        assert!(located.contains("help: try `goal`"));
    }

    #[test]
    fn line_index_lookups() {
        let src = "ab\ncde\n\nf";
        let index = LineIndex::new(src);
        assert_eq!(index.lines(), 4);
        assert_eq!(index.line_col(0), (1, 1));
        assert_eq!(index.line_col(1), (1, 2));
        assert_eq!(index.line_col(3), (2, 1));
        assert_eq!(index.line_col(5), (2, 3));
        assert_eq!(index.line_col(7), (3, 1));
        assert_eq!(index.line_col(8), (4, 1));
        // Past the end clamps to one past the final byte.
        assert_eq!(index.line_col(999), (4, 2));
        assert_eq!(index.line_span(1), Some(Span::new(0, 2)));
        assert_eq!(index.line_span(2), Some(Span::new(3, 6)));
        assert_eq!(index.line_span(3), Some(Span::new(7, 7)));
        assert_eq!(index.line_span(4), Some(Span::new(8, 9)));
        assert_eq!(index.line_span(5), None);
        assert_eq!(index.line_span(0), None);
    }

    #[test]
    fn line_index_empty_source() {
        let index = LineIndex::new("");
        assert_eq!(index.lines(), 1);
        assert_eq!(index.line_col(0), (1, 1));
        assert_eq!(index.line_span(1), Some(Span::new(0, 0)));
    }

    #[test]
    fn error_offset_reanchors() {
        let e = SyntaxError::expected_found("`)`", None, Span::point(3)).offset(40);
        assert_eq!(e.span, Span::point(43));
    }

    #[test]
    fn logic_error_display() {
        let e = LogicError::InvalidStep {
            line: 4,
            reason: "Detach needs an implication".into(),
        };
        assert!(e.to_string().contains("line 4"));
        let e = LogicError::BudgetExhausted { budget: 100 };
        assert!(e.to_string().contains("100"));
        let e = LogicError::SortViolation {
            symbol: "bank".into(),
            detail: "used as both Institution and Landform".into(),
        };
        assert!(e.to_string().contains("bank"));
        let e = LogicError::Undeclared { name: "x".into() };
        assert!(e.to_string().contains("x"));
        let e = LogicError::BadLineReference {
            at_line: 6,
            referenced: 9,
        };
        assert!(e.to_string().contains('9'));
        let e = LogicError::TooManyAtoms {
            atoms: 30,
            limit: 24,
        };
        assert!(e.to_string().contains("30"));
        assert!(e.to_string().contains("24"));
        let e = LogicError::UnknownArgument {
            id: 17,
            arguments: 4,
        };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains('4'));
        let e = LogicError::UnknownState { id: 9, states: 3 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('3'));
        let e = LogicError::NoInitialState;
        assert!(e.to_string().contains("initial"));
        let e = LogicError::NonGroundTerm {
            term: "tap(X, bob)".into(),
        };
        assert!(e.to_string().contains("tap(X, bob)"));
        let e = LogicError::UnguardedVariable {
            variable: "W".into(),
            axiom: "tap(U) initiates seen(W)".into(),
        };
        assert!(e.to_string().contains('W'));
        assert!(e.to_string().contains("seen(W)"));
    }
}
