//! A simplified discrete-time event calculus, after Tun et al.'s privacy
//! arguments (Graydon §III-P).
//!
//! The dialect implements the core commonsense-law-of-inertia fragment:
//!
//! * `Happens(e, t)` — event `e` occurs at time `t` (given as a narrative);
//! * `Initiates(e, f)` / `Terminates(e, f)` — domain axioms;
//! * `InitiallyTrue(f)` — initial state;
//! * `HoldsAt(f, t)` — derived: a fluent holds at `t` iff it was initiated
//!   at some `t' < t` (or initially) and not terminated in between.
//!
//! Fluents and events are ground first-order terms (from [`crate::fol`]),
//! so domain axioms can be written with structure, e.g.
//! `Initiates(tap(user, subject), query_pending(subject))`.
//!
//! ```
//! use casekit_logic::ec::Narrative;
//! use casekit_logic::fol::parse_term;
//!
//! let mut n = Narrative::new();
//! n.initiates(parse_term("grant(alice)").unwrap(), parse_term("access(alice)").unwrap());
//! n.terminates(parse_term("revoke(alice)").unwrap(), parse_term("access(alice)").unwrap());
//! n.happens(parse_term("grant(alice)").unwrap(), 1);
//! n.happens(parse_term("revoke(alice)").unwrap(), 5);
//! assert!(!n.holds_at(&parse_term("access(alice)").unwrap(), 1)); // effects take one tick
//! assert!(n.holds_at(&parse_term("access(alice)").unwrap(), 2));
//! assert!(!n.holds_at(&parse_term("access(alice)").unwrap(), 6));
//! ```

use crate::fol::Term;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Discrete time point.
pub type Time = u64;

/// A domain axiom: the event (possibly with variables, matched by
/// unification) initiates or terminates the fluent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct EffectAxiom {
    event: Term,
    fluent: Term,
}

/// An event-calculus narrative: domain axioms plus a timeline of events.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Narrative {
    initiates: Vec<EffectAxiom>,
    terminates: Vec<EffectAxiom>,
    initially: Vec<Term>,
    happens: Vec<(Term, Time)>,
}

impl Narrative {
    /// An empty narrative.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares that `event` initiates `fluent`.
    ///
    /// Both may contain variables; an occurring event initiates the fluent
    /// instance obtained by unifying against the axiom's event pattern.
    pub fn initiates(&mut self, event: Term, fluent: Term) {
        self.initiates.push(EffectAxiom { event, fluent });
    }

    /// Declares that `event` terminates `fluent`.
    pub fn terminates(&mut self, event: Term, fluent: Term) {
        self.terminates.push(EffectAxiom { event, fluent });
    }

    /// Declares that `fluent` holds at time 0.
    pub fn initially_true(&mut self, fluent: Term) {
        self.initially.push(fluent);
    }

    /// Records that `event` happens at `time`.
    pub fn happens(&mut self, event: Term, time: Time) {
        self.happens.push((event, time));
    }

    /// The events that happen at `time`.
    pub fn events_at(&self, time: Time) -> impl Iterator<Item = &Term> {
        self.happens
            .iter()
            .filter(move |(_, t)| *t == time)
            .map(|(e, _)| e)
    }

    /// The latest time at which any event happens (0 if none).
    pub fn horizon(&self) -> Time {
        self.happens.iter().map(|(_, t)| *t).max().unwrap_or(0)
    }

    /// Ground fluent instances affected (initiated or terminated) by
    /// `event` under the given axiom set.
    fn effects(axioms: &[EffectAxiom], event: &Term) -> Vec<Term> {
        use crate::fol::{unify, Substitution};
        let mut out = Vec::new();
        for axiom in axioms {
            // Freshen axiom variables so narrative constants never clash.
            let ev = axiom.event.rename_variables(usize::MAX);
            let fl = axiom.fluent.rename_variables(usize::MAX);
            if let Some(s) = unify(&ev, event, &Substitution::new()) {
                out.push(s.apply(&fl));
            }
        }
        out
    }

    /// Whether `fluent` (a ground term) holds at `time`.
    ///
    /// Semantics: `HoldsAt(f, 0)` iff `InitiallyTrue(f)`; for `t > 0`,
    /// effects of events at time `t-1` apply at `t`, with termination
    /// taking precedence over initiation at the same instant, and inertia
    /// otherwise.
    pub fn holds_at(&self, fluent: &Term, time: Time) -> bool {
        let mut holds = self.initially.contains(fluent);
        for t in 0..time {
            let mut initiated = false;
            let mut terminated = false;
            for event in self.events_at(t) {
                if Self::effects(&self.initiates, event).contains(fluent) {
                    initiated = true;
                }
                if Self::effects(&self.terminates, event).contains(fluent) {
                    terminated = true;
                }
            }
            if terminated {
                holds = false;
            } else if initiated {
                holds = true;
            }
            // Otherwise inertia: `holds` is unchanged.
        }
        holds
    }

    /// All ground fluents that hold at `time` (restricted to fluents that
    /// are mentioned initially or derivable from a happened event).
    pub fn state_at(&self, time: Time) -> BTreeSet<Term> {
        let mut candidates: BTreeSet<Term> = self.initially.iter().cloned().collect();
        for (event, _) in &self.happens {
            candidates.extend(Self::effects(&self.initiates, event));
            candidates.extend(Self::effects(&self.terminates, event));
        }
        candidates
            .into_iter()
            .filter(|f| self.holds_at(f, time))
            .collect()
    }

    /// Checks a *policy invariant*: `fluent` never holds at any time in
    /// `0..=horizon+1`. Returns the first violating time if any.
    ///
    /// This is the "denial" check of Tun et al.: e.g. location information
    /// must never be available to a non-friend.
    pub fn never_holds(&self, fluent: &Term) -> Result<(), Time> {
        for t in 0..=self.horizon() + 1 {
            if self.holds_at(fluent, t) {
                return Err(t);
            }
        }
        Ok(())
    }

    /// Checks an *availability* property: `fluent` holds at some time in
    /// `0..=horizon+1`. Returns the first such time.
    pub fn eventually_holds(&self, fluent: &Term) -> Option<Time> {
        (0..=self.horizon() + 1).find(|&t| self.holds_at(fluent, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fol::parse_term;

    fn t(src: &str) -> Term {
        parse_term(src).unwrap()
    }

    fn tap_narrative() -> Narrative {
        // Tun et al.'s example (propositional skeleton): tapping a friend's
        // icon makes their location available one step later; untap revokes.
        let mut n = Narrative::new();
        n.initiates(t("tap(User, Subject)"), t("loc_avail(User, Subject)"));
        n.terminates(t("untap(User, Subject)"), t("loc_avail(User, Subject)"));
        n
    }

    #[test]
    fn initially_true_holds_at_zero() {
        let mut n = Narrative::new();
        n.initially_true(t("friends(alice, bob)"));
        assert!(n.holds_at(&t("friends(alice, bob)"), 0));
        assert!(n.holds_at(&t("friends(alice, bob)"), 100)); // inertia
        assert!(!n.holds_at(&t("friends(bob, carol)"), 0));
    }

    #[test]
    fn initiation_takes_effect_next_tick() {
        let mut n = tap_narrative();
        n.happens(t("tap(alice, bob)"), 3);
        let fl = t("loc_avail(alice, bob)");
        assert!(!n.holds_at(&fl, 3));
        assert!(n.holds_at(&fl, 4));
        assert!(n.holds_at(&fl, 10));
    }

    #[test]
    fn termination_removes_fluent() {
        let mut n = tap_narrative();
        n.happens(t("tap(alice, bob)"), 1);
        n.happens(t("untap(alice, bob)"), 5);
        let fl = t("loc_avail(alice, bob)");
        assert!(n.holds_at(&fl, 2));
        assert!(n.holds_at(&fl, 5));
        assert!(!n.holds_at(&fl, 6));
    }

    #[test]
    fn termination_wins_simultaneous_conflict() {
        let mut n = tap_narrative();
        n.happens(t("tap(alice, bob)"), 2);
        n.happens(t("untap(alice, bob)"), 2);
        assert!(!n.holds_at(&t("loc_avail(alice, bob)"), 3));
    }

    #[test]
    fn axiom_variables_bind_per_event() {
        let mut n = tap_narrative();
        n.happens(t("tap(alice, bob)"), 0);
        n.happens(t("tap(carol, dave)"), 0);
        assert!(n.holds_at(&t("loc_avail(alice, bob)"), 1));
        assert!(n.holds_at(&t("loc_avail(carol, dave)"), 1));
        assert!(!n.holds_at(&t("loc_avail(alice, dave)"), 1));
    }

    #[test]
    fn state_at_collects_holding_fluents() {
        let mut n = tap_narrative();
        n.initially_true(t("friends(alice, bob)"));
        n.happens(t("tap(alice, bob)"), 0);
        let state = n.state_at(1);
        assert!(state.contains(&t("friends(alice, bob)")));
        assert!(state.contains(&t("loc_avail(alice, bob)")));
        assert_eq!(state.len(), 2);
    }

    #[test]
    fn never_holds_policy_check() {
        let mut n = tap_narrative();
        n.happens(t("tap(eve, bob)"), 2);
        // Policy: eve (not a friend) must never see bob's location.
        // The naive narrative violates it at t=3.
        assert_eq!(n.never_holds(&t("loc_avail(eve, bob)")), Err(3));
        // alice never tapped, so the policy holds for her.
        assert_eq!(n.never_holds(&t("loc_avail(alice, bob)")), Ok(()));
    }

    #[test]
    fn eventually_holds_availability_check() {
        let mut n = tap_narrative();
        n.happens(t("tap(alice, bob)"), 7);
        assert_eq!(n.eventually_holds(&t("loc_avail(alice, bob)")), Some(8));
        assert_eq!(n.eventually_holds(&t("loc_avail(bob, alice)")), None);
    }

    #[test]
    fn horizon_and_events_at() {
        let mut n = Narrative::new();
        assert_eq!(n.horizon(), 0);
        n.happens(t("e1"), 4);
        n.happens(t("e2"), 9);
        n.happens(t("e3"), 4);
        assert_eq!(n.horizon(), 9);
        assert_eq!(n.events_at(4).count(), 2);
        assert_eq!(n.events_at(5).count(), 0);
    }

    #[test]
    fn re_initiation_after_termination() {
        let mut n = tap_narrative();
        n.happens(t("tap(alice, bob)"), 0);
        n.happens(t("untap(alice, bob)"), 2);
        n.happens(t("tap(alice, bob)"), 4);
        let fl = t("loc_avail(alice, bob)");
        assert!(n.holds_at(&fl, 1));
        assert!(!n.holds_at(&fl, 3));
        assert!(n.holds_at(&fl, 5));
    }
}
