//! Informal fallacies: seeded instances for case studies, and heuristic
//! lints that are *deliberately* unsound and incomplete.
//!
//! Graydon §IV-C: "Computers process the form of arguments but not their
//! real-world meaning. Thus, mechanical verification … cannot show the
//! absence of informal fallacies." This module therefore provides two
//! honest things:
//!
//! 1. [`Seeded`] — a record of informal fallacies *known to be present*
//!    in an argument (because a case-study author put them there). This is
//!    the ground truth against which detectors and simulated reviewers are
//!    scored.
//! 2. Heuristic lints ([`glossary_equivocation_lint`],
//!    [`idle_premise_lint`], [`quantifier_mismatch_lint`]) that surface
//!    *cues* a human should examine. Their unit tests include false
//!    positives and false negatives on purpose: they are demonstrations of
//!    the limits, not refutations of them.

use crate::taxonomy::InformalFallacy;
use casekit_core::{Argument, NodeId};
use casekit_logic::probe::probe;
use casekit_logic::prop::Formula;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A known-present informal fallacy, seeded into a case-study argument.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Seeded {
    /// The fallacy kind.
    pub kind: InformalFallacy,
    /// The node where it lives.
    pub node: NodeId,
    /// Why this is a fallacy (ground-truth note).
    pub note: String,
}

impl Seeded {
    /// Creates a seeded-fallacy record.
    pub fn new(kind: InformalFallacy, node: impl Into<NodeId>, note: impl Into<String>) -> Self {
        Seeded {
            kind,
            node: node.into(),
            note: note.into(),
        }
    }
}

impl fmt::Display for Seeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at `{}`: {}", self.kind, self.node, self.note)
    }
}

/// An argument together with its seeded ground truth — a *case study* in
/// the sense of Greenwell et al.'s fallacy review.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseStudy {
    /// The argument under review.
    pub argument: Argument,
    /// The informal fallacies known to be present.
    pub seeded: Vec<Seeded>,
}

impl CaseStudy {
    /// Creates a case study.
    pub fn new(argument: Argument, seeded: Vec<Seeded>) -> Self {
        CaseStudy { argument, seeded }
    }

    /// Count of seeded fallacies per kind.
    pub fn counts(&self) -> BTreeMap<InformalFallacy, usize> {
        let mut out = BTreeMap::new();
        for s in &self.seeded {
            *out.entry(s.kind).or_insert(0) += 1;
        }
        out
    }
}

/// A cue raised by a heuristic lint — explicitly *not* a finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cue {
    /// The fallacy kind the cue *might* indicate.
    pub possible: InformalFallacy,
    /// Where.
    pub node: Option<NodeId>,
    /// What to look at.
    pub detail: String,
}

impl fmt::Display for Cue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "possible {}: {}", self.possible, self.detail)?;
        if let Some(n) = &self.node {
            write!(f, " (at `{n}`)")?;
        }
        Ok(())
    }
}

/// Glossary-based equivocation lint: given a glossary mapping a term to
/// its *declared sense per node*, flag terms used with two different
/// senses. The glossary itself is an informal judgment — which is the
/// point: the machine only mechanises bookkeeping a human already did.
pub fn glossary_equivocation_lint(glossary: &BTreeMap<(NodeId, String), String>) -> Vec<Cue> {
    // term -> set of senses (with a witness node each).
    let mut senses: BTreeMap<&String, BTreeMap<&String, &NodeId>> = BTreeMap::new();
    for ((node, term), sense) in glossary {
        senses.entry(term).or_default().entry(sense).or_insert(node);
    }
    senses
        .into_iter()
        .filter(|(_, m)| m.len() >= 2)
        .map(|(term, m)| {
            let sense_list: Vec<String> = m
                .iter()
                .map(|(sense, node)| format!("`{sense}` at `{node}`"))
                .collect();
            Cue {
                possible: InformalFallacy::Equivocation,
                node: None,
                detail: format!(
                    "term `{term}` is declared with {} senses: {}",
                    sense_list.len(),
                    sense_list.join(", ")
                ),
            }
        })
        .collect()
}

/// Idle-premise lint: premises whose removal does not affect the formal
/// conclusion are *candidates* for red herrings — but only candidates
/// (defence-in-depth evidence is legitimately redundant).
pub fn idle_premise_lint(premises: &[Formula], conclusion: &Formula) -> Vec<Cue> {
    let report = probe(premises, conclusion);
    if !report.entailed {
        return Vec::new();
    }
    report
        .idle_indices()
        .into_iter()
        .map(|i| Cue {
            possible: InformalFallacy::RedHerring,
            node: None,
            detail: format!(
                "premise {} (`{}`) is formally idle: the conclusion survives without it",
                i + 1,
                premises[i]
            ),
        })
        .collect()
}

/// Quantifier-mismatch lint over node text: a node whose text claims
/// "all …" supported only by nodes whose text says "some …" or "sampled"
/// is a *cue* for hasty generalisation. Purely lexical — demonstrably
/// fragile, as the tests show.
pub fn quantifier_mismatch_lint(argument: &Argument) -> Vec<Cue> {
    let mut cues = Vec::new();
    for node in argument.nodes() {
        let text = node.text.to_lowercase();
        let claims_all = text.contains("all ") || text.starts_with("all");
        if !claims_all {
            continue;
        }
        let support = argument.children(&node.id, casekit_core::EdgeKind::SupportedBy);
        if support.is_empty() {
            continue;
        }
        let all_partial = support.iter().all(|c| {
            let t = c.text.to_lowercase();
            t.contains("some ") || t.contains("sample") || t.contains("subset")
        });
        if all_partial {
            cues.push(Cue {
                possible: InformalFallacy::HastyInductiveGeneralisation,
                node: Some(node.id.clone()),
                detail: format!(
                    "`{}` claims a universal but is supported only by partial evidence",
                    node.id
                ),
            });
        }
    }
    cues
}

#[cfg(test)]
mod tests {
    use super::*;
    use casekit_core::dsl::parse_argument;
    use casekit_logic::prop::parse;

    #[test]
    fn seeded_records_and_counts() {
        let arg =
            parse_argument(r#"argument "cs" { goal g1 "claim" { solution e1 "ev" } }"#).unwrap();
        let cs = CaseStudy::new(
            arg,
            vec![
                Seeded::new(InformalFallacy::RedHerring, "g1", "irrelevant support"),
                Seeded::new(InformalFallacy::RedHerring, "e1", "more of it"),
                Seeded::new(InformalFallacy::Equivocation, "g1", "two senses of 'safe'"),
            ],
        );
        let counts = cs.counts();
        assert_eq!(counts[&InformalFallacy::RedHerring], 2);
        assert_eq!(counts[&InformalFallacy::Equivocation], 1);
        assert!(cs.seeded[0].to_string().contains("red herring"));
    }

    #[test]
    fn glossary_lint_flags_two_senses() {
        let mut glossary = BTreeMap::new();
        glossary.insert(
            (NodeId::new("g1"), "bank".to_string()),
            "financial institution".to_string(),
        );
        glossary.insert(
            (NodeId::new("g2"), "bank".to_string()),
            "river landform".to_string(),
        );
        glossary.insert(
            (NodeId::new("g3"), "river".to_string()),
            "watercourse".to_string(),
        );
        let cues = glossary_equivocation_lint(&glossary);
        assert_eq!(cues.len(), 1);
        assert_eq!(cues[0].possible, InformalFallacy::Equivocation);
        assert!(cues[0].detail.contains("bank"));
        assert!(cues[0].to_string().contains("possible equivocation"));
    }

    #[test]
    fn glossary_lint_depends_entirely_on_human_input() {
        // False negative by construction: if the glossary author recorded
        // one sense for both uses, the machine is silent — the lint only
        // mechanises the human's judgment.
        let mut glossary = BTreeMap::new();
        glossary.insert((NodeId::new("g1"), "bank".to_string()), "bank".to_string());
        glossary.insert((NodeId::new("g2"), "bank".to_string()), "bank".to_string());
        assert!(glossary_equivocation_lint(&glossary).is_empty());
    }

    #[test]
    fn idle_premise_lint_flags_unused_premise() {
        let premises = vec![
            parse("p").unwrap(),
            parse("p -> q").unwrap(),
            parse("weather_is_nice").unwrap(),
        ];
        let cues = idle_premise_lint(&premises, &parse("q").unwrap());
        assert_eq!(cues.len(), 1);
        assert!(cues[0].detail.contains("weather_is_nice"));
    }

    #[test]
    fn idle_premise_lint_false_positive_on_redundant_evidence() {
        // Defence in depth: two independent sufficient premises. Each is
        // individually idle, yet neither is a red herring. The lint flags
        // both — a designed false positive.
        let premises = vec![parse("q").unwrap(), parse("p & (p -> q)").unwrap()];
        let cues = idle_premise_lint(&premises, &parse("q").unwrap());
        assert_eq!(cues.len(), 2);
    }

    #[test]
    fn idle_premise_lint_silent_when_not_entailed() {
        let premises = vec![parse("p").unwrap()];
        assert!(idle_premise_lint(&premises, &parse("q").unwrap()).is_empty());
    }

    #[test]
    fn quantifier_lint_flags_all_from_some() {
        let arg = parse_argument(
            r#"argument "haz" {
                goal g1 "All hazards are mitigated" {
                  solution e1 "Some hazards were tested in the lab"
                }
            }"#,
        )
        .unwrap();
        let cues = quantifier_mismatch_lint(&arg);
        assert_eq!(cues.len(), 1);
        assert_eq!(
            cues[0].possible,
            InformalFallacy::HastyInductiveGeneralisation
        );
        assert_eq!(cues[0].node, Some(NodeId::new("g1")));
    }

    #[test]
    fn quantifier_lint_false_negative_with_synonyms() {
        // "every" instead of "all", "a few" instead of "some": silent.
        // Lexical lints cannot see meaning — the paper's point.
        let arg = parse_argument(
            r#"argument "haz" {
                goal g1 "Every hazard is mitigated" {
                  solution e1 "A few hazards were tested"
                }
            }"#,
        )
        .unwrap();
        assert!(quantifier_mismatch_lint(&arg).is_empty());
    }

    #[test]
    fn quantifier_lint_quiet_on_complete_support() {
        let arg = parse_argument(
            r#"argument "haz" {
                goal g1 "All hazards are mitigated" {
                  solution e1 "Exhaustive hazard-by-hazard closure review"
                }
            }"#,
        )
        .unwrap();
        assert!(quantifier_mismatch_lint(&arg).is_empty());
    }
}
