//! Atom interning and packed integer literals — the data plane of the
//! solver core.
//!
//! The [`Formula`](super::ast::Formula) plane keys everything by
//! [`Atom`] (an `Arc<str>`), which is convenient for construction and
//! display but expensive to compare, hash, and store in bulk. The solver
//! core mirrors the `NodeId`/`NodeIdx` two-plane design of
//! `casekit-core`: an [`AtomTable`] interns atom names to dense
//! [`Var`]s (`u32` indices), and clauses are stored as packed [`Lit`]s
//! — a variable index shifted left with the sign in the low bit — so a
//! literal is one machine word and its negation is an XOR.

use super::ast::Atom;
use std::collections::HashMap;
use std::fmt;
use std::ops::Not;

/// A solver variable: a dense `u32` index (an interned atom, or a fresh
/// Tseitin definition variable with no atom behind it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal over this variable.
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal over this variable.
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// The literal with the given polarity.
    pub fn lit(self, positive: bool) -> Lit {
        if positive {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A packed literal: variable index in the high bits, sign in bit 0
/// (`0` = positive, `1` = negated). Negation is `code ^ 1`; the code
/// doubles as a dense index into watch lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The packed code (variable index × 2 + sign), usable as a dense
    /// array index.
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_positive() {
            f.write_str("~")?;
        }
        write!(f, "{}", self.var())
    }
}

/// An interner mapping atom names to [`Var`]s.
///
/// Standalone use allocates dense indices itself
/// ([`AtomTable::intern`]); when embedded in a
/// [`Theory`](super::solver::Theory) the solver owns variable
/// allocation (atoms interleave with Tseitin definition variables in
/// one index space), so [`AtomTable::intern_with`] takes the allocator.
/// Either way the mapping is append-only — a variable, once bound,
/// keeps its atom for the lifetime of the table — and allocation order
/// means variable indices are strictly increasing across entries.
#[derive(Debug, Clone, Default)]
pub struct AtomTable {
    /// Interned atoms with their variables, in allocation order
    /// (variables strictly increasing).
    entries: Vec<(Atom, Var)>,
    index: HashMap<Atom, Var>,
}

impl AtomTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `atom` with self-allocated dense indices `0, 1, 2, …`.
    pub fn intern(&mut self, atom: &Atom) -> Var {
        let next = Var(u32::try_from(self.entries.len()).expect("atom table fits in u32"));
        self.intern_with(atom, || next)
    }

    /// Interns `atom`, calling `alloc` for a fresh variable on first
    /// sight. `alloc` must return strictly increasing variables across
    /// calls (true of both the dense counter and a growing solver).
    pub fn intern_with(&mut self, atom: &Atom, alloc: impl FnOnce() -> Var) -> Var {
        if let Some(&v) = self.index.get(atom) {
            return v;
        }
        let v = alloc();
        debug_assert!(
            self.entries.last().is_none_or(|(_, prev)| *prev < v),
            "interned variables must be allocated in increasing order"
        );
        self.entries.push((atom.clone(), v));
        self.index.insert(atom.clone(), v);
        v
    }

    /// The variable for `atom`, if it has been interned.
    pub fn var(&self, atom: &Atom) -> Option<Var> {
        self.index.get(atom).copied()
    }

    /// The atom behind `var` (`None` for definition variables and
    /// variables this table never saw).
    pub fn atom(&self, var: Var) -> Option<&Atom> {
        self.entries
            .binary_search_by_key(&var, |(_, v)| *v)
            .ok()
            .map(|i| &self.entries[i].0)
    }

    /// Number of interned atoms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no atoms have been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The interned atoms with their variables, in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &Atom)> {
        self.entries.iter().map(|(a, v)| (*v, a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = AtomTable::new();
        let p = t.intern(&Atom::new("p"));
        let q = t.intern(&Atom::new("q"));
        assert_eq!(p.index(), 0);
        assert_eq!(q.index(), 1);
        assert_eq!(t.intern(&Atom::new("p")), p);
        assert_eq!(t.len(), 2);
        assert_eq!(t.var(&Atom::new("q")), Some(q));
        assert_eq!(t.var(&Atom::new("r")), None);
        assert_eq!(t.atom(p).map(Atom::name), Some("p"));
    }

    #[test]
    fn intern_with_sparse_solver_style_allocation() {
        // Atoms interleaved with definition variables: 0 and 3 are
        // atoms, 1-2 belong to someone else.
        let mut t = AtomTable::new();
        let p = t.intern_with(&Atom::new("p"), || Var(0));
        let q = t.intern_with(&Atom::new("q"), || Var(3));
        assert_eq!(p, Var(0));
        assert_eq!(q, Var(3));
        assert_eq!(t.intern_with(&Atom::new("q"), || unreachable!()), q);
        assert_eq!(t.atom(Var(3)).map(Atom::name), Some("q"));
        assert_eq!(t.atom(Var(1)), None);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn literal_packing_round_trips() {
        let v = Var(7);
        let pos = v.positive();
        let neg = v.negative();
        assert_eq!(pos.var(), v);
        assert_eq!(neg.var(), v);
        assert!(pos.is_positive());
        assert!(!neg.is_positive());
        assert_eq!(!pos, neg);
        assert_eq!(!!pos, pos);
        assert_eq!(pos.code(), 14);
        assert_eq!(neg.code(), 15);
        assert_eq!(v.lit(true), pos);
        assert_eq!(v.lit(false), neg);
    }

    #[test]
    fn display_forms() {
        let v = Var(3);
        assert_eq!(v.to_string(), "v3");
        assert_eq!(v.positive().to_string(), "v3");
        assert_eq!(v.negative().to_string(), "~v3");
    }

    #[test]
    fn iter_yields_allocation_order() {
        let mut t = AtomTable::new();
        t.intern(&Atom::new("z"));
        t.intern(&Atom::new("a"));
        let names: Vec<_> = t.iter().map(|(_, a)| a.name().to_string()).collect();
        assert_eq!(names, vec!["z", "a"]);
    }
}
