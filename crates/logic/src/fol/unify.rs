//! Syntactic unification with occurs check.

use super::term::Term;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A substitution mapping variable names to terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Substitution {
    map: BTreeMap<Arc<str>, Term>,
}

impl Substitution {
    /// The identity substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// The term bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Term> {
        self.map.get(name)
    }

    /// Binds `name` to `term` without resolving chains (internal building
    /// block; prefer [`unify`]).
    pub fn bind(&mut self, name: impl AsRef<str>, term: Term) {
        self.map.insert(Arc::from(name.as_ref()), term);
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether there are no bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The bindings in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&Arc<str>, &Term)> {
        self.map.iter()
    }

    /// Applies the substitution to a term, resolving chains of variable
    /// bindings (`X ↦ Y, Y ↦ c` resolves `X` to `c`).
    pub fn apply(&self, term: &Term) -> Term {
        match term {
            Term::Var(n) => match self.map.get(n) {
                // A bound variable may itself be bound; chase the chain.
                Some(t) => self.apply(t),
                None => term.clone(),
            },
            Term::Const(_) => term.clone(),
            Term::Compound(f, args) => {
                Term::Compound(f.clone(), args.iter().map(|a| self.apply(a)).collect())
            }
        }
    }

    /// Restricts the substitution to the given variable names, fully
    /// resolving each binding. Used to present query answers.
    pub fn project(&self, names: impl IntoIterator<Item = Arc<str>>) -> Substitution {
        let mut out = Substitution::new();
        for name in names {
            let resolved = self.apply(&Term::Var(name.clone()));
            if resolved != Term::Var(name.clone()) {
                out.map.insert(name, resolved);
            }
        }
        out
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.map.is_empty() {
            return f.write_str("{}");
        }
        f.write_str("{")?;
        for (i, (name, term)) in self.map.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{name} = {term}")?;
        }
        f.write_str("}")
    }
}

/// Computes the most general unifier of `a` and `b` under an existing
/// substitution, or `None` if they do not unify.
///
/// The occurs check is performed, so `X` never unifies with `f(X)`; cyclic
/// "infinite terms" cannot arise.
pub fn unify(a: &Term, b: &Term, subst: &Substitution) -> Option<Substitution> {
    let mut s = subst.clone();
    if unify_into(a, b, &mut s) {
        Some(s)
    } else {
        None
    }
}

/// Chases top-level variable bindings only — no copying, no descent into
/// compound arguments. Subterms resolve lazily when `unify_into` reaches
/// them, which keeps each step O(chain) instead of O(term).
fn resolve<'t>(mut t: &'t Term, s: &'t Substitution) -> &'t Term {
    while let Term::Var(n) = t {
        match s.get(n) {
            Some(bound) => t = bound,
            None => break,
        }
    }
    t
}

/// Occurs check through the substitution: does the unbound variable `x`
/// occur anywhere in `t` once bindings are resolved?
fn occurs_in(x: &str, t: &Term, s: &Substitution) -> bool {
    match resolve(t, s) {
        Term::Var(n) => n.as_ref() == x,
        Term::Const(_) => false,
        Term::Compound(_, args) => args.iter().any(|a| occurs_in(x, a, s)),
    }
}

fn unify_into(a: &Term, b: &Term, s: &mut Substitution) -> bool {
    // Resolve only the top-level variable chains; cloning the resolved
    // heads releases the borrow on `s` before any binding is added.
    let a = resolve(a, s).clone();
    let b = resolve(b, s).clone();
    match (&a, &b) {
        (Term::Var(x), Term::Var(y)) if x == y => true,
        (Term::Var(x), other) | (other, Term::Var(x)) => {
            if occurs_in(x, other, s) {
                false // occurs check
            } else {
                s.bind(x.as_ref(), other.clone());
                true
            }
        }
        (Term::Const(x), Term::Const(y)) => x == y,
        (Term::Compound(f, fa), Term::Compound(g, ga)) => {
            if f != g || fa.len() != ga.len() {
                return false;
            }
            fa.iter().zip(ga).all(|(x, y)| unify_into(x, y, s))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(name: &str) -> Term {
        Term::constant(name)
    }
    fn v(name: &str) -> Term {
        Term::var(name)
    }

    #[test]
    fn unify_constants() {
        assert!(unify(&c("a"), &c("a"), &Substitution::new()).is_some());
        assert!(unify(&c("a"), &c("b"), &Substitution::new()).is_none());
    }

    #[test]
    fn unify_variable_with_constant() {
        let s = unify(&v("X"), &c("river"), &Substitution::new()).unwrap();
        assert_eq!(s.apply(&v("X")), c("river"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn unify_is_symmetric_in_result() {
        let s1 = unify(&v("X"), &c("a"), &Substitution::new()).unwrap();
        let s2 = unify(&c("a"), &v("X"), &Substitution::new()).unwrap();
        assert_eq!(s1.apply(&v("X")), s2.apply(&v("X")));
    }

    #[test]
    fn unify_compound() {
        let t1 = Term::compound("adjacent", vec![v("X"), c("river")]);
        let t2 = Term::compound("adjacent", vec![c("bank"), v("Y")]);
        let s = unify(&t1, &t2, &Substitution::new()).unwrap();
        assert_eq!(s.apply(&t1), s.apply(&t2));
        assert_eq!(s.apply(&v("X")), c("bank"));
        assert_eq!(s.apply(&v("Y")), c("river"));
    }

    #[test]
    fn functor_and_arity_mismatch() {
        let t1 = Term::compound("p", vec![c("a")]);
        let t2 = Term::compound("q", vec![c("a")]);
        assert!(unify(&t1, &t2, &Substitution::new()).is_none());
        let t3 = Term::compound("p", vec![c("a"), c("b")]);
        assert!(unify(&t1, &t3, &Substitution::new()).is_none());
    }

    #[test]
    fn occurs_check_blocks_cyclic_binding() {
        let t = Term::compound("f", vec![v("X")]);
        assert!(unify(&v("X"), &t, &Substitution::new()).is_none());
        assert!(unify(&t, &v("X"), &Substitution::new()).is_none());
    }

    #[test]
    fn variable_chains_resolve() {
        // X = Y, then Y = c: applying to X gives c.
        let s = unify(&v("X"), &v("Y"), &Substitution::new()).unwrap();
        let s = unify(&v("Y"), &c("c"), &s).unwrap();
        assert_eq!(s.apply(&v("X")), c("c"));
    }

    #[test]
    fn unification_under_existing_bindings_respects_them() {
        let s0 = unify(&v("X"), &c("a"), &Substitution::new()).unwrap();
        // X already bound to a; unifying X with b must fail.
        assert!(unify(&v("X"), &c("b"), &s0).is_none());
        // Unifying X with a succeeds and changes nothing.
        let s1 = unify(&v("X"), &c("a"), &s0).unwrap();
        assert_eq!(s1.apply(&v("X")), c("a"));
    }

    #[test]
    fn mgu_equalises_nested_terms() {
        let t1 = Term::compound("f", vec![v("X"), Term::compound("g", vec![v("X"), v("Y")])]);
        let t2 = Term::compound("f", vec![c("a"), Term::compound("g", vec![v("Z"), c("b")])]);
        let s = unify(&t1, &t2, &Substitution::new()).unwrap();
        assert_eq!(s.apply(&t1), s.apply(&t2));
        assert_eq!(s.apply(&v("Z")), c("a"));
    }

    #[test]
    fn projection_restricts_and_resolves() {
        let s = unify(&v("X"), &v("Y"), &Substitution::new()).unwrap();
        let s = unify(&v("Y"), &c("answer"), &s).unwrap();
        let p = s.project([Arc::from("X")]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.get("X"), Some(&c("answer")));
        assert!(p.get("Y").is_none());
    }

    #[test]
    fn display_substitution() {
        assert_eq!(Substitution::new().to_string(), "{}");
        let s = unify(&v("X"), &c("bank"), &Substitution::new()).unwrap();
        assert_eq!(s.to_string(), "{X = bank}");
    }

    #[test]
    fn same_variable_unifies_with_itself_without_binding() {
        let s = unify(&v("X"), &v("X"), &Substitution::new()).unwrap();
        assert!(s.is_empty());
    }
}
