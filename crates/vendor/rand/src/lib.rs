//! Vendored, dependency-free stand-in for `rand` (0.8-flavoured API).
//!
//! Only the surface this workspace uses is provided: [`Rng::gen`],
//! [`Rng::gen_bool`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`],
//! and [`seq::SliceRandom`] (`choose`/`shuffle`). Streams are
//! deterministic per seed but are NOT bit-compatible with the real rand
//! crate — all in-tree consumers assert statistical properties, not golden
//! samples.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators. Real rand seeds through byte arrays; the only
/// entry point used here is `seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling of a type from raw bits (`Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = ((self.end as i128) - (self.start as i128)) as u64;
                // Unbiased rejection sampling: accept draws below the
                // largest multiple of `span`.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let draw = rng.next_u64();
                    if draw <= zone {
                        return ((self.start as i128) + (draw % span) as i128) as $ty;
                    }
                }
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if start == end {
                    return start;
                }
                (start..end.wrapping_add(1)).sample_from(rng)
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$ty as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice sampling helpers (`rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64). Used as the
    /// default generic RNG and for seed expansion.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}
