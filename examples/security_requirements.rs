//! Haley et al.'s two-part security requirements satisfaction argument
//! (Graydon §III-K): a formal *outer* argument — the eleven-line
//! natural-deduction proof — whose premises are discharged by informal
//! *inner* arguments in extended Toulmin notation.
//!
//! Run with: `cargo run --example security_requirements`

use casekit::core::toulmin::ToulminArgument;
use casekit::logic::nd::Proof;
use casekit::logic::probe;
use casekit::logic::prop::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The outer argument: the paper's exact proof.
    let proof = Proof::haley_example();
    println!("Outer (formal) argument:\n{proof}");
    proof.check()?;
    println!("mechanical check: PASS\n");

    // 2. The inner argument supporting premise 2 (`C -> H`): informal,
    //    in extended Toulmin notation, with its rebuttal on display.
    let inner = ToulminArgument::haley_inner_example();
    println!("Inner (informal) argument for a trust assumption:\n{inner}");

    // 3. Rushby-style probing of the outer premises: which are critical?
    let premises = vec![
        parse("I -> V")?,
        parse("C -> H")?,
        parse("Y -> V & C")?,
        parse("D -> Y")?,
    ];
    let conclusion = parse("D -> H")?;
    let report = probe::probe(&premises, &conclusion);
    println!("conclusion entailed: {}", report.entailed);
    for (i, premise) in premises.iter().enumerate() {
        let status = if report.critical_indices().contains(&i) {
            "critical"
        } else {
            "idle — candidate red herring, or defence in depth"
        };
        println!("  premise {} (`{premise}`): {status}", i + 1);
    }

    // 4. The inner argument as a GSN-convertible graph.
    let graph = inner.to_argument("haley-inner");
    println!(
        "\ninner argument as graph: {} nodes, GSN-well-formed: {}",
        graph.len(),
        casekit::core::gsn::check(&graph).is_empty()
    );
    Ok(())
}
