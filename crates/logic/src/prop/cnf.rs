//! Conjunctive normal form: literals, clauses, and conversion.
//!
//! Two conversions are provided: the classic distributive transformation
//! (worst-case exponential, but produces an *equivalent* formula) and the
//! Tseitin transformation (linear, produces an *equisatisfiable* formula
//! with fresh definition atoms).

use super::ast::{Atom, Formula};
use super::eval::Valuation;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A literal: an atom or its negation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Literal {
    /// The underlying atom.
    pub atom: Atom,
    /// `true` for a positive literal `p`, `false` for `~p`.
    pub positive: bool,
}

impl Literal {
    /// Positive literal over `atom`.
    pub fn pos(atom: impl Into<Atom>) -> Self {
        Literal {
            atom: atom.into(),
            positive: true,
        }
    }

    /// Negative literal over `atom`.
    pub fn neg(atom: impl Into<Atom>) -> Self {
        Literal {
            atom: atom.into(),
            positive: false,
        }
    }

    /// The complementary literal.
    pub fn negated(&self) -> Self {
        Literal {
            atom: self.atom.clone(),
            positive: !self.positive,
        }
    }

    /// Evaluates the literal under a valuation.
    pub fn eval(&self, v: &Valuation) -> bool {
        v.get(&self.atom).unwrap_or(false) == self.positive
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.positive {
            f.write_str("~")?;
        }
        write!(f, "{}", self.atom)
    }
}

/// A clause: a disjunction of literals. The empty clause is false.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Clause {
    literals: BTreeSet<Literal>,
}

impl Clause {
    /// The empty (false) clause.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a clause from literals (duplicates collapse).
    pub fn from_literals<I: IntoIterator<Item = Literal>>(lits: I) -> Self {
        Clause {
            literals: lits.into_iter().collect(),
        }
    }

    /// The literals, in sorted order.
    pub fn literals(&self) -> impl Iterator<Item = &Literal> {
        self.literals.iter()
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// True for the empty clause.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// True if the clause contains both `p` and `~p` (always satisfied).
    pub fn is_tautologous(&self) -> bool {
        self.literals
            .iter()
            .any(|l| l.positive && self.literals.contains(&l.negated()))
    }

    /// Whether the clause contains the literal.
    pub fn contains(&self, lit: &Literal) -> bool {
        self.literals.contains(lit)
    }

    /// Inserts a literal.
    pub fn insert(&mut self, lit: Literal) {
        self.literals.insert(lit);
    }

    /// Clause with `lit` removed (used by resolution).
    pub fn without(&self, lit: &Literal) -> Clause {
        let mut c = self.clone();
        c.literals.remove(lit);
        c
    }

    /// Union of two clauses.
    pub fn union(&self, other: &Clause) -> Clause {
        Clause {
            literals: self.literals.union(&other.literals).cloned().collect(),
        }
    }

    /// Evaluates the clause under a valuation.
    pub fn eval(&self, v: &Valuation) -> bool {
        self.literals.iter().any(|l| l.eval(v))
    }
}

impl FromIterator<Literal> for Clause {
    fn from_iter<I: IntoIterator<Item = Literal>>(iter: I) -> Self {
        Clause::from_literals(iter)
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.literals.is_empty() {
            return f.write_str("⊥");
        }
        let parts: Vec<String> = self.literals.iter().map(|l| l.to_string()).collect();
        f.write_str(&parts.join(" | "))
    }
}

/// A set of clauses, interpreted conjunctively.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ClauseSet {
    clauses: BTreeSet<Clause>,
}

impl ClauseSet {
    /// The empty (true) clause set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The clauses, in sorted order.
    pub fn clauses(&self) -> impl Iterator<Item = &Clause> {
        self.clauses.iter()
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// True when there are no clauses (trivially satisfiable).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Inserts a clause.
    pub fn insert(&mut self, clause: Clause) {
        self.clauses.insert(clause);
    }

    /// Whether the set contains the empty clause.
    pub fn contains_empty(&self) -> bool {
        self.clauses.iter().any(|c| c.is_empty())
    }

    /// All atoms mentioned.
    pub fn atoms(&self) -> BTreeSet<Atom> {
        self.clauses
            .iter()
            .flat_map(|c| c.literals().map(|l| l.atom.clone()))
            .collect()
    }

    /// Evaluates the conjunction under a valuation.
    pub fn eval(&self, v: &Valuation) -> bool {
        self.clauses.iter().all(|c| c.eval(v))
    }

    /// Drops tautologous clauses (they never constrain satisfiability).
    pub fn simplify(&mut self) {
        self.clauses.retain(|c| !c.is_tautologous());
    }
}

impl FromIterator<Clause> for ClauseSet {
    fn from_iter<I: IntoIterator<Item = Clause>>(iter: I) -> Self {
        ClauseSet {
            clauses: iter.into_iter().collect(),
        }
    }
}

impl Extend<Clause> for ClauseSet {
    fn extend<I: IntoIterator<Item = Clause>>(&mut self, iter: I) {
        self.clauses.extend(iter);
    }
}

impl fmt::Display for ClauseSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.clauses.iter().map(|c| format!("({c})")).collect();
        f.write_str(&parts.join(" & "))
    }
}

impl Formula {
    /// Negation normal form: negations pushed to atoms, `->`/`<->` expanded.
    pub fn to_nnf(&self) -> Formula {
        fn nnf(f: &Formula, negate: bool) -> Formula {
            match (f, negate) {
                (Formula::True, false) | (Formula::False, true) => Formula::True,
                (Formula::True, true) | (Formula::False, false) => Formula::False,
                (Formula::Atom(a), false) => Formula::Atom(a.clone()),
                (Formula::Atom(a), true) => Formula::Atom(a.clone()).not(),
                (Formula::Not(inner), n) => nnf(inner, !n),
                (Formula::And(l, r), false) => nnf(l, false).and(nnf(r, false)),
                (Formula::And(l, r), true) => nnf(l, true).or(nnf(r, true)),
                (Formula::Or(l, r), false) => nnf(l, false).or(nnf(r, false)),
                (Formula::Or(l, r), true) => nnf(l, true).and(nnf(r, true)),
                (Formula::Implies(l, r), false) => nnf(l, true).or(nnf(r, false)),
                (Formula::Implies(l, r), true) => nnf(l, false).and(nnf(r, true)),
                (Formula::Iff(l, r), false) => nnf(l, false)
                    .and(nnf(r, false))
                    .or(nnf(l, true).and(nnf(r, true))),
                (Formula::Iff(l, r), true) => nnf(l, false)
                    .and(nnf(r, true))
                    .or(nnf(l, true).and(nnf(r, false))),
            }
        }
        nnf(self, false)
    }

    /// Equivalent CNF via the distributive law.
    ///
    /// Worst-case exponential; fine for the formula sizes found in
    /// assurance arguments. Use [`Formula::to_cnf_tseitin`] for large
    /// formulas where only satisfiability matters.
    pub fn to_cnf(&self) -> ClauseSet {
        fn clauses(f: &Formula) -> ClauseSet {
            match f {
                Formula::True => ClauseSet::new(),
                Formula::False => {
                    let mut cs = ClauseSet::new();
                    cs.insert(Clause::empty());
                    cs
                }
                Formula::Atom(a) => {
                    let mut cs = ClauseSet::new();
                    cs.insert(Clause::from_literals([Literal::pos(a.clone())]));
                    cs
                }
                Formula::Not(inner) => match inner.as_ref() {
                    Formula::Atom(a) => {
                        let mut cs = ClauseSet::new();
                        cs.insert(Clause::from_literals([Literal::neg(a.clone())]));
                        cs
                    }
                    // NNF guarantees negation only over atoms.
                    _ => unreachable!("to_cnf requires NNF input"),
                },
                Formula::And(l, r) => {
                    let mut cs = clauses(l);
                    cs.extend(clauses(r).clauses().cloned());
                    cs
                }
                Formula::Or(l, r) => {
                    let left = clauses(l);
                    let right = clauses(r);
                    let mut cs = ClauseSet::new();
                    for lc in left.clauses() {
                        for rc in right.clauses() {
                            cs.insert(lc.union(rc));
                        }
                    }
                    cs
                }
                Formula::Implies(_, _) | Formula::Iff(_, _) => {
                    unreachable!("to_cnf requires NNF input")
                }
            }
        }
        let mut cs = clauses(&self.to_nnf());
        cs.simplify();
        cs
    }

    /// Equisatisfiable CNF via the Tseitin transformation.
    ///
    /// Fresh definition atoms are named `_t0`, `_t1`, …; callers must not
    /// use that namespace. The result is linear in formula size.
    pub fn to_cnf_tseitin(&self) -> ClauseSet {
        let mut cs = ClauseSet::new();
        let mut counter = 0usize;
        let top = tseitin(self, &mut cs, &mut counter);
        cs.insert(Clause::from_literals([top]));
        cs.simplify();
        cs
    }
}

/// Returns a literal equivalent to `f`, adding definition clauses to `cs`.
fn tseitin(f: &Formula, cs: &mut ClauseSet, counter: &mut usize) -> Literal {
    fn fresh(counter: &mut usize) -> Atom {
        let name = format!("_t{}", *counter);
        *counter += 1;
        Atom::new(name)
    }
    match f {
        Formula::True => {
            // x & (x) — introduce an atom constrained true.
            let x = fresh(counter);
            cs.insert(Clause::from_literals([Literal::pos(x.clone())]));
            Literal::pos(x)
        }
        Formula::False => {
            let x = fresh(counter);
            cs.insert(Clause::from_literals([Literal::neg(x.clone())]));
            Literal::pos(x)
        }
        Formula::Atom(a) => Literal::pos(a.clone()),
        Formula::Not(inner) => tseitin(inner, cs, counter).negated(),
        Formula::And(l, r) => {
            let a = tseitin(l, cs, counter);
            let b = tseitin(r, cs, counter);
            let x = fresh(counter);
            let xl = Literal::pos(x);
            // x <-> a & b
            cs.insert(Clause::from_literals([xl.negated(), a.clone()]));
            cs.insert(Clause::from_literals([xl.negated(), b.clone()]));
            cs.insert(Clause::from_literals([
                xl.clone(),
                a.negated(),
                b.negated(),
            ]));
            xl
        }
        Formula::Or(l, r) => {
            let a = tseitin(l, cs, counter);
            let b = tseitin(r, cs, counter);
            let x = fresh(counter);
            let xl = Literal::pos(x);
            // x <-> a | b
            cs.insert(Clause::from_literals([xl.negated(), a.clone(), b.clone()]));
            cs.insert(Clause::from_literals([xl.clone(), a.negated()]));
            cs.insert(Clause::from_literals([xl.clone(), b.negated()]));
            xl
        }
        Formula::Implies(l, r) => {
            let expanded = Formula::Not(l.clone()).or(Formula::clone(r));
            tseitin(&expanded, cs, counter)
        }
        Formula::Iff(l, r) => {
            let a = tseitin(l, cs, counter);
            let b = tseitin(r, cs, counter);
            let x = fresh(counter);
            let xl = Literal::pos(x);
            // x <-> (a <-> b)
            cs.insert(Clause::from_literals([
                xl.negated(),
                a.negated(),
                b.clone(),
            ]));
            cs.insert(Clause::from_literals([
                xl.negated(),
                a.clone(),
                b.negated(),
            ]));
            cs.insert(Clause::from_literals([xl.clone(), a.clone(), b.clone()]));
            cs.insert(Clause::from_literals([
                xl.clone(),
                a.negated(),
                b.negated(),
            ]));
            xl
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::parse;
    use super::super::sat::{dpll_clauses, SatResult};
    use super::*;

    #[test]
    fn literal_display_and_negation() {
        let l = Literal::pos("p");
        assert_eq!(l.to_string(), "p");
        assert_eq!(l.negated().to_string(), "~p");
        assert_eq!(l.negated().negated(), l);
    }

    #[test]
    fn clause_tautology_detection() {
        let c = Clause::from_literals([Literal::pos("p"), Literal::neg("p")]);
        assert!(c.is_tautologous());
        let c = Clause::from_literals([Literal::pos("p"), Literal::neg("q")]);
        assert!(!c.is_tautologous());
    }

    #[test]
    fn empty_clause_displays_bottom() {
        assert_eq!(Clause::empty().to_string(), "⊥");
        assert!(Clause::empty().is_empty());
    }

    #[test]
    fn nnf_pushes_negations() {
        let f = parse("~(p & (q -> r))").unwrap();
        let nnf = f.to_nnf();
        assert_eq!(nnf.to_string(), "~p | q & ~r");
        assert!(f.equivalent(&nnf));
    }

    #[test]
    fn nnf_handles_iff_and_constants() {
        let f = parse("~(p <-> q)").unwrap();
        assert!(f.equivalent(&f.to_nnf()));
        assert_eq!(parse("~T").unwrap().to_nnf(), Formula::False);
        assert_eq!(parse("~F").unwrap().to_nnf(), Formula::True);
    }

    #[test]
    fn distributive_cnf_is_equivalent() {
        for src in [
            "p -> q",
            "~(p & q) <-> (~p | ~q)",
            "(p | q) & (r -> p)",
            "p <-> (q <-> r)",
            "~(p | (q & ~r))",
        ] {
            let f = parse(src).unwrap();
            let cnf = f.to_cnf();
            // Evaluate both over all valuations of the original atoms.
            let tt = super::super::eval::truth_table(&f).expect("few atoms");
            for (values, expected) in tt.rows() {
                let v: Valuation = tt
                    .atoms()
                    .iter()
                    .cloned()
                    .zip(values.iter().copied())
                    .collect();
                assert_eq!(cnf.eval(&v), *expected, "CNF mismatch for {src}");
            }
        }
    }

    #[test]
    fn cnf_of_true_and_false() {
        assert!(parse("T").unwrap().to_cnf().is_empty());
        assert!(parse("F").unwrap().to_cnf().contains_empty());
    }

    #[test]
    fn tseitin_is_equisatisfiable() {
        for (src, sat) in [
            ("p & ~p", false),
            ("p | ~p", true),
            ("(p -> q) & p & ~q", false),
            ("(p <-> q) & (q <-> r) & (p <-> ~r)", false),
            ("(p | q) & (~p | q) & (p | ~q)", true),
        ] {
            let f = parse(src).unwrap();
            let cs = f.to_cnf_tseitin();
            let result = dpll_clauses(&cs);
            assert_eq!(
                matches!(result, SatResult::Sat(_)),
                sat,
                "tseitin mismatch for {src}"
            );
        }
    }

    #[test]
    fn tseitin_linear_size() {
        // A formula whose distributive CNF would blow up: (a1&b1)|(a2&b2)|...
        let mut f = parse("a0 & b0").unwrap();
        for i in 1..12 {
            f = f.or(parse(&format!("a{i} & b{i}")).unwrap());
        }
        let ts = f.to_cnf_tseitin();
        assert!(ts.len() < 200, "tseitin produced {} clauses", ts.len());
    }

    #[test]
    fn clause_set_display_and_eval() {
        let f = parse("(p | q) & ~r").unwrap();
        let cs = f.to_cnf();
        let v = Valuation::new().with("p", true).with("r", false);
        assert!(cs.eval(&v));
        let v = Valuation::new().with("r", true).with("p", true);
        assert!(!cs.eval(&v));
        assert!(cs.to_string().contains('&'));
    }

    #[test]
    fn clause_set_atoms() {
        let cs = parse("(p | q) & ~r").unwrap().to_cnf();
        let names: Vec<_> = cs
            .atoms()
            .into_iter()
            .map(|a| a.name().to_string())
            .collect();
        assert_eq!(names, vec!["p", "q", "r"]);
    }
}
