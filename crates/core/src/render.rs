//! Renderers: ASCII tree, GraphViz DOT, and prose.
//!
//! The paper (§II-B, citing Holloway) notes that opinions differ on whether
//! graphical or textual presentations communicate best; providing all three
//! lets the reading-audience experiment (§VI-C) vary notation as a
//! treatment.

use crate::argument::{Argument, NodeIdx};
use crate::node::{EdgeKind, FormalPayload, NodeKind};
use std::fmt::Write as _;

/// Renders the argument as an ASCII tree from its roots.
///
/// Nodes reachable by several paths are printed once; later occurrences
/// are abbreviated `(see <id>)`.
pub fn ascii_tree(argument: &Argument) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", argument.name());
    let mut seen = vec![false; argument.len()];
    let roots: Vec<NodeIdx> = argument.sorted_roots_idx().collect();
    for (i, &root) in roots.iter().enumerate() {
        tree_node(
            argument,
            root,
            "",
            i + 1 == roots.len(),
            &mut out,
            &mut seen,
        );
    }
    out
}

fn tree_node(
    argument: &Argument,
    idx: NodeIdx,
    prefix: &str,
    last: bool,
    out: &mut String,
    seen: &mut [bool],
) {
    let node = argument.node_at(idx);
    let connector = if last { "`-- " } else { "|-- " };
    let mut label = format!("[{}] {}: {}", node.id, node.kind, node.text);
    if let Some(p) = &node.formal {
        let _ = write!(label, "  ⟦{p}⟧");
    }
    if node.undeveloped {
        label.push_str("  (undeveloped)");
    }
    if seen[idx.index()] {
        let _ = writeln!(out, "{prefix}{connector}(see {})", node.id);
        return;
    }
    seen[idx.index()] = true;
    let _ = writeln!(out, "{prefix}{connector}{label}");
    let child_prefix = format!("{prefix}{}", if last { "    " } else { "|   " });
    let children: Vec<NodeIdx> = argument.all_children_idx(idx).collect();
    for (i, &child) in children.iter().enumerate() {
        tree_node(
            argument,
            child,
            &child_prefix,
            i + 1 == children.len(),
            out,
            seen,
        );
    }
}

/// Renders the argument as GraphViz DOT, with GSN-conventional shapes
/// (goals as boxes, strategies as parallelograms, solutions as circles,
/// context as rounded boxes).
pub fn dot(argument: &Argument) -> String {
    let mut out = String::from("digraph argument {\n  rankdir=TB;\n");
    for node in argument.nodes() {
        let shape = match node.kind {
            NodeKind::Goal | NodeKind::Claim => "box",
            NodeKind::Strategy | NodeKind::ArgumentNode => "parallelogram",
            NodeKind::Solution | NodeKind::Evidence => "circle",
            NodeKind::Context => "box",
            NodeKind::Assumption | NodeKind::Justification => "ellipse",
        };
        let style = match node.kind {
            NodeKind::Context => ", style=rounded",
            _ => "",
        };
        let mut label = format!("{}\\n{}", node.id, escape_dot(&node.text));
        if let Some(p) = &node.formal {
            let _ = write!(label, "\\n{}", escape_dot(&p.render()));
        }
        let _ = writeln!(
            out,
            "  {} [shape={shape}{style}, label=\"{label}\"];",
            node.id
        );
    }
    for edge in argument.edges() {
        let attrs = match edge.kind {
            EdgeKind::SupportedBy => "[arrowhead=normal]",
            EdgeKind::InContextOf => "[arrowhead=empty, style=dashed]",
        };
        let _ = writeln!(out, "  {} -> {} {attrs};", edge.from, edge.to);
    }
    out.push_str("}\n");
    out
}

fn escape_dot(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the argument as structured prose, one paragraph per goal —
/// the presentation Holloway's "non-graphically inclined" readers prefer.
pub fn prose(argument: &Argument) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Argument: {}\n", argument.name());
    let roots: Vec<NodeIdx> = argument.sorted_roots_idx().collect();
    for root in roots {
        // Fresh visited set per root: a node shared between two roots'
        // arguments is narrated under both (prose has no `(see ...)`
        // cross-reference, unlike the tree renderers).
        let mut seen = vec![false; argument.len()];
        prose_node(argument, root, 0, &mut out, &mut seen);
    }
    out
}

fn prose_node(
    argument: &Argument,
    idx: NodeIdx,
    depth: usize,
    out: &mut String,
    seen: &mut [bool],
) {
    let node = argument.node_at(idx);
    if seen[idx.index()] {
        return;
    }
    seen[idx.index()] = true;
    let number = "  ".repeat(depth);
    match node.kind {
        NodeKind::Goal | NodeKind::Claim => {
            let _ = write!(out, "{number}We claim that {} ({}).", node.text, node.id);
            if let Some(FormalPayload::Prop(f)) = &node.formal {
                let _ = write!(out, " Formally: {f}.");
            }
            if let Some(FormalPayload::Temporal(f)) = &node.formal {
                let _ = write!(out, " Formally (LTL): {f}.");
            }
            for c_idx in argument.children_idx(idx, EdgeKind::InContextOf) {
                let c = argument.node_at(c_idx);
                let _ = write!(
                    out,
                    " {} {} ({}).",
                    prose_context_lead(c.kind),
                    c.text,
                    c.id
                );
            }
            let support: Vec<NodeIdx> = argument.children_idx(idx, EdgeKind::SupportedBy).collect();
            if support.is_empty() {
                if node.undeveloped {
                    let _ = writeln!(out, " This claim is not yet developed.");
                } else {
                    let _ = writeln!(out);
                }
            } else {
                let _ = writeln!(out, " This is supported as follows.");
                for s in support {
                    prose_node(argument, s, depth + 1, out, seen);
                }
            }
        }
        NodeKind::Strategy | NodeKind::ArgumentNode => {
            let _ = writeln!(out, "{number}Arguing {} ({}):", node.text, node.id);
            let support: Vec<NodeIdx> = argument.children_idx(idx, EdgeKind::SupportedBy).collect();
            for s in support {
                prose_node(argument, s, depth + 1, out, seen);
            }
        }
        NodeKind::Solution | NodeKind::Evidence => {
            let _ = writeln!(out, "{number}Evidence: {} ({}).", node.text, node.id);
        }
        NodeKind::Context | NodeKind::Assumption | NodeKind::Justification => {
            let _ = writeln!(
                out,
                "{number}{} {} ({}).",
                prose_context_lead(node.kind),
                node.text,
                node.id
            );
        }
    }
}

fn prose_context_lead(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::Context => "In the context of",
        NodeKind::Assumption => "Assuming that",
        NodeKind::Justification => "This approach is justified because",
        _ => "Note:",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_argument;

    fn sample() -> Argument {
        parse_argument(
            r#"argument "demo" {
                goal g1 "System is safe" formal "h1 & h2" {
                  context c1 "Operational role"
                  strategy s1 "Argue over hazards" {
                    goal g2 "H1 mitigated" formal "h1" {
                      solution e1 "Fault tree analysis"
                    }
                    goal g3 "H2 mitigated" undeveloped
                  }
                }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn ascii_tree_shape() {
        let t = ascii_tree(&sample());
        assert!(t.starts_with("demo\n"));
        assert!(t.contains("`-- [g1] goal: System is safe"));
        assert!(t.contains("⟦h1 & h2⟧"));
        assert!(t.contains("(undeveloped)"));
        // g2 and g3 are siblings under s1; the non-last uses |--.
        assert!(t.contains("|-- [g2]"));
        assert!(t.contains("`-- [g3]"));
    }

    #[test]
    fn ascii_tree_handles_dags() {
        let a = parse_argument(
            r#"argument "dag" {
                goal g1 "top" {
                  goal g2 "shared" { solution e1 "ev" }
                  strategy s1 "reuse" { ref g2 }
                }
            }"#,
        )
        .unwrap();
        let t = ascii_tree(&a);
        assert!(t.contains("(see g2)"));
    }

    #[test]
    fn dot_contains_nodes_edges_and_styles() {
        let d = dot(&sample());
        assert!(d.starts_with("digraph"));
        assert!(d.contains("g1 [shape=box"));
        assert!(d.contains("s1 [shape=parallelogram"));
        assert!(d.contains("e1 [shape=circle"));
        assert!(d.contains("c1 [shape=box, style=rounded"));
        assert!(d.contains("g1 -> s1 [arrowhead=normal]"));
        assert!(d.contains("g1 -> c1 [arrowhead=empty, style=dashed]"));
        assert!(d.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_escapes_quotes() {
        let a =
            parse_argument(r#"argument "q" { goal g1 "say \"hi\"" { solution e1 "s" } }"#).unwrap();
        let d = dot(&a);
        assert!(d.contains("say \\\"hi\\\""));
    }

    #[test]
    fn prose_reads_top_down() {
        let p = prose(&sample());
        assert!(p.contains("We claim that System is safe (g1). Formally: h1 & h2."));
        assert!(p.contains("In the context of Operational role (c1)."));
        assert!(p.contains("Arguing Argue over hazards (s1):"));
        assert!(p.contains("Evidence: Fault tree analysis (e1)."));
        assert!(p.contains("This claim is not yet developed."));
    }

    #[test]
    fn prose_mentions_assumptions_and_justifications() {
        let a = parse_argument(
            r#"argument "aj" {
                goal g1 "claim" {
                  assumption a1 "failures independent"
                  justification j1 "standard practice"
                  solution e1 "data"
                }
            }"#,
        )
        .unwrap();
        let p = prose(&a);
        assert!(p.contains("Assuming that failures independent (a1)."));
        assert!(p.contains("This approach is justified because standard practice (j1)."));
    }

    #[test]
    fn prose_narrates_shared_support_under_every_root() {
        // Two roots citing the same evidence: prose has no cross-reference
        // marker, so the shared node must be narrated under both roots.
        let a = Argument::builder("two-roots")
            .add("r1", NodeKind::Goal, "Root one")
            .add("r2", NodeKind::Goal, "Root two")
            .add("e", NodeKind::Solution, "Shared evidence")
            .supported_by("r1", "e")
            .supported_by("r2", "e")
            .build()
            .unwrap();
        let p = prose(&a);
        assert_eq!(p.matches("Evidence: Shared evidence (e).").count(), 2);
    }

    #[test]
    fn empty_argument_renders() {
        let a = Argument::builder("empty").build().unwrap();
        assert_eq!(ascii_tree(&a), "empty\n");
        assert!(dot(&a).contains("digraph"));
        assert!(prose(&a).contains("Argument: empty"));
    }
}
