//! Two more surveyed proposal classes, end to end:
//!
//! 1. Basir–Denney–Fischer (§III-E): *generate* a GSN argument from a
//!    checked natural-deduction proof, in both the surveyed tools' literal
//!    phrasing and proper propositional phrasing, then abstract away the
//!    proof clutter their papers complain about.
//! 2. Tolchinsky et al. (§III-O): a deliberation dialogue over a
//!    safety-critical action, where the verdict changes non-monotonically
//!    as arguments arrive.
//!
//! Run with: `cargo run --example proof_to_argument`

use casekit::core::autogen::{generate_abstracted, generate_argument, ProofStyle};
use casekit::core::render;
use casekit::logic::af::{Deliberation, Verdict};
use casekit::logic::nd::Proof;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Proof → argument. ----
    let proof = Proof::haley_example();
    println!("Source proof ({} lines):\n{proof}", proof.len());

    let literal = generate_argument(&proof, ProofStyle::Literal)?;
    println!(
        "literal generation: {} nodes (root text: {:?})",
        literal.len(),
        literal.node(&"g11".into()).unwrap().text
    );

    let full = generate_argument(&proof, ProofStyle::Propositional)?;
    let abstracted = generate_abstracted(&proof, ProofStyle::Propositional)?;
    println!(
        "propositional generation: {} nodes; after abstraction: {} nodes",
        full.len(),
        abstracted.len()
    );
    println!(
        "\n--- abstracted argument ---\n{}",
        render::ascii_tree(&abstracted)
    );

    // ---- Deliberation dialogue. ----
    let mut dialogue = Deliberation::open("transplant(organ1, recipient_r)");
    println!("proposal submitted: verdict {:?}", dialogue.verdict());
    let objection = dialogue.object("donor history indicates hepatitis risk", 0)?;
    println!("objection raised:   verdict {:?}", dialogue.verdict());
    let rebuttal = dialogue.object("serology panel rules the risk out", objection)?;
    println!("rebuttal accepted:  verdict {:?}", dialogue.verdict());
    dialogue.object("panel used an expired reagent batch", rebuttal)?;
    println!("rebuttal undercut:  verdict {:?}", dialogue.verdict());
    assert_eq!(dialogue.verdict(), Verdict::Rejected);
    println!(
        "\nverdict history (non-monotone): {:?}",
        dialogue.verdict_history()
    );
    Ok(())
}
