//! Benchmarks that regenerate the paper's own exhibits: Table I, the
//! claim aggregates, Figure 1, the Haley proof, and the Greenwell counts.
//! Each iteration runs the full generating pipeline, so these double as
//! end-to-end smoke tests under measurement.

// `criterion_group!`/`criterion_main!` expand to undocumented harness fns.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table_i(c: &mut Criterion) {
    c.bench_function("table_i_full_pipeline", |b| {
        b.iter(|| {
            let pool = casekit_survey::corpus::raw_pool();
            let phase1 = casekit_survey::selection::phase1(black_box(&pool));
            casekit_survey::tables::table_i(&phase1)
        });
    });
}

fn bench_claims(c: &mut Criterion) {
    c.bench_function("claims_aggregates", |b| {
        b.iter(casekit_survey::characterise::aggregates);
    });
}

fn bench_figure_1(c: &mut Criterion) {
    let kb = casekit_logic::fol::desert_bank_kb();
    let goal = casekit_logic::fol::parse_query("adjacent(desert_bank, river)").unwrap();
    c.bench_function("figure_1_derivation", |b| {
        b.iter(|| black_box(&kb).proves(black_box(&goal)));
    });
    c.bench_function("figure_1_sort_lints", |b| {
        b.iter(|| {
            (
                casekit_logic::sorts::SortRegistry::infer_conflicts(black_box(&kb)),
                casekit_logic::sorts::SortRegistry::infer_conflicts_linked(black_box(&kb)),
            )
        });
    });
}

fn bench_haley(c: &mut Criterion) {
    c.bench_function("haley_build_and_check", |b| {
        b.iter(|| {
            let proof = casekit_logic::nd::Proof::haley_example();
            proof.check().map(|()| proof.len())
        });
    });
}

fn bench_greenwell(c: &mut Criterion) {
    c.bench_function("greenwell_reconstruction_and_check", |b| {
        b.iter(|| {
            let cases = casekit_experiments::generator::greenwell_case_studies();
            cases
                .iter()
                .map(|cs| {
                    casekit_fallacies::checker::check_argument(&cs.argument)
                        .findings
                        .len()
                })
                .sum::<usize>()
        });
    });
}

criterion_group!(
    benches,
    bench_table_i,
    bench_claims,
    bench_figure_1,
    bench_haley,
    bench_greenwell
);
criterion_main!(benches);
