//! Statistics for the simulated studies: descriptives, two-sample tests,
//! agreement, and effect sizes.
//!
//! P-values use the standard normal approximation (adequate for the
//! sample sizes the harness generates, n ≥ 20 per arm); this is stated
//! rather than hidden because the experiments report the statistic itself
//! alongside the p-value.

/// Descriptive statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Descriptives {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub sd: f64,
    /// Standard error of the mean.
    pub se: f64,
    /// 95% confidence half-width (normal approximation).
    pub ci95: f64,
}

/// Computes descriptives.
///
/// # Panics
///
/// Panics on an empty sample.
pub fn describe(sample: &[f64]) -> Descriptives {
    assert!(!sample.is_empty(), "cannot describe an empty sample");
    let n = sample.len();
    let mean = sample.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let sd = var.sqrt();
    let se = sd / (n as f64).sqrt();
    Descriptives {
        n,
        mean,
        sd,
        se,
        ci95: 1.96 * se,
    }
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(z: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26 via erf.
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Result of a two-sample test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic (t or z, per the test).
    pub statistic: f64,
    /// Two-sided p-value (normal approximation).
    pub p_value: f64,
}

/// Welch's unequal-variance t-test (two-sided, normal-approximated p).
///
/// # Panics
///
/// Panics if either sample has fewer than two observations.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> TestResult {
    assert!(a.len() >= 2 && b.len() >= 2, "need n ≥ 2 per sample");
    let da = describe(a);
    let db = describe(b);
    let se2 = da.sd.powi(2) / da.n as f64 + db.sd.powi(2) / db.n as f64;
    let t = if se2 == 0.0 {
        if da.mean == db.mean {
            0.0
        } else if da.mean > db.mean {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        }
    } else {
        (da.mean - db.mean) / se2.sqrt()
    };
    let p = if t.is_infinite() {
        0.0
    } else {
        2.0 * (1.0 - normal_cdf(t.abs()))
    };
    TestResult {
        statistic: t,
        p_value: p.clamp(0.0, 1.0),
    }
}

/// Mann–Whitney U test (two-sided, normal approximation with tie-free
/// variance; ties get midranks).
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> TestResult {
    assert!(!a.is_empty() && !b.is_empty(), "need non-empty samples");
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;
    // Midranks over the pooled sample.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&x| (x, 0usize))
        .chain(b.iter().map(|&x| (x, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("no NaNs in samples"));
    let mut ranks = vec![0f64; pooled.len()];
    let mut i = 0;
    while i < pooled.len() {
        let mut j = i;
        while j + 1 < pooled.len() && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = midrank;
        }
        i = j + 1;
    }
    let r1: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, group), _)| *group == 0)
        .map(|(_, r)| *r)
        .sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;
    let mu = n1 * n2 / 2.0;
    let sigma = (n1 * n2 * (n1 + n2 + 1.0) / 12.0).sqrt();
    let z = if sigma == 0.0 { 0.0 } else { (u1 - mu) / sigma };
    TestResult {
        statistic: z,
        p_value: (2.0 * (1.0 - normal_cdf(z.abs()))).clamp(0.0, 1.0),
    }
}

/// Cohen's d (pooled-SD standardised mean difference).
///
/// # Panics
///
/// Panics if either sample has fewer than two observations.
pub fn cohens_d(a: &[f64], b: &[f64]) -> f64 {
    assert!(a.len() >= 2 && b.len() >= 2, "need n ≥ 2 per sample");
    let da = describe(a);
    let db = describe(b);
    let pooled = (((da.n - 1) as f64 * da.sd.powi(2) + (db.n - 1) as f64 * db.sd.powi(2))
        / ((da.n + db.n - 2) as f64))
        .sqrt();
    if pooled == 0.0 {
        0.0
    } else {
        (da.mean - db.mean) / pooled
    }
}

/// Cohen's kappa for two raters over categorical labels.
///
/// Returns 1.0 for perfect agreement (including the degenerate
/// single-category case) and can be negative for worse-than-chance
/// agreement.
///
/// # Panics
///
/// Panics if the rating vectors differ in length or are empty.
pub fn cohens_kappa<T: PartialEq + Clone>(rater_a: &[T], rater_b: &[T]) -> f64 {
    assert_eq!(rater_a.len(), rater_b.len(), "paired ratings required");
    assert!(!rater_a.is_empty(), "need at least one item");
    let n = rater_a.len() as f64;
    let observed = rater_a.iter().zip(rater_b).filter(|(x, y)| x == y).count() as f64 / n;
    // Category marginals.
    let mut categories: Vec<T> = Vec::new();
    for item in rater_a.iter().chain(rater_b) {
        if !categories.contains(item) {
            categories.push(item.clone());
        }
    }
    let expected: f64 = categories
        .iter()
        .map(|c| {
            let pa = rater_a.iter().filter(|x| *x == c).count() as f64 / n;
            let pb = rater_b.iter().filter(|x| *x == c).count() as f64 / n;
            pa * pb
        })
        .sum();
    if (1.0 - expected).abs() < 1e-12 {
        if (observed - 1.0).abs() < 1e-12 {
            1.0
        } else {
            0.0
        }
    } else {
        (observed - expected) / (1.0 - expected)
    }
}

/// Mean pairwise agreement among k raters over binary judgments: the
/// fraction of rater pairs agreeing, averaged over items. 1.0 = everyone
/// always agrees.
///
/// # Panics
///
/// Panics with fewer than two raters or zero items, or ragged rows.
pub fn pairwise_agreement(ratings: &[Vec<bool>]) -> f64 {
    assert!(ratings.len() >= 2, "need at least two raters");
    let items = ratings[0].len();
    assert!(items > 0, "need at least one item");
    assert!(
        ratings.iter().all(|r| r.len() == items),
        "ragged rating matrix"
    );
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..ratings.len() {
        for j in i + 1..ratings.len() {
            pairs += 1;
            let agree = ratings[i]
                .iter()
                .zip(&ratings[j])
                .filter(|(x, y)| x == y)
                .count();
            total += agree as f64 / items as f64;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_basics() {
        let d = describe(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((d.mean - 5.0).abs() < 1e-12);
        assert!((d.sd - 2.138089935299395).abs() < 1e-9);
        assert_eq!(d.n, 8);
        assert!(d.ci95 > 0.0);
    }

    #[test]
    fn describe_single_point() {
        let d = describe(&[3.0]);
        assert_eq!(d.mean, 3.0);
        assert_eq!(d.sd, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn describe_empty_panics() {
        let _ = describe(&[]);
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(5.0) > 0.999);
    }

    #[test]
    fn welch_distinguishes_separated_samples() {
        let a: Vec<f64> = (0..30).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..30).map(|i| 12.0 + (i % 5) as f64 * 0.1).collect();
        let r = welch_t_test(&a, &b);
        assert!(r.statistic < -10.0);
        assert!(r.p_value < 0.001);
    }

    #[test]
    fn welch_accepts_identical_samples() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let r = welch_t_test(&a, &a);
        assert_eq!(r.statistic, 0.0);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn welch_zero_variance_distinct_means() {
        let r = welch_t_test(&[1.0, 1.0], &[2.0, 2.0]);
        assert!(r.statistic.is_infinite());
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    fn mann_whitney_detects_shift() {
        let a: Vec<f64> = (0..25).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..25).map(|i| i as f64 + 30.0).collect();
        let r = mann_whitney_u(&a, &b);
        assert!(r.p_value < 0.001);
    }

    #[test]
    fn mann_whitney_no_shift() {
        let a: Vec<f64> = (0..25).map(|i| (i % 7) as f64).collect();
        let r = mann_whitney_u(&a, &a);
        assert!(r.p_value > 0.9);
    }

    #[test]
    fn mann_whitney_handles_ties() {
        let a = vec![1.0, 1.0, 2.0, 2.0];
        let b = vec![1.0, 2.0, 2.0, 2.0];
        let r = mann_whitney_u(&a, &b);
        assert!(r.p_value > 0.3);
    }

    #[test]
    fn cohens_d_magnitude() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let b = vec![3.0, 4.0, 5.0, 6.0, 7.0];
        let d = cohens_d(&a, &b);
        assert!((d + 1.2649110640673518).abs() < 1e-9);
        assert_eq!(cohens_d(&a, &a), 0.0);
    }

    #[test]
    fn kappa_perfect_and_chance() {
        let a = vec!["x", "y", "x", "y"];
        assert!((cohens_kappa(&a, &a) - 1.0).abs() < 1e-12);
        // Independent-looking ratings: kappa near zero.
        let r1 = vec!["x", "x", "y", "y"];
        let r2 = vec!["x", "y", "x", "y"];
        let k = cohens_kappa(&r1, &r2);
        assert!(k.abs() < 1e-12);
    }

    #[test]
    fn kappa_worse_than_chance_is_negative() {
        let r1 = vec![true, false, true, false];
        let r2 = vec![false, true, false, true];
        assert!(cohens_kappa(&r1, &r2) < 0.0);
    }

    #[test]
    fn kappa_degenerate_single_category() {
        let r = vec!["same"; 5];
        assert_eq!(cohens_kappa(&r, &r), 1.0);
    }

    #[test]
    fn pairwise_agreement_bounds() {
        let all_agree = vec![vec![true, false], vec![true, false], vec![true, false]];
        assert!((pairwise_agreement(&all_agree) - 1.0).abs() < 1e-12);
        let half = vec![vec![true, true], vec![true, false]];
        assert!((pairwise_agreement(&half) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "two raters")]
    fn pairwise_agreement_needs_two() {
        let _ = pairwise_agreement(&[vec![true]]);
    }
}
