//! The service's load-bearing property: a random edit script applied
//! incrementally through [`CaseService`] yields verdict-for-verdict
//! identical answers — machine findings, fallacy codes, lint stream,
//! probe classification — to from-scratch recompilation after every
//! step, at every runtime worker count.
//!
//! The expected transcript replays the same op streams but answers
//! each query with [`batch_answers`] — fresh compilations that share
//! nothing with the incremental path (no payload cache, no witness
//! pool, no retained learned clauses, no step-verdict cache).

use casekit_analysis::LintConfig;
use casekit_core::dsl::parse_argument;
use casekit_core::{Argument, FormalPayload, Node, NodeKind};
use casekit_logic::prop::Formula;
use casekit_runtime::Runtime;
use casekit_service::{batch_transcript, CaseAnswers, CaseOp, CaseService, EditOp};
use proptest::prelude::*;

/// Arbitrary shallow formulas over a small alphabet (the same shape the
/// lint property tests use, so solver rounds stay microseconds-scale).
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        prop_oneof![Just("p"), Just("q"), Just("r"), Just("s")].prop_map(Formula::atom),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.implies(b)),
        ]
    })
}

const PREMISES: usize = 3;

/// The fixed skeleton every script starts from: a conclusion over a
/// strategy over `PREMISES` formal premise goals.
fn seed_case() -> Argument {
    parse_argument(
        r#"argument "seed" {
            goal g0 "top claim" formal "q" {
              strategy s0 "decompose" {
                goal pr0 "premise 0" formal "p" { solution ev0 "record 0" }
                goal pr1 "premise 1" formal "p -> q" { solution ev1 "record 1" }
                goal pr2 "premise 2" formal "r" { solution ev2 "record 2" }
              }
            }
        }"#,
    )
    .unwrap()
}

/// A formula-edit target: one of the premises or the conclusion.
fn target_id(i: usize) -> casekit_core::NodeId {
    if i == PREMISES {
        "g0".into()
    } else {
        casekit_core::NodeId::new(format!("pr{i}"))
    }
}

/// One random edit. Structural ops draw ids from a tiny `x0..x5` pool,
/// so scripts naturally exercise the error paths too (duplicate adds,
/// removes of never-added nodes) — failed edits must leave the session
/// on its last valid revision, still in agreement.
fn edit_strategy() -> impl Strategy<Value = EditOp> {
    prop_oneof![
        (0..PREMISES + 1, formula_strategy()).prop_map(|(i, formula)| {
            EditOp::ReplaceFormula {
                node: target_id(i),
                formula,
            }
        }),
        (0..PREMISES + 1, 0..4u8).prop_map(|(i, t)| EditOp::SetText {
            node: target_id(i),
            text: format!("all inputs are revision {t}"),
        }),
        (0..6u8, formula_strategy()).prop_map(|(x, formula)| EditOp::AddSupport {
            parent: "s0".into(),
            node: Node::new(
                casekit_core::NodeId::new(format!("x{x}")),
                NodeKind::Goal,
                "extra premise"
            )
            .with_formal(FormalPayload::Prop(formula)),
        }),
        (0..6u8).prop_map(|x| EditOp::RemoveNode {
            node: casekit_core::NodeId::new(format!("x{x}")),
        }),
    ]
}

/// A traffic stream: query the seed, then query after every edit.
fn stream_strategy() -> impl Strategy<Value = Vec<CaseOp>> {
    collection::vec(edit_strategy(), 1..8).prop_map(|edits| {
        let mut ops = vec![CaseOp::Query];
        for edit in edits {
            ops.push(CaseOp::Edit(edit));
            ops.push(CaseOp::Query);
        }
        ops
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every incremental answer equals the from-scratch answer, after
    /// every step, at workers 1, 2, and 4.
    #[test]
    fn incremental_answers_agree_with_batch_at_every_worker_count(
        traffic in collection::vec(stream_strategy(), 1..4)
    ) {
        let config = LintConfig::new();
        let expected: Vec<Vec<CaseAnswers>> = traffic
            .iter()
            .map(|ops| batch_transcript(&seed_case(), ops, &config))
            .collect();
        for workers in [1usize, 2, 4] {
            let mut service = CaseService::new();
            for _ in 0..traffic.len() {
                service.open(seed_case());
            }
            let transcript = service.drive(&traffic, &Runtime::with_workers(workers));
            prop_assert_eq!(&transcript, &expected, "workers = {}", workers);
        }
    }
}
