//! Linear temporal logic, after Brunel & Cazin's formalised safety
//! argumentation (Graydon §III-G).
//!
//! Claims such as *"the Detect-and-Avoid function is correct"* are
//! formalised as LTL formulas like
//! `G (below_min -> (nonzero U above_min))` and evaluated over traces of
//! the system model, or checked over a [`Kripke`] structure by bounded
//! lasso enumeration.
//!
//! ```
//! use casekit_logic::ltl::{parse_ltl, Trace};
//!
//! let f = parse_ltl("G (request -> F grant)").unwrap();
//! let trace = Trace::lasso(
//!     vec![vec!["request"], vec![], vec!["grant"]],
//!     vec![vec![]],
//! );
//! assert!(trace.satisfies(&f));
//! ```

mod ast;
mod kripke;
mod parser;
mod trace;

pub use ast::Ltl;
pub use kripke::{CheckResult, Kripke, StateId};
pub use parser::parse_ltl;
pub use trace::Trace;
