//! `caselint` — lint assurance-case DSL files from the command line.
//!
//! ```text
//! caselint [--deny] [--allow CODE]... [--level CODE=LEVEL]... <FILE|DIR>...
//! ```
//!
//! Each `.case` file (or every `.case` file under a directory, sorted)
//! is parsed with the error-recovering core DSL frontend and linted
//! with the full pass set. Malformed files no longer stop at the first
//! error: every recovered syntax error is reported as a `CK2xx`
//! diagnostic, and whatever argument survived recovery is still linted.
//! Diagnostics print one per line as
//! `file:line:col: severity[code]: message` followed by a caret excerpt
//! of the offending source line. Exit status is 1 if any diagnostic of
//! error severity is emitted, 0 otherwise.
//!
//! `--deny` promotes every lint to deny level (any diagnostic is an
//! error) — the mode CI uses over the example corpus. `--list` prints
//! the lint registry and exits.

#![forbid(unsafe_code)]

use casekit_analysis::{check_source, excerpt, Level, LintCode, LintConfig, Severity};
use casekit_logic::LineIndex;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: caselint [--deny] [--allow CODE]... [--level CODE=LEVEL]... <FILE|DIR>...\n\
     \x20      caselint --list"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("caselint: {message}");
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut config = LintConfig::new();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for descriptor in LintCode::ALL.iter().map(|c| c.descriptor()) {
                    println!(
                        "{} {:30} {:5} {}",
                        descriptor.code.as_str(),
                        descriptor.name,
                        descriptor.default_level,
                        descriptor.summary
                    );
                }
                return Ok(true);
            }
            "--deny" => config = LintConfig::deny_all(),
            "--allow" => {
                let code = iter.next().ok_or("--allow needs a lint code")?;
                let code = LintCode::parse(code).ok_or_else(|| format!("unknown lint `{code}`"))?;
                config.set(code, Level::Allow);
            }
            "--level" => {
                let spec = iter.next().ok_or("--level needs CODE=LEVEL")?;
                let (code, level) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("bad --level spec `{spec}` (want CODE=LEVEL)"))?;
                let code = LintCode::parse(code).ok_or_else(|| format!("unknown lint `{code}`"))?;
                let level: Level = level.parse().map_err(|e: String| e)?;
                config.set(code, level);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    if paths.is_empty() {
        return Err("no input files".into());
    }

    let mut files: Vec<PathBuf> = Vec::new();
    for path in &paths {
        collect_cases(path, &mut files)?;
    }
    files.sort();
    files.dedup();
    if files.is_empty() {
        return Err("no .case files found under the given paths".into());
    }

    let mut clean = true;
    let mut total = 0usize;
    for file in &files {
        let source =
            std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        let analysis = check_source(&source, &config);
        let index = LineIndex::new(&source);
        for diagnostic in &analysis.diagnostics {
            match diagnostic.span {
                Some(span) => {
                    let (line, col) = index.line_col(span.start);
                    println!("{}:{line}:{col}: {diagnostic}", file.display());
                    if let Some(lines) = excerpt(&source, &index, span) {
                        println!("{lines}");
                    }
                }
                None => println!("{}: {diagnostic}", file.display()),
            }
            total += 1;
            if diagnostic.severity == Severity::Error {
                clean = false;
            }
        }
    }
    eprintln!("caselint: {} file(s), {} diagnostic(s)", files.len(), total);
    Ok(clean)
}

/// Pushes `path` if it is a `.case` file, or every `.case` file under it
/// (recursively, sorted for determinism) if it is a directory.
fn collect_cases(path: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let meta = std::fs::metadata(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if meta.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            if entry.is_dir() || entry.extension().is_some_and(|ext| ext == "case") {
                collect_cases(&entry, out)?;
            }
        }
    } else {
        out.push(path.to_path_buf());
    }
    Ok(())
}
