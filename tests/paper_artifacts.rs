//! Cross-crate verification of every paper artefact DESIGN.md promises:
//! the encoded facts must match the published numbers *exactly*.

use casekit::experiments::generator;
use casekit::fallacies::checker::check_argument;
use casekit::fallacies::taxonomy::InformalFallacy;
use casekit::logic::fol::{desert_bank_kb, parse_query};
use casekit::logic::nd::Proof;
use casekit::survey::{corpus, selection, tables, Library};

#[test]
fn t1_table_i_exact() {
    let pool = corpus::raw_pool();
    let (phase1, phase2) = selection::run_pipeline(&pool);
    let t = tables::table_i(&phase1);
    assert_eq!(
        t.rows,
        vec![
            (Library::IeeeXplore, 12, 13),
            (Library::AcmDl, 17, 7),
            (Library::SpringerLink, 24, 2),
            (Library::GoogleScholar, 8, 1),
        ]
    );
    assert_eq!(
        (t.unique_total, t.unique_safety, t.unique_security),
        (72, 54, 23)
    );
    assert_eq!(phase2.len(), 20);
}

#[test]
fn f1_desert_bank_derivable_but_equivocating() {
    let kb = desert_bank_kb();
    assert_eq!(kb.len(), 3, "exactly the three clauses of Figure 1");
    assert!(kb.proves(&parse_query("adjacent(desert_bank, river)").unwrap()));
    // The strict lint sees the two-position use of `bank`; the linked
    // inference (like any form-only analysis) cannot.
    let strict = casekit::logic::sorts::SortRegistry::infer_conflicts(&kb);
    assert!(strict.contains_key("bank"));
    let linked = casekit::logic::sorts::SortRegistry::infer_conflicts_linked(&kb);
    assert!(!linked.contains_key("bank"));
}

#[test]
fn x1_haley_proof_eleven_lines_pass() {
    let proof = Proof::haley_example();
    assert_eq!(proof.len(), 11);
    assert!(proof.check().is_ok());
    assert_eq!(proof.conclusion().unwrap().to_string(), "D -> H");
    assert_eq!(proof.premises().len(), 5);
}

#[test]
fn x2_greenwell_counts_exact_and_machine_blind() {
    let cases = generator::greenwell_case_studies();
    assert_eq!(cases.len(), 3);
    // Per-kind totals: 3, 10, 2, 4, 5, 5, 16.
    for (kind, expected) in InformalFallacy::GREENWELL_KINDS
        .iter()
        .zip(InformalFallacy::GREENWELL_COUNTS)
    {
        let total: usize = cases
            .iter()
            .map(|c| c.counts().get(kind).copied().unwrap_or(0))
            .sum();
        assert_eq!(total, expected, "count for {kind}");
    }
    let grand: usize = cases.iter().map(|c| c.seeded.len()).sum();
    assert_eq!(grand, 45);
    // "None of seven kinds of fallacies found is strictly formal": the
    // machine checker finds nothing in any of the three arguments.
    for case in &cases {
        assert!(check_argument(&case.argument).is_clean());
    }
}

#[test]
fn x3_claim_aggregates_exact() {
    let agg = casekit::survey::characterise::aggregates();
    let to_vec = |s: &std::collections::BTreeSet<u8>| s.iter().copied().collect::<Vec<_>>();
    assert_eq!(to_vec(&agg.mechanical_benefit), vec![9, 11, 16, 17, 18, 39]);
    assert_eq!(
        to_vec(&agg.symbolic_content),
        vec![8, 9, 14, 15, 16, 19, 20, 22, 24, 25, 39]
    );
    assert_eq!(to_vec(&agg.explicit_verification), vec![9, 19, 20, 22]);
    assert_eq!(to_vec(&agg.formal_syntax), vec![11, 12, 17, 18]);
    assert_eq!(to_vec(&agg.informal_first), vec![9, 19, 22]);
    assert_eq!(to_vec(&agg.pattern_structure), vec![11, 17, 18]);
    assert_eq!(to_vec(&agg.pattern_parameters), vec![17, 18]);
    assert!(agg.substantial_evidence.is_empty());
    assert_eq!(to_vec(&agg.hypothesis_acknowledged), vec![19, 20]);
}

#[test]
fn thrust_reverser_formalisation_parses() {
    // §II-B2's example claim in both surface forms.
    let ascii = casekit::logic::prop::parse("~on_grnd -> ~threv_en").unwrap();
    let unicode = casekit::logic::prop::parse("¬on_grnd ⇒ ¬threv_en").unwrap();
    assert_eq!(ascii, unicode);
}

#[test]
fn socrates_syllogism_is_valid_barbara() {
    // §II-B3's deductive example, in the syllogism machinery.
    use casekit::fallacies::syllogism::{Form, Proposition, Syllogism};
    let s = Syllogism {
        major_premise: Proposition::new(Form::A, "men", "mortals"),
        minor_premise: Proposition::new(Form::A, "socrates", "men"),
        conclusion: Proposition::new(Form::A, "socrates", "mortals"),
    };
    assert!(s.is_valid(), "{:?}", s.check());
}

#[test]
fn wcet_premise_example_is_machine_invisible() {
    // §V-B: one can assert `wcet(task_1, 250)` on bad evidence; the
    // derivation still checks. Only the premise's pedigree is wrong, and
    // that is not visible to resolution.
    let kb = casekit::logic::fol::parse_program(
        "wcet(task_1, 250).\n\
         deadline(task_1, 300).\n\
         meets_deadline(T) :- wcet(T, W), deadline(T, D), leq(W, D).\n\
         leq(250, 300).",
    )
    .unwrap();
    assert!(kb.proves(&parse_query("meets_deadline(task_1)").unwrap()));
}
