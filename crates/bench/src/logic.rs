//! Logic-core benchmark harness: seeded populations of formalised
//! arguments, the pre-interned per-query entailment path, and the
//! batch solver-session path that replaced it.
//!
//! The seed decided every entailment question by rebuilding a `Formula`
//! (cloning premises into a conjunction), Tseitin-converting it into
//! `BTreeSet` clauses keyed by string atoms, and recursively solving
//! with `BTreeMap` valuations — once per step check, once for the root,
//! and once per premise probed. [`LegacyEntailment`] reproduces that
//! access pattern faithfully against the preserved
//! [`legacy`](casekit_logic::prop::legacy) solver, so the speedup stays
//! measurable after the hot path moved on. [`interned_sweep`] is the
//! replacement: one [`ArgumentTheory`] compilation per argument, every
//! question an assume/check/retract round. [`bench_logic_json`] emits
//! the comparison as `BENCH_logic.json` (via `repro logic`), with both
//! engines' verdicts checked identical.

use casekit_core::semantics::{formal_conclusion, formal_premises, ArgumentTheory};
use casekit_core::{Argument, EdgeKind, FormalPayload, NodeIdx, NodeKind};
use casekit_experiments::generator::{generate, GeneratorConfig, SeededFormal};
use casekit_logic::prop::{legacy, Formula, SatResult};
use serde::Serialize;
use std::time::Instant;

/// Generates a deterministic population of hazard-breakdown arguments
/// with formal payloads: a mix of clean, non-entailed (missing
/// support), and question-begging skeletons across a range of sizes.
pub fn seeded_population(count: usize, seed: u64) -> Vec<Argument> {
    (0..count)
        .map(|i| {
            let mut formal = Vec::new();
            if i % 3 == 1 {
                formal.push(SeededFormal::MissingSupport);
            }
            if i % 5 == 2 {
                formal.push(SeededFormal::Begging);
            }
            let config = GeneratorConfig {
                hazards: 8 + (i * 7) % 25,
                formal,
                informal: Vec::new(),
                seed: seed ^ (i as u64).wrapping_mul(0x9E37_79B9),
            };
            generate(&config)
                .expect("seeded population configs are valid")
                .case
                .argument
        })
        .collect()
}

/// Every entailment verdict a sweep produces for one argument. Both
/// engines must return exactly this, bit for bit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SweepVerdict {
    /// Per checkable support step, in arena order: is it deductive?
    pub steps: Vec<bool>,
    /// Do the formal premises entail the formal conclusion?
    pub root_entailed: Option<bool>,
    /// Per formal premise, in sorted order: is it critical to the
    /// conclusion? (Empty unless the root is entailed.)
    pub critical: Vec<bool>,
}

/// The pre-refactor entailment path, kept as a measurable baseline:
/// formula cloning + Tseitin to `BTreeSet` clauses + recursive DPLL,
/// one full rebuild per query.
pub struct LegacyEntailment;

impl LegacyEntailment {
    /// `premises ⊢ conclusion` the old way: clone everything into one
    /// conjunction and solve from scratch.
    fn entails(premises: &[Formula], conclusion: &Formula) -> bool {
        let theory = Formula::conj(premises.iter().cloned()).and(conclusion.clone().not());
        matches!(legacy::dpll(&theory), SatResult::Unsat)
    }

    /// Formalised children supporting `idx`, transitively skipping
    /// unformalised strategies — the seed's traversal, replicated so the
    /// baseline discovers exactly the steps the compiled theory checks.
    fn formalised_support_children(argument: &Argument, idx: NodeIdx) -> Vec<NodeIdx> {
        let mut out = Vec::new();
        for child_idx in argument.children_idx(idx, EdgeKind::SupportedBy) {
            let child = argument.node_at(child_idx);
            if child.is_formalised() {
                out.push(child_idx);
            } else if child.kind == NodeKind::Strategy {
                out.extend(Self::formalised_support_children(argument, child_idx));
            }
        }
        out
    }

    /// The full per-argument sweep at the pre-refactor cost: every step
    /// check, the root entailment, and every premise probe rebuilds and
    /// re-solves its own formula.
    pub fn sweep(argument: &Argument) -> SweepVerdict {
        let prop_payload = |idx: NodeIdx| match &argument.node_at(idx).formal {
            Some(FormalPayload::Prop(f)) => Some(f),
            _ => None,
        };

        let mut steps = Vec::new();
        for idx in argument.node_indices() {
            let Some(target) = prop_payload(idx) else {
                continue;
            };
            let children = Self::formalised_support_children(argument, idx);
            if children.is_empty() {
                continue;
            }
            let premises: Vec<Formula> = children
                .iter()
                .filter_map(|&c| prop_payload(c).cloned())
                .collect();
            if premises.is_empty() {
                continue;
            }
            steps.push(Self::entails(&premises, target));
        }

        let premises: Vec<Formula> = formal_premises(argument).into_iter().cloned().collect();
        let conclusion = formal_conclusion(argument).cloned();
        let root_entailed = match (&conclusion, premises.is_empty()) {
            (Some(c), false) => Some(Self::entails(&premises, c)),
            _ => None,
        };

        let critical = if root_entailed == Some(true) {
            let conclusion = conclusion.expect("entailed implies a conclusion");
            (0..premises.len())
                .map(|skip| {
                    let kept: Vec<Formula> = premises
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != skip)
                        .map(|(_, p)| p.clone())
                        .collect();
                    !Self::entails(&kept, &conclusion)
                })
                .collect()
        } else {
            Vec::new()
        };

        SweepVerdict {
            steps,
            root_entailed,
            critical,
        }
    }
}

/// The same sweep through the interned solver core: one theory
/// compilation, every question an assumption round.
pub fn interned_sweep(argument: &Argument) -> SweepVerdict {
    let mut theory = ArgumentTheory::compile(argument);
    let steps = theory
        .step_indices()
        .into_iter()
        .map(|idx| {
            theory
                .step_is_deductive(idx)
                .expect("step_indices are checkable")
        })
        .collect();
    let root_entailed = theory.root_entailed();
    let critical = if root_entailed == Some(true) {
        let report = theory.probe().expect("entailed implies a conclusion");
        report.impacts.iter().map(|i| i.is_critical()).collect()
    } else {
        Vec::new()
    };
    SweepVerdict {
        steps,
        root_entailed,
        critical,
    }
}

/// The measured comparison, serialized into `BENCH_logic.json`.
#[derive(Debug, Clone, Serialize)]
pub struct LogicBenchReport {
    /// Arguments in the seeded population.
    pub population: usize,
    /// Total entailment queries answered per engine (steps + roots +
    /// probes).
    pub queries: usize,
    /// Full legacy sweep (per-query clone + Tseitin + recursive DPLL),
    /// milliseconds (single run — it is slow by design).
    pub legacy_ms: f64,
    /// Full batch sweep (one compilation per argument, watched-literal
    /// sessions), milliseconds (best of several runs).
    pub interned_ms: f64,
    /// legacy / interned.
    pub speedup: f64,
    /// Sanity: both engines returned identical verdicts on every
    /// argument.
    pub verdicts_agree: bool,
}

/// Runs the comparison over a seeded population of `count` arguments.
pub fn run_logic_bench(count: usize) -> LogicBenchReport {
    let population = seeded_population(count, 0x10C1C);

    let start = Instant::now();
    let legacy_verdicts: Vec<SweepVerdict> =
        population.iter().map(LegacyEntailment::sweep).collect();
    let legacy_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut interned_ms = f64::INFINITY;
    let mut interned_verdicts: Vec<SweepVerdict> = Vec::new();
    for _ in 0..3 {
        let start = Instant::now();
        interned_verdicts = population.iter().map(interned_sweep).collect();
        interned_ms = interned_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }

    let queries = interned_verdicts
        .iter()
        .map(|v| v.steps.len() + usize::from(v.root_entailed.is_some()) + v.critical.len())
        .sum();

    LogicBenchReport {
        population: population.len(),
        queries,
        legacy_ms,
        interned_ms,
        speedup: legacy_ms / interned_ms.max(1e-9),
        verdicts_agree: legacy_verdicts == interned_verdicts,
    }
}

/// Renders the report as JSON (the `BENCH_logic.json` artifact).
pub fn bench_logic_json(report: &LogicBenchReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

/// Human-readable summary for the repro binary.
pub fn render_report(report: &LogicBenchReport) -> String {
    format!(
        "logic core batch entailment sweep over {} seeded theories / {} queries\n\
           legacy per-query (clone + Tseitin + recursive DPLL): {:>10.3} ms\n\
           interned batch (compile once + watched sessions):    {:>10.3} ms\n\
           speedup: {:.1}x   verdicts agree: {}\n",
        report.population,
        report.queries,
        report.legacy_ms,
        report.interned_ms,
        report.speedup,
        report.verdicts_agree
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic_and_mixed() {
        let a = seeded_population(12, 7);
        let b = seeded_population(12, 7);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
        // The defect mix yields both entailed and non-entailed roots.
        let verdicts: Vec<SweepVerdict> = a.iter().map(interned_sweep).collect();
        assert!(verdicts.iter().any(|v| v.root_entailed == Some(true)));
        assert!(verdicts.iter().any(|v| v.root_entailed == Some(false)));
    }

    #[test]
    fn engines_agree_verdict_for_verdict() {
        for argument in seeded_population(9, 42) {
            assert_eq!(
                LegacyEntailment::sweep(&argument),
                interned_sweep(&argument),
                "engine disagreement on {}",
                argument.name()
            );
        }
    }

    #[test]
    fn report_is_sane_at_small_scale() {
        // The acceptance-criteria 100+-theory run lives in the repro
        // binary; here we only check the harness plumbing.
        let report = run_logic_bench(6);
        assert!(report.verdicts_agree);
        assert_eq!(report.population, 6);
        assert!(report.queries > report.population);
        let json = bench_logic_json(&report);
        assert!(json.contains("\"speedup\""));
        assert!(render_report(&report).contains("verdicts agree: true"));
    }
}
