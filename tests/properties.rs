//! Property-based tests across the workspace: parser round-trips, solver
//! agreement, engine invariants, and structural closure properties.

use casekit::logic::fol::{unify, Substitution, Term};
use casekit::logic::prop::{self, Formula};
use proptest::prelude::*;

/// Strategy: arbitrary propositional formulas over a small atom alphabet.
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        prop_oneof![Just("p"), Just("q"), Just("r"), Just("s")]
            .prop_map(Formula::atom),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.iff(b)),
        ]
    })
}

/// Strategy: arbitrary ground-ish first-order terms.
fn term_strategy() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(Term::constant),
        prop_oneof![Just("X"), Just("Y"), Just("Z")].prop_map(Term::var),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        (
            prop_oneof![Just("f"), Just("g")],
            proptest::collection::vec(inner, 1..3),
        )
            .prop_map(|(functor, args)| Term::compound(functor, args))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn formula_display_parse_round_trip(f in formula_strategy()) {
        let printed = f.to_string();
        let reparsed = prop::parse(&printed).expect("rendered formula parses");
        prop_assert_eq!(f, reparsed);
    }

    #[test]
    fn dpll_agrees_with_truth_table(f in formula_strategy()) {
        let brute = prop::truth_table(&f).models() > 0;
        prop_assert_eq!(f.is_satisfiable(), brute);
    }

    #[test]
    fn nnf_preserves_equivalence(f in formula_strategy()) {
        prop_assert!(f.equivalent(&f.to_nnf()));
    }

    #[test]
    fn distributive_cnf_preserves_equivalence(f in formula_strategy()) {
        let cnf = f.to_cnf();
        let tt = prop::truth_table(&f);
        for (values, expected) in tt.rows() {
            let v: prop::Valuation = tt
                .atoms()
                .iter()
                .cloned()
                .zip(values.iter().copied())
                .collect();
            prop_assert_eq!(cnf.eval(&v), *expected);
        }
    }

    #[test]
    fn tseitin_is_equisatisfiable(f in formula_strategy()) {
        let direct = f.is_satisfiable();
        let via_tseitin = prop::dpll_clauses(&f.to_cnf_tseitin()).is_sat();
        prop_assert_eq!(direct, via_tseitin);
    }

    #[test]
    fn entailment_is_reflexive_and_supports_weakening(f in formula_strategy(), g in formula_strategy()) {
        prop_assert!(f.entails(&f));
        // f & g entails f.
        prop_assert!(f.clone().and(g).entails(&f));
    }

    #[test]
    fn unification_produces_a_unifier(a in term_strategy(), b in term_strategy()) {
        if let Some(s) = unify(&a, &b, &Substitution::new()) {
            prop_assert_eq!(s.apply(&a), s.apply(&b));
        }
    }

    #[test]
    fn unification_is_symmetric_in_success(a in term_strategy(), b in term_strategy()) {
        let fwd = unify(&a, &b, &Substitution::new()).is_some();
        let bwd = unify(&b, &a, &Substitution::new()).is_some();
        prop_assert_eq!(fwd, bwd);
    }

    #[test]
    fn renamed_clauses_share_no_variables(t in term_strategy()) {
        let renamed = t.rename_variables(7);
        for v in t.variables() {
            prop_assert!(!renamed.occurs(&v));
        }
    }
}

// Pattern instantiation is closed over GSN well-formedness for arbitrary
// hazard lists.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hazard_pattern_instances_always_well_formed(
        hazards in proptest::collection::vec("[a-z]{1,12}", 1..12),
        system in "[A-Za-z ]{1,20}",
    ) {
        use casekit::patterns::{library, Binding, ParamValue};
        let binding = Binding::new().with("system", system).with(
            "hazards",
            ParamValue::List(hazards.into_iter().map(ParamValue::Str).collect()),
        );
        let argument = library::hazard_directed_breakdown()
            .instantiate(&binding)
            .expect("well-typed binding instantiates");
        prop_assert!(casekit::core::gsn::check(&argument).is_empty());
        // And the DSL round-trips it.
        let rendered = casekit::core::dsl::render_dsl(&argument);
        let reparsed = casekit::core::dsl::parse_argument(&rendered).expect("round trip");
        prop_assert_eq!(argument.len(), reparsed.len());
    }

    #[test]
    fn query_results_are_subset_of_annotated_nodes(
        severities in proptest::collection::vec(0usize..3, 3..10),
    ) {
        use casekit::core::{Argument, NodeKind};
        use casekit::query::{parse_query, AnnotationStore, FieldType, Ontology};
        let names = ["catastrophic", "major", "minor"];
        let mut builder = Argument::builder("q").add("g_top", NodeKind::Goal, "top");
        for i in 0..severities.len() {
            builder = builder
                .add(&format!("g{i}"), NodeKind::Goal, &format!("hazard {i}"))
                .supported_by("g_top", &format!("g{i}"))
                .add(&format!("e{i}"), NodeKind::Solution, "ev")
                .supported_by(&format!("g{i}"), &format!("e{i}"));
        }
        let argument = builder.build().unwrap();
        let mut ontology = Ontology::new();
        ontology.declare_enum("severity", names);
        ontology.declare_attribute(
            "hazard",
            [("severity", FieldType::Enum("severity".into()))],
        );
        let mut store = AnnotationStore::new(ontology);
        for (i, s) in severities.iter().enumerate() {
            store
                .annotate(&argument, &format!("g{i}"), "hazard", [("severity", names[*s])])
                .unwrap();
        }
        let q = parse_query("select goals where hazard.severity = catastrophic").unwrap();
        let hits = q.run(&argument, &store);
        let expected = severities.iter().filter(|&&s| s == 0).count();
        prop_assert_eq!(hits.len(), expected);
    }
}

// Mutating any single line reference of a valid proof is caught.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nd_checker_rejects_reference_mutations(
        line in 5usize..11,
        delta in 1usize..4,
    ) {
        use casekit::logic::nd::{Proof, Rule};
        let good = Proof::haley_example();
        let mut mutated = Proof::new();
        for (i, l) in good.lines().iter().enumerate() {
            let number = i + 1;
            let rule = if number == line {
                match &l.rule {
                    Rule::Detach(a, b) => Rule::Detach(a.saturating_sub(delta).max(1), *b),
                    Rule::Split(a) => Rule::Split(a.saturating_sub(delta).max(1)),
                    Rule::Conclusion(a) => Rule::Conclusion(a.saturating_sub(delta).max(1)),
                    other => other.clone(),
                }
            } else {
                l.rule.clone()
            };
            mutated.add(l.formula.clone(), rule);
        }
        // Either the mutation was a no-op (reference unchanged) or the
        // checker rejects.
        if mutated != good {
            prop_assert!(mutated.check().is_err());
        }
    }
}
