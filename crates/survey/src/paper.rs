//! Paper records for the survey pipeline.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The digital libraries searched (Graydon §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Library {
    /// IEEE Xplore.
    IeeeXplore,
    /// ACM Digital Library (ACM and affiliated organisations only).
    AcmDl,
    /// Springer Link.
    SpringerLink,
    /// Google Scholar (case law and patents excluded).
    GoogleScholar,
}

impl Library {
    /// All four, in the paper's Table I order.
    pub const ALL: [Library; 4] = [
        Library::IeeeXplore,
        Library::AcmDl,
        Library::SpringerLink,
        Library::GoogleScholar,
    ];
}

impl fmt::Display for Library {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Library::IeeeXplore => "IEEE Xplore",
            Library::AcmDl => "ACM Digital Library",
            Library::SpringerLink => "Springer Link",
            Library::GoogleScholar => "Google Scholar",
        };
        f.write_str(name)
    }
}

/// The two search queries' domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Found via 'formal safety argument'.
    Safety,
    /// Found via 'formal security argument'.
    Security,
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Safety => f.write_str("Safety"),
            Domain::Security => f.write_str("Security"),
        }
    }
}

/// A (library, domain) attribution: the paper appeared in this library's
/// results for this query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Attribution {
    /// Which library returned it.
    pub library: Library,
    /// Which query returned it.
    pub domain: Domain,
}

/// Title/abstract-level screening signals (phase 1, Graydon §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbstractSignals {
    /// The title/abstract hints the paper concerns an assurance argument
    /// or related technology.
    pub hints_assurance_argument: bool,
    /// The paper is about an item of evidence rather than argument
    /// formalisation.
    pub evidence_item_only: bool,
    /// 'Formal' is used in a sense other than formalised syntax or
    /// symbolic/deductive logic.
    pub formal_other_sense: bool,
}

/// Full-text screening signals (phase 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FullTextSignals {
    /// The paper concerns a system for documenting support for a
    /// safety/security/dependability claim.
    pub documents_claim_support: bool,
    /// The paper discusses (even in passing) recording evidence-to-claim
    /// linkage using symbolic or deductive logic.
    pub discusses_formal_linkage: bool,
}

/// A surveyed paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Paper {
    /// Stable corpus id (`p01`…).
    pub id: String,
    /// Citation number in Graydon's reference list, for the real papers.
    pub ref_num: Option<u8>,
    /// Title (synthetic titles are marked).
    pub title: String,
    /// Publication year.
    pub year: u16,
    /// Where and under which query it surfaced.
    pub attributions: Vec<Attribution>,
    /// Phase-1 screening signals.
    pub abstract_signals: AbstractSignals,
    /// Phase-2 screening signals.
    pub fulltext_signals: FullTextSignals,
}

impl Paper {
    /// Whether the paper surfaced in `domain` at all.
    pub fn in_domain(&self, domain: Domain) -> bool {
        self.attributions.iter().any(|a| a.domain == domain)
    }

    /// Whether the paper surfaced in `library` under `domain`.
    pub fn attributed(&self, library: Library, domain: Domain) -> bool {
        self.attributions
            .iter()
            .any(|a| a.library == library && a.domain == domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Paper {
        Paper {
            id: "p01".into(),
            ref_num: Some(6),
            title: "Deriving safety cases from automatically constructed proofs".into(),
            year: 2009,
            attributions: vec![
                Attribution {
                    library: Library::IeeeXplore,
                    domain: Domain::Safety,
                },
                Attribution {
                    library: Library::SpringerLink,
                    domain: Domain::Safety,
                },
            ],
            abstract_signals: AbstractSignals {
                hints_assurance_argument: true,
                evidence_item_only: false,
                formal_other_sense: false,
            },
            fulltext_signals: FullTextSignals {
                documents_claim_support: true,
                discusses_formal_linkage: true,
            },
        }
    }

    #[test]
    fn domain_and_attribution_queries() {
        let p = sample();
        assert!(p.in_domain(Domain::Safety));
        assert!(!p.in_domain(Domain::Security));
        assert!(p.attributed(Library::IeeeXplore, Domain::Safety));
        assert!(!p.attributed(Library::IeeeXplore, Domain::Security));
        assert!(!p.attributed(Library::AcmDl, Domain::Safety));
    }

    #[test]
    fn display_names_match_table_i_rows() {
        assert_eq!(Library::IeeeXplore.to_string(), "IEEE Xplore");
        assert_eq!(Library::AcmDl.to_string(), "ACM Digital Library");
        assert_eq!(Library::SpringerLink.to_string(), "Springer Link");
        assert_eq!(Library::GoogleScholar.to_string(), "Google Scholar");
        assert_eq!(Domain::Safety.to_string(), "Safety");
        assert_eq!(Domain::Security.to_string(), "Security");
    }
}
