//! The two-phase selection criteria as executable predicates
//! (Graydon §III-C).

use crate::paper::Paper;

/// Why a paper was excluded in phase 1 (title/abstract screen).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase1Exclusion {
    /// No hint the paper concerns an assurance argument or related
    /// technology.
    NoAssuranceHint,
    /// About an item of evidence, not argument formalisation.
    EvidenceItem,
    /// 'Formal' used in another sense.
    FormalOtherSense,
}

/// Why a paper was excluded in phase 2 (full-text screen).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase2Exclusion {
    /// Not concerned with documenting support for a dependability claim.
    NotClaimSupport,
    /// Does not discuss symbolic/deductive evidence-to-claim linkage.
    NoFormalLinkage,
}

/// Screens one paper at title/abstract level.
pub fn screen_phase1(paper: &Paper) -> Result<(), Phase1Exclusion> {
    let s = paper.abstract_signals;
    if !s.hints_assurance_argument {
        return Err(Phase1Exclusion::NoAssuranceHint);
    }
    if s.evidence_item_only {
        return Err(Phase1Exclusion::EvidenceItem);
    }
    if s.formal_other_sense {
        return Err(Phase1Exclusion::FormalOtherSense);
    }
    Ok(())
}

/// Screens one paper at full-text level.
pub fn screen_phase2(paper: &Paper) -> Result<(), Phase2Exclusion> {
    let s = paper.fulltext_signals;
    if !s.documents_claim_support {
        return Err(Phase2Exclusion::NotClaimSupport);
    }
    if !s.discusses_formal_linkage {
        return Err(Phase2Exclusion::NoFormalLinkage);
    }
    Ok(())
}

/// Runs the phase-1 screen over a pool.
pub fn phase1(pool: &[Paper]) -> Vec<Paper> {
    pool.iter()
        .filter(|p| screen_phase1(p).is_ok())
        .cloned()
        .collect()
}

/// Runs the phase-2 screen over phase-1 survivors.
pub fn phase2(phase1_papers: &[Paper]) -> Vec<Paper> {
    phase1_papers
        .iter()
        .filter(|p| screen_phase2(p).is_ok())
        .cloned()
        .collect()
}

/// The full pipeline: raw pool → phase 1 → phase 2.
pub fn run_pipeline(pool: &[Paper]) -> (Vec<Paper>, Vec<Paper>) {
    let p1 = phase1(pool);
    let p2 = phase2(&p1);
    (p1, p2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn pipeline_reproduces_published_counts() {
        let pool = corpus::raw_pool();
        let (p1, p2) = run_pipeline(&pool);
        assert_eq!(p1.len(), 72, "phase 1 must keep the 72 unique papers");
        assert_eq!(p2.len(), 20, "phase 2 must yield the twenty selected");
    }

    #[test]
    fn phase1_rejects_each_criterion() {
        let rejects = corpus::phase1_rejects();
        let mut seen = [false; 3];
        for r in &rejects {
            match screen_phase1(r) {
                Err(Phase1Exclusion::NoAssuranceHint) => seen[0] = true,
                Err(Phase1Exclusion::EvidenceItem) => seen[1] = true,
                Err(Phase1Exclusion::FormalOtherSense) => seen[2] = true,
                Ok(()) => panic!("reject {} passed phase 1", r.id),
            }
        }
        assert!(seen.iter().all(|&s| s), "every exclusion reason exercised");
    }

    #[test]
    fn phase2_exclusion_reasons() {
        let pool = corpus::phase1_papers();
        // Sokolsky (ref 39) passes phase 1 but not phase 2.
        let sokolsky = pool.iter().find(|p| p.ref_num == Some(39)).unwrap();
        assert!(screen_phase1(sokolsky).is_ok());
        assert!(screen_phase2(sokolsky).is_err());
        // A synthetic phase-1-only paper is excluded for lacking claim
        // support documentation.
        let synthetic = pool.iter().find(|p| p.ref_num.is_none()).unwrap();
        assert_eq!(
            screen_phase2(synthetic),
            Err(Phase2Exclusion::NotClaimSupport)
        );
    }

    #[test]
    fn selected_papers_are_exactly_refs_6_to_25() {
        let pool = corpus::raw_pool();
        let (_, p2) = run_pipeline(&pool);
        let mut refs: Vec<u8> = p2.iter().filter_map(|p| p.ref_num).collect();
        refs.sort_unstable();
        let expected: Vec<u8> = (6..=25).collect();
        assert_eq!(refs, expected);
    }
}
