//! Serde round-trips for the data-structure types (C-SERDE): arguments,
//! proofs, patterns, survey records, and experiment configs must survive
//! JSON serialisation unchanged.

use casekit::core::dsl;
use casekit::logic::nd::Proof;

#[test]
fn argument_json_round_trip() {
    let arg = dsl::parse_argument(
        r#"argument "ser" {
            goal g1 "top" formal "a & b" {
              context c1 "scope"
              goal g2 "left" formal "a" { solution e1 "ev" }
              goal g3 "right" temporal "G ok" undeveloped
            }
        }"#,
    )
    .unwrap();
    let json = serde_json::to_string(&arg).unwrap();
    let back: casekit::core::Argument = serde_json::from_str(&json).unwrap();
    assert_eq!(arg, back);
}

#[test]
fn proof_json_round_trip() {
    let proof = Proof::haley_example();
    let json = serde_json::to_string(&proof).unwrap();
    let back: Proof = serde_json::from_str(&json).unwrap();
    assert_eq!(proof, back);
    assert!(back.check().is_ok());
}

#[test]
fn pattern_json_round_trip() {
    let pattern = casekit::patterns::library::hazard_directed_breakdown();
    let json = serde_json::to_string(&pattern).unwrap();
    let back: casekit::patterns::Pattern = serde_json::from_str(&json).unwrap();
    assert_eq!(pattern, back);
}

#[test]
fn survey_corpus_json_round_trip() {
    let papers = casekit::survey::corpus::phase1_papers();
    let json = serde_json::to_string(&papers).unwrap();
    let back: Vec<casekit::survey::Paper> = serde_json::from_str(&json).unwrap();
    assert_eq!(papers, back);
}

#[test]
fn knowledge_base_json_round_trip() {
    let kb = casekit::logic::fol::desert_bank_kb();
    let json = serde_json::to_string(&kb).unwrap();
    let back: casekit::logic::fol::KnowledgeBase = serde_json::from_str(&json).unwrap();
    assert_eq!(kb, back);
    assert!(back.proves(&casekit::logic::fol::parse_query("adjacent(desert_bank, river)").unwrap()));
}

#[test]
fn experiment_configs_round_trip() {
    use casekit::experiments::exp_a;
    let config = exp_a::Config::default();
    let json = serde_json::to_string(&config).unwrap();
    let back: exp_a::Config = serde_json::from_str(&json).unwrap();
    assert_eq!(config, back);
    // Same config → same results, even through serialisation.
    assert_eq!(exp_a::run(&config), exp_a::run(&back));
}

#[test]
fn narrative_json_round_trip() {
    use casekit::logic::ec::Narrative;
    use casekit::logic::fol::parse_term;
    let mut n = Narrative::new();
    n.initiates(
        parse_term("grant(U)").unwrap(),
        parse_term("access(U)").unwrap(),
    )
    .unwrap();
    n.happens(parse_term("grant(alice)").unwrap(), 2).unwrap();
    let json = serde_json::to_string(&n).unwrap();
    let back: Narrative = serde_json::from_str(&json).unwrap();
    assert_eq!(n, back);
    assert!(back.holds_at(&parse_term("access(alice)").unwrap(), 3));
}
