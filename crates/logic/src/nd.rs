//! A Fitch-style natural-deduction proof checker.
//!
//! The rule vocabulary follows the example in Haley et al.'s 2008 paper as
//! reproduced in Graydon §III-K: `Premise`, `Detach` (→-elimination, a.k.a.
//! modus ponens), `Split` (∧-elimination), and `Conclusion` (conditional
//! proof, discharging a premise). The usual complement of introduction and
//! elimination rules is also provided so hand-written proofs need not
//! contort themselves.
//!
//! The checker verifies each line *syntactically* against its cited rule —
//! this is exactly the "formal validation" whose value the paper questions:
//! a proof can check while resting on premises that misrepresent the world.
//!
//! # Example: the paper's eleven-line proof
//!
//! ```
//! use casekit_logic::nd::{Proof, Rule};
//! use casekit_logic::prop::parse;
//!
//! let mut proof = Proof::new();
//! proof.add(parse("I -> V").unwrap(), Rule::Premise);          // 1
//! proof.add(parse("C -> H").unwrap(), Rule::Premise);          // 2
//! proof.add(parse("Y -> V & C").unwrap(), Rule::Premise);      // 3
//! proof.add(parse("D -> Y").unwrap(), Rule::Premise);          // 4
//! proof.add(parse("D").unwrap(), Rule::Premise);               // 5
//! proof.add(parse("Y").unwrap(), Rule::Detach(4, 5));          // 6
//! proof.add(parse("V & C").unwrap(), Rule::Detach(3, 6));      // 7
//! proof.add(parse("V").unwrap(), Rule::Split(7));              // 8
//! proof.add(parse("C").unwrap(), Rule::Split(7));              // 9
//! proof.add(parse("H").unwrap(), Rule::Detach(2, 9));          // 10
//! proof.add(parse("D -> H").unwrap(), Rule::Conclusion(5));    // 11
//! assert!(proof.check().is_ok());
//! ```

use crate::error::LogicError;
use crate::prop::Formula;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The justification cited for a proof line.
///
/// Line references are 1-based, matching the printed form of proofs in the
/// literature (and in Graydon's reproduction of Haley et al.).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rule {
    /// An assumed premise.
    Premise,
    /// Repeats an earlier line.
    Reiterate(usize),
    /// →-elimination (modus ponens): from `X -> Y` at the first line and
    /// `X` at the second, conclude `Y`. Haley et al. call this `Detach`.
    Detach(usize, usize),
    /// ∧-elimination: from `X & Y`, conclude `X` or `Y`.
    /// Haley et al. call this `Split`.
    Split(usize),
    /// ∧-introduction: from `X` and `Y`, conclude `X & Y`.
    Join(usize, usize),
    /// ∨-introduction: from `X` (cited line), conclude `X | Y` or `Y | X`.
    OrIntro(usize),
    /// ∨-elimination (case analysis): from `X | Y`, `X -> Z`, `Y -> Z`,
    /// conclude `Z`.
    OrElim(usize, usize, usize),
    /// Modus tollens: from `X -> Y` and `~Y`, conclude `~X`.
    ModusTollens(usize, usize),
    /// Double-negation elimination: from `~~X`, conclude `X`.
    DoubleNegElim(usize),
    /// Double-negation introduction: from `X`, conclude `~~X`.
    DoubleNegIntro(usize),
    /// Contradiction introduction: from `X` and `~X`, conclude `F`.
    ContradictionIntro(usize, usize),
    /// Ex falso quodlibet: from `F`, conclude anything.
    ExFalso(usize),
    /// ↔-introduction: from `X -> Y` and `Y -> X`, conclude `X <-> Y`.
    IffIntro(usize, usize),
    /// ↔-elimination: from `X <-> Y`, conclude `X -> Y` or `Y -> X`.
    IffElim(usize),
    /// Conditional proof (→-introduction): cites a premise line `i`; the
    /// current line must read `P_i -> Q` where `Q` is the immediately
    /// preceding line. Discharges the premise. This is the `Conclusion`
    /// step of Haley et al.'s outer argument.
    Conclusion(usize),
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::Premise => write!(f, "Premise"),
            Rule::Reiterate(i) => write!(f, "Reiterate, {i}"),
            Rule::Detach(i, j) => write!(f, "Detach (-> elimination), {i}, {j}"),
            Rule::Split(i) => write!(f, "Split ('&' elimination), {i}"),
            Rule::Join(i, j) => write!(f, "Join ('&' introduction), {i}, {j}"),
            Rule::OrIntro(i) => write!(f, "OrIntro, {i}"),
            Rule::OrElim(i, j, k) => write!(f, "OrElim, {i}, {j}, {k}"),
            Rule::ModusTollens(i, j) => write!(f, "ModusTollens, {i}, {j}"),
            Rule::DoubleNegElim(i) => write!(f, "DoubleNegElim, {i}"),
            Rule::DoubleNegIntro(i) => write!(f, "DoubleNegIntro, {i}"),
            Rule::ContradictionIntro(i, j) => write!(f, "Contradiction, {i}, {j}"),
            Rule::ExFalso(i) => write!(f, "ExFalso, {i}"),
            Rule::IffIntro(i, j) => write!(f, "IffIntro, {i}, {j}"),
            Rule::IffElim(i) => write!(f, "IffElim, {i}"),
            Rule::Conclusion(i) => write!(f, "Conclusion, {i}"),
        }
    }
}

/// One line of a proof: a formula and its justification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Line {
    /// The formula asserted at this line.
    pub formula: Formula,
    /// The rule cited to justify it.
    pub rule: Rule,
}

/// A linear natural-deduction proof.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Proof {
    lines: Vec<Line>,
}

impl Proof {
    /// An empty proof.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a line; returns its 1-based number.
    pub fn add(&mut self, formula: Formula, rule: Rule) -> usize {
        self.lines.push(Line { formula, rule });
        self.lines.len()
    }

    /// The lines in order.
    pub fn lines(&self) -> &[Line] {
        &self.lines
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the proof has no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The premises (lines justified by [`Rule::Premise`]).
    pub fn premises(&self) -> Vec<&Formula> {
        self.lines
            .iter()
            .filter(|l| l.rule == Rule::Premise)
            .map(|l| &l.formula)
            .collect()
    }

    /// The final line's formula, if any.
    pub fn conclusion(&self) -> Option<&Formula> {
        self.lines.last().map(|l| &l.formula)
    }

    /// Checks every line against its cited rule.
    ///
    /// # Errors
    ///
    /// Returns the first [`LogicError`] found: either a bad line reference
    /// or a step whose formula is not justified by its rule.
    pub fn check(&self) -> Result<(), LogicError> {
        for (idx, line) in self.lines.iter().enumerate() {
            let number = idx + 1;
            self.check_line(number, line)?;
        }
        Ok(())
    }

    /// Fetches an earlier line (1-based), failing on forward or
    /// out-of-range references.
    fn fetch(&self, at: usize, reference: usize) -> Result<&Line, LogicError> {
        if reference == 0 || reference >= at {
            return Err(LogicError::BadLineReference {
                at_line: at,
                referenced: reference,
            });
        }
        Ok(&self.lines[reference - 1])
    }

    fn check_line(&self, number: usize, line: &Line) -> Result<(), LogicError> {
        let fail = |reason: String| {
            Err(LogicError::InvalidStep {
                line: number,
                reason,
            })
        };
        match &line.rule {
            Rule::Premise => Ok(()),
            Rule::Reiterate(i) => {
                let src = self.fetch(number, *i)?;
                if src.formula == line.formula {
                    Ok(())
                } else {
                    fail(format!(
                        "Reiterate must repeat line {i} exactly (got `{}`, expected `{}`)",
                        line.formula, src.formula
                    ))
                }
            }
            Rule::Detach(i, j) => {
                let imp = self.fetch(number, *i)?;
                let ant = self.fetch(number, *j)?;
                match &imp.formula {
                    Formula::Implies(l, r) => {
                        if l.as_ref() != &ant.formula {
                            fail(format!(
                                "line {j} (`{}`) is not the antecedent of line {i} (`{}`)",
                                ant.formula, imp.formula
                            ))
                        } else if r.as_ref() != &line.formula {
                            fail(format!(
                                "Detach of line {i} yields `{r}`, not `{}`",
                                line.formula
                            ))
                        } else {
                            Ok(())
                        }
                    }
                    other => fail(format!("line {i} (`{other}`) is not an implication")),
                }
            }
            Rule::Split(i) => {
                let conj = self.fetch(number, *i)?;
                match &conj.formula {
                    Formula::And(l, r) => {
                        if l.as_ref() == &line.formula || r.as_ref() == &line.formula {
                            Ok(())
                        } else {
                            fail(format!(
                                "`{}` is not a conjunct of line {i} (`{}`)",
                                line.formula, conj.formula
                            ))
                        }
                    }
                    other => fail(format!("line {i} (`{other}`) is not a conjunction")),
                }
            }
            Rule::Join(i, j) => {
                let a = self.fetch(number, *i)?;
                let b = self.fetch(number, *j)?;
                match &line.formula {
                    Formula::And(l, r) if l.as_ref() == &a.formula && r.as_ref() == &b.formula => {
                        Ok(())
                    }
                    _ => fail(format!(
                        "Join of lines {i} and {j} yields `{} & {}`, not `{}`",
                        a.formula, b.formula, line.formula
                    )),
                }
            }
            Rule::OrIntro(i) => {
                let src = self.fetch(number, *i)?;
                match &line.formula {
                    Formula::Or(l, r)
                        if l.as_ref() == &src.formula || r.as_ref() == &src.formula =>
                    {
                        Ok(())
                    }
                    _ => fail(format!(
                        "`{}` is not a disjunction containing line {i} (`{}`)",
                        line.formula, src.formula
                    )),
                }
            }
            Rule::OrElim(i, j, k) => {
                let disj = self.fetch(number, *i)?;
                let left_imp = self.fetch(number, *j)?;
                let right_imp = self.fetch(number, *k)?;
                let (dl, dr) = match &disj.formula {
                    Formula::Or(l, r) => (l.as_ref(), r.as_ref()),
                    other => return fail(format!("line {i} (`{other}`) is not a disjunction")),
                };
                let (ll, lr) = match &left_imp.formula {
                    Formula::Implies(l, r) => (l.as_ref(), r.as_ref()),
                    other => return fail(format!("line {j} (`{other}`) is not an implication")),
                };
                let (rl, rr) = match &right_imp.formula {
                    Formula::Implies(l, r) => (l.as_ref(), r.as_ref()),
                    other => return fail(format!("line {k} (`{other}`) is not an implication")),
                };
                if ll != dl {
                    return fail(format!("line {j} must discharge the left disjunct `{dl}`"));
                }
                if rl != dr {
                    return fail(format!("line {k} must discharge the right disjunct `{dr}`"));
                }
                if lr != &line.formula || rr != &line.formula {
                    return fail(format!("both cases must conclude `{}`", line.formula));
                }
                Ok(())
            }
            Rule::ModusTollens(i, j) => {
                let imp = self.fetch(number, *i)?;
                let negcons = self.fetch(number, *j)?;
                match &imp.formula {
                    Formula::Implies(l, r) => {
                        if !negcons.formula.is_negation_of(r) {
                            fail(format!(
                                "line {j} (`{}`) is not the negated consequent of line {i}",
                                negcons.formula
                            ))
                        } else if !line.formula.is_negation_of(l) {
                            fail(format!(
                                "ModusTollens of line {i} yields `~({l})`, not `{}`",
                                line.formula
                            ))
                        } else {
                            Ok(())
                        }
                    }
                    other => fail(format!("line {i} (`{other}`) is not an implication")),
                }
            }
            Rule::DoubleNegElim(i) => {
                let src = self.fetch(number, *i)?;
                match &src.formula {
                    Formula::Not(inner) => match inner.as_ref() {
                        Formula::Not(body) if body.as_ref() == &line.formula => Ok(()),
                        _ => fail(format!(
                            "line {i} (`{}`) is not the double negation of `{}`",
                            src.formula, line.formula
                        )),
                    },
                    other => fail(format!("line {i} (`{other}`) is not a negation")),
                }
            }
            Rule::DoubleNegIntro(i) => {
                let src = self.fetch(number, *i)?;
                let expected = src.formula.clone().not().not();
                if line.formula == expected {
                    Ok(())
                } else {
                    fail(format!(
                        "DoubleNegIntro of line {i} yields `{expected}`, not `{}`",
                        line.formula
                    ))
                }
            }
            Rule::ContradictionIntro(i, j) => {
                let a = self.fetch(number, *i)?;
                let b = self.fetch(number, *j)?;
                if line.formula != Formula::False {
                    return fail("Contradiction must conclude `F`".to_string());
                }
                if a.formula.is_negation_of(&b.formula) {
                    Ok(())
                } else {
                    fail(format!(
                        "lines {i} (`{}`) and {j} (`{}`) are not contradictory",
                        a.formula, b.formula
                    ))
                }
            }
            Rule::ExFalso(i) => {
                let src = self.fetch(number, *i)?;
                if src.formula == Formula::False {
                    Ok(())
                } else {
                    fail(format!("line {i} (`{}`) is not `F`", src.formula))
                }
            }
            Rule::IffIntro(i, j) => {
                let fwd = self.fetch(number, *i)?;
                let back = self.fetch(number, *j)?;
                match (&fwd.formula, &back.formula, &line.formula) {
                    (Formula::Implies(a1, b1), Formula::Implies(b2, a2), Formula::Iff(a3, b3))
                        if a1 == a2 && b1 == b2 && a1 == a3 && b1 == b3 =>
                    {
                        Ok(())
                    }
                    _ => fail(format!(
                        "IffIntro requires `X -> Y` at {i}, `Y -> X` at {j}, concluding `X <-> Y`"
                    )),
                }
            }
            Rule::IffElim(i) => {
                let src = self.fetch(number, *i)?;
                match &src.formula {
                    Formula::Iff(l, r) => {
                        let fwd = Formula::clone(l).implies(Formula::clone(r));
                        let back = Formula::clone(r).implies(Formula::clone(l));
                        if line.formula == fwd || line.formula == back {
                            Ok(())
                        } else {
                            fail(format!("IffElim of line {i} yields `{fwd}` or `{back}`"))
                        }
                    }
                    other => fail(format!("line {i} (`{other}`) is not a biconditional")),
                }
            }
            Rule::Conclusion(i) => {
                let prem = self.fetch(number, *i)?;
                if prem.rule != Rule::Premise {
                    return fail(format!(
                        "line {i} is not a premise, so cannot be discharged"
                    ));
                }
                if number < 2 {
                    return fail("Conclusion needs a preceding derived line".to_string());
                }
                let prev = &self.lines[number - 2];
                let expected = prem.formula.clone().implies(prev.formula.clone());
                if line.formula == expected {
                    Ok(())
                } else {
                    fail(format!(
                        "Conclusion discharging line {i} yields `{expected}`, not `{}`",
                        line.formula
                    ))
                }
            }
        }
    }

    /// Renders the proof in the numbered style used by the paper.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self.lines.len().to_string().len();
        for (idx, line) in self.lines.iter().enumerate() {
            out.push_str(&format!(
                "{:>width$}   {}   ({})\n",
                idx + 1,
                line.formula,
                line.rule,
                width = width
            ));
        }
        out
    }

    /// Builds the eleven-line security-requirements proof of Haley et al.
    /// exactly as reproduced in Graydon §III-K.
    ///
    /// The symbols (per the 2008 paper's running example): `I` — valid
    /// credentials are input; `V` — credentials are verified; `C` —
    /// credentials are correct; `H` — the requester is an HR member; `Y` —
    /// the system says yes; `D` — information is displayed.
    pub fn haley_example() -> Proof {
        use crate::prop::parse;
        let f = |s: &str| parse(s).expect("static formula");
        let mut p = Proof::new();
        p.add(f("I -> V"), Rule::Premise); // 1
        p.add(f("C -> H"), Rule::Premise); // 2
        p.add(f("Y -> V & C"), Rule::Premise); // 3
        p.add(f("D -> Y"), Rule::Premise); // 4
        p.add(f("D"), Rule::Premise); // 5
        p.add(f("Y"), Rule::Detach(4, 5)); // 6
        p.add(f("V & C"), Rule::Detach(3, 6)); // 7
        p.add(f("V"), Rule::Split(7)); // 8
        p.add(f("C"), Rule::Split(7)); // 9
        p.add(f("H"), Rule::Detach(2, 9)); // 10
        p.add(f("D -> H"), Rule::Conclusion(5)); // 11
        p
    }
}

impl fmt::Display for Proof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::parse;

    fn f(s: &str) -> Formula {
        parse(s).unwrap()
    }

    #[test]
    fn haley_example_checks() {
        let p = Proof::haley_example();
        assert_eq!(p.len(), 11);
        assert!(p.check().is_ok());
        assert_eq!(p.conclusion().unwrap(), &f("D -> H"));
        assert_eq!(p.premises().len(), 5);
    }

    #[test]
    fn haley_example_render_matches_paper_shape() {
        let p = Proof::haley_example();
        let r = p.render();
        assert!(r.contains("Detach (-> elimination), 4, 5"));
        assert!(r.contains("Split ('&' elimination), 7"));
        assert!(r.contains("Conclusion, 5"));
        assert_eq!(r.lines().count(), 11);
    }

    #[test]
    fn detach_rejects_wrong_antecedent() {
        let mut p = Proof::new();
        p.add(f("a -> b"), Rule::Premise);
        p.add(f("c"), Rule::Premise);
        p.add(f("b"), Rule::Detach(1, 2));
        let err = p.check().unwrap_err();
        assert!(matches!(err, LogicError::InvalidStep { line: 3, .. }));
    }

    #[test]
    fn detach_rejects_non_implication() {
        let mut p = Proof::new();
        p.add(f("a & b"), Rule::Premise);
        p.add(f("a"), Rule::Premise);
        p.add(f("b"), Rule::Detach(1, 2));
        assert!(p.check().is_err());
    }

    #[test]
    fn detach_rejects_wrong_consequent() {
        let mut p = Proof::new();
        p.add(f("a -> b"), Rule::Premise);
        p.add(f("a"), Rule::Premise);
        p.add(f("c"), Rule::Detach(1, 2));
        assert!(p.check().is_err());
    }

    #[test]
    fn forward_references_rejected() {
        let mut p = Proof::new();
        p.add(f("a"), Rule::Reiterate(2));
        p.add(f("a"), Rule::Premise);
        let err = p.check().unwrap_err();
        assert!(matches!(err, LogicError::BadLineReference { .. }));
    }

    #[test]
    fn zero_and_self_references_rejected() {
        let mut p = Proof::new();
        p.add(f("a"), Rule::Reiterate(0));
        assert!(matches!(
            p.check().unwrap_err(),
            LogicError::BadLineReference { .. }
        ));
        let mut p = Proof::new();
        p.add(f("a"), Rule::Reiterate(1));
        assert!(p.check().is_err());
    }

    #[test]
    fn split_accepts_both_conjuncts_and_rejects_others() {
        let mut p = Proof::new();
        p.add(f("a & b"), Rule::Premise);
        p.add(f("a"), Rule::Split(1));
        p.add(f("b"), Rule::Split(1));
        assert!(p.check().is_ok());
        let mut p = Proof::new();
        p.add(f("a & b"), Rule::Premise);
        p.add(f("c"), Rule::Split(1));
        assert!(p.check().is_err());
    }

    #[test]
    fn join_order_matters() {
        let mut p = Proof::new();
        p.add(f("a"), Rule::Premise);
        p.add(f("b"), Rule::Premise);
        p.add(f("a & b"), Rule::Join(1, 2));
        assert!(p.check().is_ok());
        let mut p = Proof::new();
        p.add(f("a"), Rule::Premise);
        p.add(f("b"), Rule::Premise);
        p.add(f("b & a"), Rule::Join(1, 2));
        assert!(p.check().is_err());
    }

    #[test]
    fn or_intro_and_elim() {
        let mut p = Proof::new();
        p.add(f("a"), Rule::Premise);
        p.add(f("a | b"), Rule::OrIntro(1));
        p.add(f("c | a"), Rule::OrIntro(1));
        assert!(p.check().is_ok());

        let mut p = Proof::new();
        p.add(f("a | b"), Rule::Premise);
        p.add(f("a -> c"), Rule::Premise);
        p.add(f("b -> c"), Rule::Premise);
        p.add(f("c"), Rule::OrElim(1, 2, 3));
        assert!(p.check().is_ok());

        // Wrong case order rejected.
        let mut p = Proof::new();
        p.add(f("a | b"), Rule::Premise);
        p.add(f("b -> c"), Rule::Premise);
        p.add(f("a -> c"), Rule::Premise);
        p.add(f("c"), Rule::OrElim(1, 2, 3));
        assert!(p.check().is_err());
    }

    #[test]
    fn modus_tollens() {
        let mut p = Proof::new();
        p.add(f("a -> b"), Rule::Premise);
        p.add(f("~b"), Rule::Premise);
        p.add(f("~a"), Rule::ModusTollens(1, 2));
        assert!(p.check().is_ok());
    }

    #[test]
    fn double_negation_rules() {
        let mut p = Proof::new();
        p.add(f("~~a"), Rule::Premise);
        p.add(f("a"), Rule::DoubleNegElim(1));
        p.add(f("~~a"), Rule::DoubleNegIntro(2));
        assert!(p.check().is_ok());
        let mut p = Proof::new();
        p.add(f("~a"), Rule::Premise);
        p.add(f("a"), Rule::DoubleNegElim(1));
        assert!(p.check().is_err());
    }

    #[test]
    fn contradiction_and_ex_falso() {
        let mut p = Proof::new();
        p.add(f("a"), Rule::Premise);
        p.add(f("~a"), Rule::Premise);
        p.add(f("F"), Rule::ContradictionIntro(1, 2));
        p.add(f("anything_at_all"), Rule::ExFalso(3));
        assert!(p.check().is_ok());
        // Contradiction must conclude F.
        let mut p = Proof::new();
        p.add(f("a"), Rule::Premise);
        p.add(f("~a"), Rule::Premise);
        p.add(f("b"), Rule::ContradictionIntro(1, 2));
        assert!(p.check().is_err());
    }

    #[test]
    fn iff_rules() {
        let mut p = Proof::new();
        p.add(f("a -> b"), Rule::Premise);
        p.add(f("b -> a"), Rule::Premise);
        p.add(f("a <-> b"), Rule::IffIntro(1, 2));
        p.add(f("a -> b"), Rule::IffElim(3));
        p.add(f("b -> a"), Rule::IffElim(3));
        assert!(p.check().is_ok());
    }

    #[test]
    fn conclusion_requires_discharging_a_premise() {
        let mut p = Proof::new();
        p.add(f("a & b"), Rule::Premise);
        p.add(f("a"), Rule::Split(1));
        p.add(f("a -> a"), Rule::Conclusion(2)); // line 2 is not a premise
        assert!(p.check().is_err());
    }

    #[test]
    fn conclusion_formula_must_match() {
        let mut p = Proof::new();
        p.add(f("a"), Rule::Premise);
        p.add(f("a | b"), Rule::OrIntro(1));
        p.add(f("a -> b"), Rule::Conclusion(1)); // should be a -> (a | b)
        assert!(p.check().is_err());
        let mut p = Proof::new();
        p.add(f("a"), Rule::Premise);
        p.add(f("a | b"), Rule::OrIntro(1));
        p.add(f("a -> a | b"), Rule::Conclusion(1));
        assert!(p.check().is_ok());
    }

    #[test]
    fn checked_proofs_are_semantically_sound() {
        // Every line of a checked proof is entailed by the premises — the
        // guarantee formal validation actually provides (Graydon §IV-A).
        let p = Proof::haley_example();
        p.check().unwrap();
        let premises = Formula::conj(p.premises().into_iter().cloned());
        for line in p.lines() {
            assert!(
                premises.entails(&line.formula),
                "line `{}` not entailed",
                line.formula
            );
        }
    }

    #[test]
    fn mutated_haley_proof_rejected() {
        // Flip one line reference of the known-good proof and the checker
        // must catch it — the "mechanical verification" capability.
        let good = Proof::haley_example();
        for i in 0..good.len() {
            let mut mutated = good.clone();
            let line = &mut mutated.lines[i];
            let new_rule = match &line.rule {
                Rule::Detach(a, b) => Rule::Detach(*b, *a),
                Rule::Split(a) => Rule::Split(a - 1),
                Rule::Conclusion(a) => Rule::Conclusion(a - 1),
                Rule::Premise => continue,
                other => other.clone(),
            };
            line.rule = new_rule;
            assert!(
                mutated.check().is_err(),
                "mutation at line {} passed",
                i + 1
            );
        }
    }

    #[test]
    fn display_is_render() {
        let p = Proof::haley_example();
        assert_eq!(p.to_string(), p.render());
    }

    #[test]
    fn empty_proof_checks_vacuously() {
        assert!(Proof::new().check().is_ok());
        assert!(Proof::new().is_empty());
        assert!(Proof::new().conclusion().is_none());
    }
}
