//! Sharded corpus ingestion: many `.case` texts in, recovered
//! arguments and span-carrying diagnostics out.
//!
//! [`CorpusLoader`] is the bulk front door of the service: it runs the
//! error-recovering DSL frontend over a whole corpus, sharded across
//! `casekit-runtime` workers, and returns one [`LoadedCase`] per
//! source — the recovered [`Argument`] (when one could be built) plus
//! every syntax diagnostic as a `CK2xx` [`Diagnostic`] with its byte
//! span. Per-file analysis is a pure function and
//! [`Runtime::map`](casekit_runtime::Runtime::map) preserves order, so
//! the diagnostic stream is byte-identical at any worker count — the
//! invariant `repro dsl` re-checks on every run.

use casekit_analysis::{check_syntax, Diagnostic, LintConfig};
use casekit_core::Argument;
use casekit_runtime::Runtime;

/// One corpus entry after ingestion: whatever argument survived
/// recovery, and every diagnostic the file produced.
#[derive(Debug, Clone)]
pub struct LoadedCase {
    /// The recovered argument; `None` when the header was missing or a
    /// structural error made the file unbuildable.
    pub argument: Option<Argument>,
    /// Span-carrying syntax diagnostics, in canonical order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LoadedCase {
    /// True when the file parsed without a single diagnostic.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Parses corpora of `.case` sources across runtime workers with the
/// recovering frontend.
///
/// ```
/// use casekit_runtime::Runtime;
/// use casekit_service::CorpusLoader;
///
/// let sources = vec![
///     "argument \"ok\" { goal g1 \"top\" { solution e1 \"log\" } }".to_string(),
///     "argument \"typo\" { gaol g1 \"top\" }".to_string(),
/// ];
/// let loaded = CorpusLoader::new().load(&sources, &Runtime::with_workers(2));
/// assert!(loaded[0].is_clean());
/// assert!(loaded[1].argument.is_some(), "recovery still yields an argument");
/// assert!(!loaded[1].is_clean());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CorpusLoader {
    config: LintConfig,
}

impl CorpusLoader {
    /// A loader reporting syntax diagnostics at their default levels
    /// (every `CK2xx` code denies by default).
    pub fn new() -> Self {
        Self::default()
    }

    /// A loader whose diagnostics are levelled by `config`.
    pub fn with_config(config: LintConfig) -> Self {
        CorpusLoader { config }
    }

    /// Ingests `sources`, sharded across the runtime's workers. Output
    /// is index-aligned with `sources` and byte-identical at any worker
    /// count.
    pub fn load(&self, sources: &[String], runtime: &Runtime) -> Vec<LoadedCase> {
        runtime.map(sources, |_, src| {
            let analysis = check_syntax(src, &self.config);
            LoadedCase {
                argument: analysis.argument,
                diagnostics: analysis.diagnostics,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casekit_analysis::LintCode;

    fn corpus() -> Vec<String> {
        (0..30)
            .map(|i| match i % 3 {
                0 => format!(
                    "argument \"c{i}\" {{\n  goal g1 \"top\" {{ solution e1 \"log {i}\" }}\n}}\n"
                ),
                1 => format!("argument \"c{i}\" {{\n  gaol g1 \"typo\"\n  goal g2 \"ok\" \n}}\n"),
                _ => format!("argument \"c{i}\" {{\n  goal g1 \"unterminated {i}\n"),
            })
            .collect()
    }

    #[test]
    fn loads_are_index_aligned_and_worker_invariant() {
        let sources = corpus();
        let loader = CorpusLoader::new();
        let serial = loader.load(&sources, &Runtime::with_workers(1));
        assert_eq!(serial.len(), sources.len());
        for (i, loaded) in serial.iter().enumerate() {
            match i % 3 {
                0 => assert!(loaded.is_clean() && loaded.argument.is_some()),
                1 => {
                    assert!(loaded.argument.is_some(), "typo file still recovers");
                    assert!(loaded
                        .diagnostics
                        .iter()
                        .any(|d| d.code == LintCode::UnknownKeyword));
                }
                _ => assert!(loaded
                    .diagnostics
                    .iter()
                    .any(|d| d.code == LintCode::UnterminatedString)),
            }
        }
        for workers in [2, 4, 8] {
            let sharded = loader.load(&sources, &Runtime::with_workers(workers));
            let serial_diags: Vec<_> = serial.iter().map(|l| &l.diagnostics).collect();
            let sharded_diags: Vec<_> = sharded.iter().map(|l| &l.diagnostics).collect();
            assert_eq!(sharded_diags, serial_diags, "workers={workers}");
        }
    }

    #[test]
    fn allow_all_loader_reports_nothing() {
        let loader = CorpusLoader::with_config(LintConfig::allow_all());
        let loaded = loader.load(&corpus(), &Runtime::with_workers(2));
        assert!(loaded.iter().all(LoadedCase::is_clean));
    }
}
