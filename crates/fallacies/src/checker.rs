//! The mechanical validation pipeline — what "formal verification of an
//! assurance argument" can actually deliver.
//!
//! [`check_argument`] extracts an argument's formal skeleton (propositional
//! payloads), verifies entailment at each formalised step, and runs every
//! formal-fallacy detector. Its return type contains **only**
//! [`crate::taxonomy::FormalFallacy`] and entailment findings: the type
//! system itself enforces the paper's §IV-C claim that machine checking
//! cannot return informal-fallacy findings.

use crate::formal;
use crate::taxonomy::FormalFallacy;
use casekit_core::semantics::{formal_conclusion, formal_premises, ArgumentTheory};
use casekit_core::{Argument, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A finding that mechanical checking *can* produce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MachineFinding {
    /// A formal fallacy in the premises/conclusion structure.
    Fallacy {
        /// The fallacy detected.
        fallacy: FormalFallacy,
        /// Explanation.
        detail: String,
    },
    /// A formalised support step whose children do not entail the parent.
    NonDeductiveStep {
        /// The parent node whose support fails entailment.
        node: NodeId,
    },
    /// The formal leaves do not entail the formal root.
    ConclusionNotEntailed,
}

impl fmt::Display for MachineFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineFinding::Fallacy { fallacy, detail } => write!(f, "{fallacy}: {detail}"),
            MachineFinding::NonDeductiveStep { node } => {
                write!(f, "support for `{node}` is not deductive")
            }
            MachineFinding::ConclusionNotEntailed => {
                write!(f, "formal premises do not entail the formal conclusion")
            }
        }
    }
}

/// Report from mechanically checking an argument.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineReport {
    /// Everything the machine found.
    pub findings: Vec<MachineFinding>,
    /// How many nodes participated (carried usable formal payloads).
    pub formal_nodes: usize,
    /// Whether the argument had any formal skeleton to check at all.
    pub checkable: bool,
}

impl MachineReport {
    /// Whether the machine found nothing (which, per the paper, licenses
    /// only the conclusion "no *formal* fallacies detected").
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Mechanically checks `argument`'s formal skeleton.
///
/// The propositional payloads are compiled once into an
/// [`ArgumentTheory`] session; every per-step deduction check and the
/// root entailment are assumption rounds against it. The fallacy
/// detectors run over borrowed premise references — no `Formula` clones
/// anywhere on the path.
///
/// Callers that check the same argument repeatedly (e.g. a review
/// harness asking once per simulated reviewer) should compile once —
/// or pull a session from a [`casekit_core::semantics::TheoryCache`] —
/// and call [`check_compiled`] instead of paying this compilation every
/// time.
pub fn check_argument(argument: &Argument) -> MachineReport {
    let mut theory = ArgumentTheory::compile(argument);
    check_compiled(argument, &mut theory)
}

/// [`check_argument`] against an already-compiled theory session.
///
/// `theory` must be a session over this `argument` (fresh from
/// [`ArgumentTheory::compile`] or cloned out of a
/// [`casekit_core::semantics::TheoryCache`]); the premise and conclusion
/// literal lists are aligned with the argument's formal skeleton by
/// construction. Checks fully retract their assumptions, so one session
/// can serve any number of calls.
pub fn check_compiled(argument: &Argument, theory: &mut ArgumentTheory) -> MachineReport {
    let premises = formal_premises(argument);
    let conclusion = formal_conclusion(argument);
    let formal_nodes = argument.formalised_count();
    let mut findings = Vec::new();
    for idx in theory.non_deductive_step_indices() {
        findings.push(MachineFinding::NonDeductiveStep {
            node: argument.node_at(idx).id.clone(),
        });
    }

    let checkable = match (&conclusion, premises.is_empty()) {
        (Some(_), false) => true,
        _ => formal_nodes > 0,
    };

    if let Some(conclusion) = conclusion {
        if !premises.is_empty() {
            if theory.root_entailed() == Some(false) {
                findings.push(MachineFinding::ConclusionNotEntailed);
            }
            // The detectors reuse the argument's compiled literals
            // (premise/conclusion lists are aligned by construction) —
            // still one Tseitin pass per argument. A formal conclusion
            // always compiles to a literal; if it ever did not, skip
            // the detectors rather than panic.
            let premise_lits = theory.premise_lits();
            if let Some(conclusion_lit) = theory.conclusion_lit() {
                for finding in formal::detect_all_compiled(
                    theory.theory_mut(),
                    premise_lits,
                    conclusion_lit,
                    &premises,
                    conclusion,
                ) {
                    findings.push(MachineFinding::Fallacy {
                        fallacy: finding.fallacy,
                        detail: finding.detail,
                    });
                }
            }
        }
    }

    MachineReport {
        findings,
        formal_nodes,
        checkable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casekit_core::dsl::parse_argument;

    #[test]
    fn clean_deductive_argument_passes() {
        let a = parse_argument(
            r#"argument "mp" {
                goal g1 "q" formal "q" {
                  goal g2 "rule" formal "p -> q" { solution e1 "rule review" }
                  goal g3 "fact" formal "p" { solution e2 "measurement" }
                }
            }"#,
        )
        .unwrap();
        let report = check_argument(&a);
        assert!(report.is_clean(), "findings: {:?}", report.findings);
        assert!(report.checkable);
        assert_eq!(report.formal_nodes, 3);
    }

    #[test]
    fn non_entailed_conclusion_detected() {
        let a = parse_argument(
            r#"argument "gap" {
                goal g1 "meets deadlines" formal "meets_deadlines" {
                  goal g2 "quality" formal "code_reviewed & unit_tests_passed" {
                    solution e1 "review minutes"
                  }
                }
            }"#,
        )
        .unwrap();
        let report = check_argument(&a);
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, MachineFinding::ConclusionNotEntailed)));
        assert!(report.findings.iter().any(
            |f| matches!(f, MachineFinding::NonDeductiveStep { node } if node == &NodeId::new("g1"))
        ));
    }

    #[test]
    fn begging_the_question_detected_in_argument() {
        let a = parse_argument(
            r#"argument "circle" {
                goal g1 "system is safe" formal "safe" {
                  goal g2 "we assume safety" formal "safe" { solution e1 "assertion" }
                }
            }"#,
        )
        .unwrap();
        let report = check_argument(&a);
        assert!(report.findings.iter().any(|f| matches!(
            f,
            MachineFinding::Fallacy {
                fallacy: FormalFallacy::BeggingTheQuestion,
                ..
            }
        )));
    }

    #[test]
    fn informal_argument_is_uncheckable_and_clean() {
        // The machine has nothing to say about a purely informal argument —
        // not "valid", just "no formal content".
        let a = parse_argument(
            r#"argument "informal" {
                goal g1 "System is safe" { solution e1 "Expert judgment" }
            }"#,
        )
        .unwrap();
        let report = check_argument(&a);
        assert!(report.is_clean());
        assert!(!report.checkable);
        assert_eq!(report.formal_nodes, 0);
    }

    #[test]
    fn machine_findings_cannot_name_informal_fallacies() {
        // Compile-time demonstration of §IV-C: a MachineFinding carries a
        // FormalFallacy; there is no constructor from InformalFallacy.
        // (If someone adds one, this test's match becomes non-exhaustive
        // commentary — keep it in sync deliberately.)
        let f = MachineFinding::Fallacy {
            fallacy: FormalFallacy::BeggingTheQuestion,
            detail: "x".into(),
        };
        match f {
            MachineFinding::Fallacy { .. }
            | MachineFinding::NonDeductiveStep { .. }
            | MachineFinding::ConclusionNotEntailed => {}
        }
    }

    #[test]
    fn finding_display() {
        assert!(MachineFinding::ConclusionNotEntailed
            .to_string()
            .contains("do not entail"));
        assert!(MachineFinding::NonDeductiveStep {
            node: NodeId::new("g1")
        }
        .to_string()
        .contains("g1"));
    }

    #[test]
    fn check_compiled_reuses_one_session_across_repeated_checks() {
        let a = parse_argument(
            r#"argument "gap" {
                goal g1 "meets deadlines" formal "meets_deadlines" {
                  goal g2 "quality" formal "code_reviewed & unit_tests_passed" {
                    solution e1 "review minutes"
                  }
                }
            }"#,
        )
        .unwrap();
        let fresh = check_argument(&a);
        let mut session = ArgumentTheory::compile(&a);
        // The same session answers identically as many times as asked —
        // the access pattern of a theory cache shared across reviews.
        for _ in 0..3 {
            assert_eq!(check_compiled(&a, &mut session), fresh);
        }
    }

    #[test]
    fn incompatible_formal_premises_detected() {
        let a = parse_argument(
            r#"argument "clash" {
                goal g1 "conclusion" formal "c" {
                  goal g2 "claims p" formal "p" { solution e1 "a" }
                  goal g3 "claims not p" formal "~p" { solution e2 "b" }
                }
            }"#,
        )
        .unwrap();
        let report = check_argument(&a);
        assert!(report.findings.iter().any(|f| matches!(
            f,
            MachineFinding::Fallacy {
                fallacy: FormalFallacy::IncompatiblePremises,
                ..
            }
        )));
    }
}
