//! # casekit-experiments
//!
//! Simulated versions of the five experimental studies Graydon sketches in
//! §VI of *Formal Assurance Arguments: A Solution In Search of a Problem?*
//! (DSN 2015), plus the statistics substrate needed to analyse them.
//!
//! **Substitution note** (DESIGN.md §5): the paper calls for studies with
//! human volunteers; none were run. Here, *simulated subjects* with
//! parameterised skill/background/speed distributions stand in, so that
//! the entire experimental pipeline — treatment assignment, measurement,
//! significance testing, agreement analysis — is executable and the
//! hypothesised effect *shapes* can be demonstrated and stress-tested.
//! Every run is deterministic given its seed.
//!
//! * [`stats`] — descriptives, Welch's t-test, Mann–Whitney U, Cohen's
//!   kappa and d.
//! * [`population`] — simulated subject pools.
//! * [`generator`] — synthetic GSN arguments with seeded formal and
//!   informal fallacies, including reconstructions of the three Greenwell
//!   case-study arguments with the published fallacy counts.
//! * [`reviewer`] — the simulated human reviewer model.
//! * [`exp_a`]–[`exp_e`] — the five studies.

pub mod exp_a;
pub mod exp_b;
pub mod exp_c;
pub mod exp_d;
pub mod exp_e;
pub mod generator;
pub mod population;
pub mod reviewer;
pub mod stats;
