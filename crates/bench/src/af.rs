//! Argumentation-framework benchmark harness: seeded framework
//! generators, the subset-enumeration baseline (`af::naive`), and the
//! SAT labelling path that replaced it.
//!
//! The seed computed complete/preferred extensions by walking all `2^n`
//! argument subsets behind an `assert!(n <= 16)`, and derived the
//! grounded extension with a fixpoint that re-scanned the whole attack
//! relation per candidate per pass. The SAT path
//! ([`casekit_logic::af::encode::AfSat`]) lifts the ceiling; the CSR
//! worklist ([`casekit_logic::af::Adjacency::grounded`]) makes grounded
//! O(V+E). Both old paths survive in [`casekit_logic::af::naive`] so
//! the speedups stay measurable: [`run_af_bench`] cross-checks the
//! engines extension set for extension set on every ≤ 16-argument
//! instance and emits the comparison as `BENCH_af.json` (via `repro
//! af`).

use casekit_logic::af::encode::AfSat;
use casekit_logic::af::{naive, ArgId, Framework};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::BTreeSet;

/// A seeded uniformly-random framework: `n` arguments, `attacks`
/// attack pairs drawn with replacement (self-attacks allowed, as in
/// real benchmark suites).
pub fn random_framework(n: usize, attacks: usize, seed: u64) -> Framework {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xAF00_0000_0000_0000);
    let mut af = Framework::new();
    for i in 0..n {
        af.add_argument(format!("arg{i}"));
    }
    for _ in 0..attacks {
        let attacker = rng.gen_range(0..n);
        let target = rng.gen_range(0..n);
        af.add_attack(attacker, target).expect("ids are in range");
    }
    af
}

/// A seeded deliberation-shaped framework: a proposal followed by
/// dialogue moves, each attacking one (sometimes two) earlier
/// arguments — the acyclic, tree-ish shape Tolchinsky-style dialogues
/// produce, where the grounded extension decides everything.
pub fn deliberation_framework(n: usize, seed: u64) -> Framework {
    assert!(n >= 1, "a deliberation has at least the proposal");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1A1_0000_0000_0000);
    let mut af = Framework::new();
    af.add_argument("proposal");
    for i in 1..n {
        let id = af.add_argument(format!("move{i}"));
        let target = rng.gen_range(0..id);
        af.add_attack(id, target).expect("ids are in range");
        if rng.gen_bool(0.25) {
            let second = rng.gen_range(0..id);
            af.add_attack(id, second).expect("ids are in range");
        }
    }
    af
}

/// A reinstatement chain: argument `i + 1` attacks argument `i`. The
/// grounded fixpoint needs ~`n/2` passes here, which is exactly where
/// a per-candidate attack-relation scan degrades quadratically.
pub fn chain_framework(n: usize) -> Framework {
    let mut af = Framework::new();
    for i in 0..n {
        af.add_argument(format!("c{i}"));
    }
    for i in 1..n {
        af.add_attack(i, i - 1).expect("ids are in range");
    }
    af
}

/// Everything one engine reports about one framework; both engines
/// must produce exactly this, set for set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemanticsVerdict {
    /// The complete extensions, as a set of sets.
    pub complete: BTreeSet<BTreeSet<ArgId>>,
    /// The preferred extensions, as a set of sets.
    pub preferred: BTreeSet<BTreeSet<ArgId>>,
    /// The stable extensions, as a set of sets.
    pub stable: BTreeSet<BTreeSet<ArgId>>,
    /// Per argument: credulously accepted?
    pub credulous: Vec<bool>,
}

/// The full semantics sweep through the subset enumerator (panics over
/// 16 arguments — smoke instances only).
///
/// For a fair baseline the `2^n` walk runs only twice (complete and
/// stable): preferred is the maximality filter over the complete set
/// and credulous is membership in it, mirroring how [`sat_sweep`]
/// shares one session — the measured gap is enumeration vs SAT, not
/// redundant re-enumeration.
pub fn naive_sweep(af: &Framework) -> SemanticsVerdict {
    let complete = naive::complete_extensions(af).expect("smoke instance");
    let preferred = naive::preferred_from(&complete).into_iter().collect();
    let credulous = (0..af.len())
        .map(|id| complete.iter().any(|e| e.contains(&id)))
        .collect();
    SemanticsVerdict {
        complete: complete.into_iter().collect(),
        preferred,
        stable: naive::stable_extensions(af)
            .expect("smoke instance")
            .into_iter()
            .collect(),
        credulous,
    }
}

/// The same sweep through the SAT path: one complete-semantics session
/// answers the complete enumeration, the preferred maximality loop,
/// and every credulous probe; stable gets its own encoding.
pub fn sat_sweep(af: &Framework) -> SemanticsVerdict {
    let mut session = AfSat::complete(af);
    let complete = session.extensions(None).into_iter().collect();
    let preferred = session.preferred().into_iter().collect();
    let credulous = (0..af.len()).map(|id| session.credulous(id)).collect();
    let stable = AfSat::stable(af).extensions(None).into_iter().collect();
    SemanticsVerdict {
        complete,
        preferred,
        stable,
        credulous,
    }
}

/// Measured engine comparison at one framework size (SAT path only —
/// the enumerator cannot follow past 16 arguments).
#[derive(Debug, Clone, Serialize)]
pub struct AfSizeReport {
    /// Arguments in the seeded random framework.
    pub n: usize,
    /// Attacks in the seeded random framework.
    pub attacks: usize,
    /// CSR grounded fixpoint, milliseconds (best of 3).
    pub grounded_ms: f64,
    /// Arguments in the grounded extension.
    pub grounded_size: usize,
    /// SAT preferred enumeration (maximality loop), milliseconds.
    pub preferred_ms: f64,
    /// Preferred extensions found.
    pub preferred_count: usize,
    /// SAT stable enumeration, milliseconds.
    pub stable_ms: f64,
    /// Stable extensions found.
    pub stable_count: usize,
    /// On the same-size deliberation-shaped framework: the preferred
    /// extension is unique and equals the grounded extension (the
    /// acyclicity invariant the dialogue layer relies on).
    pub deliberation_preferred_is_grounded: bool,
}

/// The measured comparison, serialized into `BENCH_af.json`.
#[derive(Debug, Clone, Serialize)]
pub struct AfBenchReport {
    /// ≤ 16-argument instances swept by both engines.
    pub smoke_instances: usize,
    /// Arguments per smoke instance.
    pub smoke_n: usize,
    /// Subset-enumeration sweep over the smoke instances, milliseconds
    /// (best of 3, like every other arm).
    pub naive_ms: f64,
    /// SAT sweep over the same instances, milliseconds (best of 3).
    pub sat_ms: f64,
    /// naive / sat.
    pub sat_over_naive: f64,
    /// Both engines returned identical complete/preferred/stable
    /// extension sets and credulous verdicts on every smoke instance.
    pub extensions_agree: bool,
    /// Chain length for the grounded comparison.
    pub grounded_chain_n: usize,
    /// Seed-style grounded fixpoint (attack-relation scan per
    /// candidate per pass) on the chain, milliseconds.
    pub grounded_naive_ms: f64,
    /// CSR worklist grounded on the same chain, milliseconds.
    pub grounded_csr_ms: f64,
    /// naive / csr.
    pub grounded_over_naive: f64,
    /// Both grounded engines agree on the chain.
    pub grounded_agree: bool,
    /// SAT-only measurements at sizes the enumerator cannot reach.
    pub sizes: Vec<AfSizeReport>,
}

/// Runs the two-engine comparison: a cross-checked smoke population at
/// `smoke_n` arguments, the grounded chain comparison at
/// `grounded_chain_n`, and SAT-only measurements at each of `sizes`.
pub fn run_af_bench(
    smoke_n: usize,
    smoke_seeds: usize,
    grounded_chain_n: usize,
    sizes: &[usize],
) -> AfBenchReport {
    assert!(smoke_n <= 16, "smoke instances must fit the enumerator");
    let smoke: Vec<Framework> = (0..smoke_seeds as u64)
        .flat_map(|seed| {
            [
                random_framework(smoke_n, 2 * smoke_n, seed),
                deliberation_framework(smoke_n, seed),
            ]
        })
        .collect();

    let (naive_ms, naive_verdicts) =
        crate::best_of_ms(3, || smoke.iter().map(naive_sweep).collect::<Vec<_>>());
    let (sat_ms, sat_verdicts) =
        crate::best_of_ms(3, || smoke.iter().map(sat_sweep).collect::<Vec<_>>());
    let extensions_agree = naive_verdicts == sat_verdicts;

    let chain = chain_framework(grounded_chain_n);
    let (grounded_naive_ms, grounded_naive) =
        crate::best_of_ms(3, || naive::grounded_extension(&chain));
    let (grounded_csr_ms, grounded_csr) = crate::best_of_ms(3, || chain.grounded_extension());
    let grounded_agree = grounded_naive == grounded_csr;

    let sizes = sizes
        .iter()
        .map(|&n| {
            let af = random_framework(n, 2 * n, 0xBEEF ^ n as u64);
            let (grounded_ms, grounded) = crate::best_of_ms(3, || af.grounded_extension());
            let (preferred_ms, preferred) = crate::best_of_ms(3, || af.preferred_extensions());
            let (stable_ms, stable) = crate::best_of_ms(3, || af.stable_extensions());
            let dialogue = deliberation_framework(n, 0xBEEF ^ n as u64);
            let deliberation_preferred_is_grounded =
                dialogue.preferred_extensions() == vec![dialogue.grounded_extension()];
            AfSizeReport {
                n,
                attacks: af.attack_count(),
                grounded_ms,
                grounded_size: grounded.len(),
                preferred_ms,
                preferred_count: preferred.len(),
                stable_ms,
                stable_count: stable.len(),
                deliberation_preferred_is_grounded,
            }
        })
        .collect();

    AfBenchReport {
        smoke_instances: smoke.len(),
        smoke_n,
        naive_ms,
        sat_ms,
        sat_over_naive: naive_ms / sat_ms.max(1e-9),
        extensions_agree,
        grounded_chain_n,
        grounded_naive_ms,
        grounded_csr_ms,
        grounded_over_naive: grounded_naive_ms / grounded_csr_ms.max(1e-9),
        grounded_agree,
        sizes,
    }
}

/// Renders the report as JSON (the `BENCH_af.json` artifact).
pub fn bench_af_json(report: &AfBenchReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

/// Human-readable summary for the repro binary.
pub fn render_report(report: &AfBenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "argumentation-framework semantics, {} cross-checked {}-argument instances\n\
           subset enumeration (complete+preferred+stable+credulous): {:>10.3} ms\n\
           SAT labelling sessions (same queries):                    {:>10.3} ms\n\
           speedup: {:.1}x   extensions agree: {}\n\
         grounded on a {}-argument reinstatement chain\n\
           fixpoint with per-candidate attack scans: {:>10.3} ms\n\
           CSR worklist:                             {:>10.3} ms\n\
           speedup: {:.1}x   grounded agree: {}",
        report.smoke_instances,
        report.smoke_n,
        report.naive_ms,
        report.sat_ms,
        report.sat_over_naive,
        report.extensions_agree,
        report.grounded_chain_n,
        report.grounded_naive_ms,
        report.grounded_csr_ms,
        report.grounded_over_naive,
        report.grounded_agree,
    );
    let _ = writeln!(out, "SAT path beyond the old 16-argument ceiling:");
    for s in &report.sizes {
        let _ = writeln!(
            out,
            "  n={:<5} attacks={:<5} grounded {:>8.3} ms ({} in)   \
             preferred {:>9.3} ms ({})   stable {:>9.3} ms ({})   dialogue-unique: {}",
            s.n,
            s.attacks,
            s.grounded_ms,
            s.grounded_size,
            s.preferred_ms,
            s.preferred_count,
            s.stable_ms,
            s.stable_count,
            s.deliberation_preferred_is_grounded,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_framework(10, 20, 7), random_framework(10, 20, 7));
        assert_eq!(deliberation_framework(10, 7), deliberation_framework(10, 7));
        let af = random_framework(10, 20, 7);
        assert_eq!(af.len(), 10);
        assert!(af.attack_count() <= 20);
    }

    #[test]
    fn engines_agree_on_smoke_scale_instances() {
        for seed in 0..4 {
            let af = random_framework(8, 16, seed);
            assert_eq!(naive_sweep(&af), sat_sweep(&af), "random seed {seed}");
            let d = deliberation_framework(8, seed);
            assert_eq!(naive_sweep(&d), sat_sweep(&d), "deliberation seed {seed}");
        }
    }

    #[test]
    fn preferred_succeeds_on_a_200_argument_random_framework() {
        // The acceptance-criteria instance: impossible before the SAT
        // path (the enumerator asserted n <= 16).
        let af = random_framework(200, 400, 0xBEEF ^ 200);
        let preferred = af.preferred_extensions();
        assert!(!preferred.is_empty());
        let grounded = af.grounded_extension();
        for p in &preferred {
            assert!(af.admissible(p));
            assert!(grounded.is_subset(p));
        }
    }

    #[test]
    fn deliberation_frameworks_are_acyclic_and_grounded_decides() {
        let af = deliberation_framework(60, 3);
        let preferred = af.preferred_extensions();
        assert_eq!(preferred, vec![af.grounded_extension()]);
        assert_eq!(af.stable_extensions(), preferred);
    }

    #[test]
    fn csr_grounded_does_not_degrade_quadratically_on_chains() {
        // The old fixpoint re-scans the attack relation per candidate
        // per pass: O(n^2) scans of O(n) each. The CSR worklist is
        // O(V+E); a 50k chain completes instantly, where a quadratic
        // path would need ~10^9 edge visits and a cubic one ~10^14.
        let big = chain_framework(50_000);
        let grounded = big.grounded_extension();
        assert_eq!(grounded.len(), 25_000);
        assert!(grounded.contains(&49_999), "the unattacked top is in");
        assert!(!grounded.contains(&49_998));

        // And on a size the old path can still handle, the two agree —
        // with the CSR path far ahead even at n=160 in a debug build.
        let small = chain_framework(160);
        let (naive_ms, naive_grounded) = crate::best_of_ms(2, || naive::grounded_extension(&small));
        let (csr_ms, csr_grounded) = crate::best_of_ms(2, || small.grounded_extension());
        assert_eq!(naive_grounded, csr_grounded);
        assert!(
            csr_ms <= naive_ms,
            "CSR grounded ({csr_ms} ms) should not lose to the \
             quadratic fixpoint ({naive_ms} ms) on a 160-chain"
        );
    }

    #[test]
    fn report_is_sane_at_small_scale() {
        let report = run_af_bench(8, 2, 120, &[8, 20]);
        assert!(report.extensions_agree);
        assert!(report.grounded_agree);
        assert_eq!(report.smoke_instances, 4);
        assert_eq!(report.sizes.len(), 2);
        for s in &report.sizes {
            assert!(s.deliberation_preferred_is_grounded);
            assert!(s.preferred_count >= 1);
        }
        let json = bench_af_json(&report);
        assert!(json.contains("\"sat_over_naive\""));
        assert!(json.contains("\"grounded_over_naive\""));
        assert!(json.contains("\"extensions_agree\": true"));
        assert!(render_report(&report).contains("extensions agree: true"));
    }
}
