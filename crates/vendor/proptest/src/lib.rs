//! Vendored, dependency-free stand-in for `proptest`.
//!
//! Implements the strategy combinators this workspace's property tests
//! use: `Just`, ranges, regex-subset string strategies, tuples,
//! `prop_map`, `prop_recursive`, `prop_oneof!`, `collection::vec`, and
//! the `proptest!` macro with `ProptestConfig::with_cases`. Generation is
//! deterministic (seeded per test name), and there is no shrinking — a
//! failing case panics with the generated inputs displayed via the
//! assertion message.

use std::ops::Range;
use std::sync::Arc;

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: hash }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below: bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Run configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<W, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> W,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies, unrolled `levels` deep: each level draws
    /// either a leaf (ending recursion early) or one expansion of `f`.
    /// `_size`/`_branch` are accepted for API compatibility.
    fn prop_recursive<S2, F>(
        self,
        levels: u32,
        _size: u32,
        _branch: u32,
        f: F,
    ) -> ArcStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(ArcStrategy<Self::Value>) -> S2,
    {
        let leaf = arc(self);
        let mut current = leaf.clone();
        for _ in 0..levels {
            let expanded = arc(f(current));
            let leaf_again = leaf.clone();
            current = ArcStrategy(Arc::new(move |rng: &mut TestRng| {
                // 1-in-3 chance of bottoming out early keeps depth varied.
                if rng.below(3) == 0 {
                    leaf_again.generate(rng)
                } else {
                    expanded.generate(rng)
                }
            }));
        }
        current
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erased, cheaply clonable form (`boxed` in real proptest).
    fn boxed(self) -> ArcStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        arc(self)
    }
}

/// Type-erased strategy; clones share the generator.
pub struct ArcStrategy<V>(Arc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for ArcStrategy<V> {
    fn clone(&self) -> Self {
        ArcStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for ArcStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Erases a strategy into an [`ArcStrategy`].
pub fn arc<S: Strategy + 'static>(strategy: S) -> ArcStrategy<S::Value> {
    ArcStrategy(Arc::new(move |rng: &mut TestRng| strategy.generate(rng)))
}

/// Uniform choice among erased alternatives (backs `prop_oneof!`).
pub fn one_of<V: 'static>(options: Vec<ArcStrategy<V>>) -> ArcStrategy<V> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
    ArcStrategy(Arc::new(move |rng: &mut TestRng| {
        options[rng.below(options.len())].generate(rng)
    }))
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, W, F: Fn(S::Value) -> W> Strategy for Map<S, F> {
    type Value = W;

    fn generate(&self, rng: &mut TestRng) -> W {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_int_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $ty
            }
        }
    )*};
}

signed_int_strategies!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// String strategies from a regex subset: concatenations of literals and
/// character classes (`[a-z0-9_ ]`) with optional `{n}`/`{m,n}` repeats.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let reps = if atom.max > atom.min {
                atom.min + rng.below(atom.max - atom.min + 1)
            } else {
                atom.min
            };
            for _ in 0..reps {
                out.push(atom.chars[rng.below(atom.chars.len())]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let set: Vec<char> = if chars[i] == '[' {
            let mut set = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    for c in lo..=hi {
                        set.push(c);
                    }
                    i += 3;
                } else {
                    set.push(chars[i]);
                    i += 1;
                }
            }
            i += 1; // ']'
            set
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated {} in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("pattern repeat lower bound"),
                    hi.trim().parse().expect("pattern repeat upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("pattern repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!set.is_empty(), "empty character class in `{pattern}`");
        atoms.push(PatternAtom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

macro_rules! tuple_strategies {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec`: vectors of `element` with length drawn
    /// from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end - self.len.start;
            let len = self.len.start + if span > 0 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        arc, one_of, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        ArcStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::arc($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// `proptest! { #![proptest_config(...)] fn prop(x in strategy, ...) { body } }`
///
/// Each function becomes a `#[test]`-compatible fn running `cases`
/// deterministic iterations. Strategies are evaluated once, before the
/// loop.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { { $config } $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { { $crate::ProptestConfig::default() } $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ({ $config:expr }) => {};
    ({ $config:expr }
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            // Shadow each argument name with its (once-evaluated) strategy…
            $(let $arg = $strategy;)+
            for __case in 0..__config.cases {
                let _ = __case;
                // …then shadow again with a generated value per case.
                $(let $arg = $crate::Strategy::generate(&$arg, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { { $config } $($rest)* }
    };
}
