//! Vendored, dependency-free stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], `criterion_group!`, `criterion_main!`,
//! [`black_box`] — with a simple calibrated wall-clock measurement
//! (warm-up, then timed batches, median-of-batches report). No plots, no
//! statistics beyond min/median/mean.
//!
//! Honouring harness conventions: `--test` runs every routine exactly
//! once (what `cargo test` wants from a bench target), and a positional
//! argument filters benchmarks by substring (like real criterion).

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How batched inputs are grouped. Only a hint in real criterion; ignored
/// here beyond API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    /// Target measurement time per benchmark.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--nocapture" | "--quiet" => {}
                other if other.starts_with("--") => {}
                other => filter = Some(other.to_string()),
            }
        }
        let budget = std::env::var("CASEKIT_BENCH_MS")
            .ok()
            .and_then(|ms| ms.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or_else(|| Duration::from_millis(120));
        Criterion {
            filter,
            test_mode,
            budget,
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            budget: self.budget,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// API compatibility; returns self unchanged.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

pub struct Bencher {
    test_mode: bool,
    budget: Duration,
    /// Per-iteration nanosecond estimates, one per measured batch.
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Calibrate: how many iterations fit in ~1/10 of the budget?
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let per_batch =
            ((self.budget.as_nanos() / 10 / probe.as_nanos().max(1)) as u64).clamp(1, 100_000);
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline && self.samples.len() < 100 {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed.as_nanos() as f64 / per_batch as f64);
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline && self.samples.len() < 2_000 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn report(&mut self, id: &str) {
        if self.test_mode {
            println!("test {id} ... ok (bench test mode)");
            return;
        }
        if self.samples.is_empty() {
            println!("{id:<44} no samples");
            return;
        }
        self.samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        println!(
            "{id:<44} median {:>12}  min {:>12}  mean {:>12}",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(mean)
        );
    }
}

/// Formats nanoseconds with adaptive units, criterion-style.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
