#!/usr/bin/env bash
# Full local gate: format, lints, tests, benches, and the graph-core
# benchmark artifact. Mirrors what `just check` runs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q

echo "==> cargo bench (short measurement budget)"
CASEKIT_BENCH_MS="${CASEKIT_BENCH_MS:-25}" cargo bench -q -p casekit-bench

echo "==> repro graph (writes BENCH_graph.json)"
cargo run --release -q -p casekit-bench --bin repro graph

echo "==> repro logic (writes BENCH_logic.json)"
cargo run --release -q -p casekit-bench --bin repro logic

echo "==> repro experiments (writes BENCH_experiments.json)"
cargo run --release -q -p casekit-bench --bin repro experiments
grep -q '"reports_agree": true' BENCH_experiments.json \
  || { echo "FAIL: BENCH_experiments.json does not report serial/parallel agreement"; exit 1; }

echo "All checks passed."
