//! Vendored stand-in for `rand_chacha`: a genuine ChaCha8 block function
//! (RFC 7539 quarter-round, 8 rounds) driving the vendored `rand` traits.
//! Deterministic per seed; not stream-compatible with the real crate
//! (seed expansion and word order differ), which no in-tree consumer
//! depends on.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed from a 64-bit seed via SplitMix64
/// expansion.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce state words (the constant row is re-added
    /// per block).
    key: [u32; 8],
    counter: u64,
    /// Buffered output block and read cursor.
    block: [u32; 16],
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut working = state;
        for _ in 0..4 {
            // A double round: four column rounds then four diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit key.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = next();
            pair[0] = word as u32;
            pair[1] = (word >> 32) as u32;
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(xs, (0..32).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn uniformish_outputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u32;
        for _ in 0..1000 {
            if rng.gen_bool(0.5) {
                ones += 1;
            }
        }
        assert!((350..650).contains(&ones), "biased: {ones}/1000");
        for _ in 0..100 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let n = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
        }
    }
}
