//! Propositional logic: formulas, parsing, evaluation, normal forms,
//! satisfiability, and resolution.
//!
//! This is the base formalism for "symbolic, deductive" assurance-argument
//! content in the sense of Graydon §II-B: claims written as symbols
//! connected by operators, e.g. `~on_grnd -> ~threv_en`.

mod ast;
mod cnf;
mod eval;
mod parser;
mod resolution;
mod sat;

pub use ast::{Atom, Formula};
pub use cnf::{Clause, ClauseSet, Literal};
pub use eval::{truth_table, TruthTable, Valuation};
pub use parser::parse;
pub use resolution::{resolution_entails, resolution_refute, ResolutionOutcome};
pub use sat::{all_models, dpll, dpll_clauses, SatResult};
