//! The argument graph: nodes, edges, construction, and traversal.

use crate::node::{EdgeKind, Node, NodeId, NodeKind};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A directed edge from a supported/contextualised node to its child.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// The parent (the node being supported or put in context).
    pub from: NodeId,
    /// The child (the supporting or contextual node).
    pub to: NodeId,
    /// The relationship kind.
    pub kind: EdgeKind,
}

/// Errors from building or mutating an argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgumentError {
    /// A node id was added twice.
    DuplicateId(NodeId),
    /// An edge referenced a node that does not exist.
    UnknownNode(NodeId),
    /// An edge was added twice.
    DuplicateEdge(NodeId, NodeId),
    /// An edge from a node to itself.
    SelfLoop(NodeId),
}

impl fmt::Display for ArgumentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgumentError::DuplicateId(id) => write!(f, "duplicate node id `{id}`"),
            ArgumentError::UnknownNode(id) => write!(f, "unknown node `{id}`"),
            ArgumentError::DuplicateEdge(a, b) => write!(f, "duplicate edge `{a}` -> `{b}`"),
            ArgumentError::SelfLoop(id) => write!(f, "self-loop on `{id}`"),
        }
    }
}

impl std::error::Error for ArgumentError {}

/// An assurance argument: a named directed graph of [`Node`]s.
///
/// The graph structure is deliberately permissive — notation-specific
/// well-formedness lives in [`crate::gsn`] and [`crate::cae`], because the
/// paper's point about "formalised syntax" is precisely that the rules are
/// a layer one chooses (and different formalisations disagree; see
/// [`crate::gsn::check_denney_pai`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Argument {
    name: String,
    nodes: BTreeMap<NodeId, Node>,
    edges: Vec<Edge>,
}

impl Argument {
    /// Starts a builder for an argument with the given name.
    pub fn builder(name: impl Into<String>) -> ArgumentBuilder {
        ArgumentBuilder {
            arg: Argument {
                name: name.into(),
                nodes: BTreeMap::new(),
                edges: Vec::new(),
            },
            error: None,
        }
    }

    /// The argument's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the argument has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id, if present.
    pub fn node(&self, id: &NodeId) -> Option<&Node> {
        self.nodes.get(id)
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.values()
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Children of `id` along edges of `kind`.
    pub fn children(&self, id: &NodeId, kind: EdgeKind) -> Vec<&Node> {
        self.edges
            .iter()
            .filter(|e| &e.from == id && e.kind == kind)
            .filter_map(|e| self.nodes.get(&e.to))
            .collect()
    }

    /// All children of `id` regardless of edge kind.
    pub fn all_children(&self, id: &NodeId) -> Vec<&Node> {
        self.edges
            .iter()
            .filter(|e| &e.from == id)
            .filter_map(|e| self.nodes.get(&e.to))
            .collect()
    }

    /// Parents of `id` (nodes with an edge into `id`).
    pub fn parents(&self, id: &NodeId) -> Vec<&Node> {
        self.edges
            .iter()
            .filter(|e| &e.to == id)
            .filter_map(|e| self.nodes.get(&e.from))
            .collect()
    }

    /// Root nodes: nodes with no incoming edges.
    pub fn roots(&self) -> Vec<&Node> {
        let targets: BTreeSet<&NodeId> = self.edges.iter().map(|e| &e.to).collect();
        self.nodes
            .values()
            .filter(|n| !targets.contains(&n.id))
            .collect()
    }

    /// Leaf nodes: nodes with no outgoing `SupportedBy` edges.
    pub fn support_leaves(&self) -> Vec<&Node> {
        let sources: BTreeSet<&NodeId> = self
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::SupportedBy)
            .map(|e| &e.from)
            .collect();
        self.nodes
            .values()
            .filter(|n| !sources.contains(&n.id))
            .collect()
    }

    /// All nodes reachable from `id` (excluding `id` itself), breadth-first.
    pub fn descendants(&self, id: &NodeId) -> Vec<&Node> {
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        queue.push_back(id.clone());
        let mut out = Vec::new();
        while let Some(current) = queue.pop_front() {
            for edge in self.edges.iter().filter(|e| e.from == current) {
                if seen.insert(edge.to.clone()) {
                    if let Some(n) = self.nodes.get(&edge.to) {
                        out.push(n);
                    }
                    queue.push_back(edge.to.clone());
                }
            }
        }
        out
    }

    /// Whether the `SupportedBy` subgraph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm over SupportedBy edges.
        let mut indegree: BTreeMap<&NodeId, usize> =
            self.nodes.keys().map(|id| (id, 0)).collect();
        for e in self.edges.iter().filter(|e| e.kind == EdgeKind::SupportedBy) {
            *indegree.get_mut(&e.to).expect("edge target exists") += 1;
        }
        let mut queue: VecDeque<&NodeId> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(id, _)| *id)
            .collect();
        let mut visited = 0usize;
        while let Some(id) = queue.pop_front() {
            visited += 1;
            for e in self
                .edges
                .iter()
                .filter(|e| e.kind == EdgeKind::SupportedBy && &e.from == id)
            {
                let d = indegree.get_mut(&e.to).expect("edge target exists");
                *d -= 1;
                if *d == 0 {
                    queue.push_back(&e.to);
                }
            }
        }
        visited == self.nodes.len()
    }

    /// Depth of the support tree from `id` (a leaf has depth 1).
    ///
    /// Returns `None` when the support graph below `id` has a cycle.
    pub fn support_depth(&self, id: &NodeId) -> Option<usize> {
        self.depth_rec(id, &mut BTreeSet::new())
    }

    fn depth_rec(&self, id: &NodeId, on_path: &mut BTreeSet<NodeId>) -> Option<usize> {
        if !on_path.insert(id.clone()) {
            return None; // cycle
        }
        let children = self.children(id, EdgeKind::SupportedBy);
        let result = if children.is_empty() {
            Some(1)
        } else {
            let mut best = 0usize;
            let mut ok = true;
            for c in children {
                match self.depth_rec(&c.id, on_path) {
                    Some(d) => best = best.max(d),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                Some(best + 1)
            } else {
                None
            }
        };
        on_path.remove(id);
        result
    }

    /// Nodes of a given kind, in id order.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<&Node> {
        self.nodes.values().filter(|n| n.kind == kind).collect()
    }

    /// Number of nodes carrying formal payloads.
    pub fn formalised_count(&self) -> usize {
        self.nodes.values().filter(|n| n.is_formalised()).count()
    }

    /// Mutable access to a node (for annotation-style edits).
    pub fn node_mut(&mut self, id: &NodeId) -> Option<&mut Node> {
        self.nodes.get_mut(id)
    }
}

/// Builder for [`Argument`]; errors are deferred to [`ArgumentBuilder::build`]
/// so construction chains read cleanly.
#[derive(Debug, Clone)]
pub struct ArgumentBuilder {
    arg: Argument,
    error: Option<ArgumentError>,
}

impl ArgumentBuilder {
    /// Adds a node.
    pub fn node(mut self, node: Node) -> Self {
        if self.error.is_some() {
            return self;
        }
        if self.arg.nodes.contains_key(&node.id) {
            self.error = Some(ArgumentError::DuplicateId(node.id.clone()));
            return self;
        }
        self.arg.nodes.insert(node.id.clone(), node);
        self
    }

    /// Convenience: adds a node by parts.
    pub fn add(self, id: &str, kind: NodeKind, text: &str) -> Self {
        self.node(Node::new(id, kind, text))
    }

    /// Adds a `SupportedBy` edge from `parent` to `child`.
    pub fn supported_by(self, parent: &str, child: &str) -> Self {
        self.edge(parent, child, EdgeKind::SupportedBy)
    }

    /// Adds an `InContextOf` edge from `node` to `context`.
    pub fn in_context_of(self, node: &str, context: &str) -> Self {
        self.edge(node, context, EdgeKind::InContextOf)
    }

    /// Adds an edge of the given kind.
    pub fn edge(mut self, from: &str, to: &str, kind: EdgeKind) -> Self {
        if self.error.is_some() {
            return self;
        }
        let from = NodeId::new(from);
        let to = NodeId::new(to);
        if from == to {
            self.error = Some(ArgumentError::SelfLoop(from));
            return self;
        }
        if !self.arg.nodes.contains_key(&from) {
            self.error = Some(ArgumentError::UnknownNode(from));
            return self;
        }
        if !self.arg.nodes.contains_key(&to) {
            self.error = Some(ArgumentError::UnknownNode(to));
            return self;
        }
        if self
            .arg
            .edges
            .iter()
            .any(|e| e.from == from && e.to == to && e.kind == kind)
        {
            self.error = Some(ArgumentError::DuplicateEdge(from, to));
            return self;
        }
        self.arg.edges.push(Edge { from, to, kind });
        self
    }

    /// Finishes construction.
    ///
    /// # Errors
    ///
    /// Returns the first construction error (duplicate id, unknown node,
    /// duplicate edge, or self-loop).
    pub fn build(self) -> Result<Argument, ArgumentError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.arg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Argument {
        Argument::builder("sample")
            .add("g1", NodeKind::Goal, "System is safe")
            .add("s1", NodeKind::Strategy, "Argue over hazards")
            .add("g2", NodeKind::Goal, "H1 mitigated")
            .add("g3", NodeKind::Goal, "H2 mitigated")
            .add("e1", NodeKind::Solution, "Test report")
            .add("e2", NodeKind::Solution, "Analysis")
            .add("c1", NodeKind::Context, "Operating role")
            .supported_by("g1", "s1")
            .supported_by("s1", "g2")
            .supported_by("s1", "g3")
            .supported_by("g2", "e1")
            .supported_by("g3", "e2")
            .in_context_of("g1", "c1")
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_basic_queries() {
        let a = sample();
        assert_eq!(a.len(), 7);
        assert_eq!(a.name(), "sample");
        assert!(!a.is_empty());
        assert_eq!(a.edges().len(), 6);
        assert!(a.node(&"g1".into()).is_some());
        assert!(a.node(&"zz".into()).is_none());
    }

    #[test]
    fn children_respect_edge_kind() {
        let a = sample();
        let g1 = NodeId::new("g1");
        assert_eq!(a.children(&g1, EdgeKind::SupportedBy).len(), 1);
        assert_eq!(a.children(&g1, EdgeKind::InContextOf).len(), 1);
        assert_eq!(a.all_children(&g1).len(), 2);
    }

    #[test]
    fn roots_and_leaves() {
        let a = sample();
        let roots: Vec<_> = a.roots().iter().map(|n| n.id.as_str().to_string()).collect();
        assert_eq!(roots, vec!["g1"]);
        let leaves: BTreeSet<_> = a
            .support_leaves()
            .iter()
            .map(|n| n.id.as_str().to_string())
            .collect();
        // Everything without outgoing SupportedBy: solutions and context.
        assert!(leaves.contains("e1") && leaves.contains("e2") && leaves.contains("c1"));
    }

    #[test]
    fn descendants_bfs() {
        let a = sample();
        let d = a.descendants(&"g1".into());
        assert_eq!(d.len(), 6);
        let d = a.descendants(&"g2".into());
        assert_eq!(d.len(), 1);
        assert!(a.descendants(&"e1".into()).is_empty());
    }

    #[test]
    fn parents_inverse_of_children() {
        let a = sample();
        let parents = a.parents(&"g2".into());
        assert_eq!(parents.len(), 1);
        assert_eq!(parents[0].id.as_str(), "s1");
    }

    #[test]
    fn acyclicity_and_depth() {
        let a = sample();
        assert!(a.is_acyclic());
        assert_eq!(a.support_depth(&"g1".into()), Some(4));
        assert_eq!(a.support_depth(&"e1".into()), Some(1));
    }

    #[test]
    fn cycle_detected() {
        let a = Argument::builder("cyclic")
            .add("g1", NodeKind::Goal, "A")
            .add("g2", NodeKind::Goal, "B")
            .supported_by("g1", "g2")
            .supported_by("g2", "g1")
            .build()
            .unwrap();
        assert!(!a.is_acyclic());
        assert_eq!(a.support_depth(&"g1".into()), None);
    }

    #[test]
    fn duplicate_id_rejected() {
        let err = Argument::builder("x")
            .add("g1", NodeKind::Goal, "A")
            .add("g1", NodeKind::Goal, "B")
            .build()
            .unwrap_err();
        assert_eq!(err, ArgumentError::DuplicateId("g1".into()));
    }

    #[test]
    fn unknown_node_rejected() {
        let err = Argument::builder("x")
            .add("g1", NodeKind::Goal, "A")
            .supported_by("g1", "nope")
            .build()
            .unwrap_err();
        assert_eq!(err, ArgumentError::UnknownNode("nope".into()));
        let err = Argument::builder("x")
            .add("g1", NodeKind::Goal, "A")
            .supported_by("nope", "g1")
            .build()
            .unwrap_err();
        assert_eq!(err, ArgumentError::UnknownNode("nope".into()));
    }

    #[test]
    fn duplicate_edge_and_self_loop_rejected() {
        let err = Argument::builder("x")
            .add("g1", NodeKind::Goal, "A")
            .add("g2", NodeKind::Goal, "B")
            .supported_by("g1", "g2")
            .supported_by("g1", "g2")
            .build()
            .unwrap_err();
        assert_eq!(err, ArgumentError::DuplicateEdge("g1".into(), "g2".into()));
        let err = Argument::builder("x")
            .add("g1", NodeKind::Goal, "A")
            .supported_by("g1", "g1")
            .build()
            .unwrap_err();
        assert_eq!(err, ArgumentError::SelfLoop("g1".into()));
    }

    #[test]
    fn error_display() {
        assert!(ArgumentError::DuplicateId("a".into())
            .to_string()
            .contains("duplicate"));
        assert!(ArgumentError::SelfLoop("a".into()).to_string().contains("self-loop"));
    }

    #[test]
    fn builder_keeps_first_error() {
        let err = Argument::builder("x")
            .add("g1", NodeKind::Goal, "A")
            .add("g1", NodeKind::Goal, "B") // first error
            .supported_by("g1", "missing") // would be second
            .build()
            .unwrap_err();
        assert_eq!(err, ArgumentError::DuplicateId("g1".into()));
    }

    #[test]
    fn nodes_of_kind_and_formalised_count() {
        let a = sample();
        assert_eq!(a.nodes_of_kind(NodeKind::Goal).len(), 3);
        assert_eq!(a.nodes_of_kind(NodeKind::Solution).len(), 2);
        assert_eq!(a.formalised_count(), 0);
    }

    #[test]
    fn node_mut_allows_enrichment() {
        let mut a = sample();
        use casekit_logic::prop::parse;
        a.node_mut(&"g2".into()).unwrap().formal =
            Some(crate::node::FormalPayload::Prop(parse("h1_mitigated").unwrap()));
        assert_eq!(a.formalised_count(), 1);
    }
}
