//! The service's wire types: edit operations, traffic ops, errors, and
//! the batched answer bundle.

use casekit_analysis::Diagnostic;
use casekit_core::{ArgumentError, Node, NodeId};
use casekit_fallacies::checker::MachineReport;
use casekit_logic::probe::ProbeReport;
use casekit_logic::prop::Formula;
use std::fmt;

/// One edit to a live case.
///
/// Formula and structural edits dirty the affected support steps and
/// invalidate the logical answer caches; [`SetText`](EditOp::SetText)
/// touches no formal content and invalidates only the lint stream.
#[derive(Debug, Clone, PartialEq)]
pub enum EditOp {
    /// Replace (or install) the propositional payload of a node. This
    /// is `set_premise` when aimed at a formal leaf and
    /// `replace_formula` anywhere else — the dirty-set machinery makes
    /// no distinction.
    ReplaceFormula {
        /// The node whose payload changes.
        node: NodeId,
        /// The new propositional reading.
        formula: Formula,
    },
    /// Replace a node's natural-language statement (text plane only).
    SetText {
        /// The node whose text changes.
        node: NodeId,
        /// The new statement.
        text: String,
    },
    /// Add a new node supporting `parent` (a `SupportedBy` edge).
    AddSupport {
        /// The existing parent to support.
        parent: NodeId,
        /// The new supporting node.
        node: Node,
    },
    /// Remove a node and every edge incident to it. Children formerly
    /// reached only through it become unreachable — which the lint
    /// stream reports, exactly as a batch run would.
    RemoveNode {
        /// The node to remove.
        node: NodeId,
    },
}

/// One element of a per-case traffic stream: apply an edit, or ask for
/// the batched answers.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseOp {
    /// Apply an edit.
    Edit(EditOp),
    /// Answer machine check + lint + probe against the current revision.
    Query,
}

/// Why an edit was rejected. The session is left on its previous
/// (valid) revision in every case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// No open case at this index.
    UnknownCase(usize),
    /// The referenced node does not exist in the current revision.
    UnknownNode(NodeId),
    /// The structural edit produced an invalid argument (duplicate id,
    /// unknown endpoint, self-loop, …).
    Rebuild(ArgumentError),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::UnknownCase(case) => write!(f, "no open case at index {case}"),
            EditError::UnknownNode(id) => write!(f, "no node `{id}` in the current revision"),
            EditError::Rebuild(err) => write!(f, "edit produces an invalid argument: {err}"),
        }
    }
}

impl std::error::Error for EditError {}

impl From<ArgumentError> for EditError {
    fn from(err: ArgumentError) -> Self {
        EditError::Rebuild(err)
    }
}

/// The premise probe at verdict level: which premises are load-bearing.
///
/// Incremental and batch sessions can surface *different* (equally
/// valid) counterexample valuations for a critical premise, so the
/// service answers with the classification — entailment plus the
/// critical/idle partition in premise order — which is the part the
/// solver's model choices cannot perturb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeAnswer {
    /// Whether the full premise set entails the conclusion.
    pub entailed: bool,
    /// Premise positions (sorted-id order) whose removal breaks
    /// entailment.
    pub critical: Vec<usize>,
    /// Premise positions the conclusion survives without.
    pub idle: Vec<usize>,
}

impl From<&ProbeReport> for ProbeAnswer {
    fn from(report: &ProbeReport) -> Self {
        ProbeAnswer {
            entailed: report.entailed,
            critical: report.critical_indices(),
            idle: report.idle_indices(),
        }
    }
}

/// The batched multi-question answer for one case revision: everything
/// the toolkit can say about the argument, from one shared compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseAnswers {
    /// The mechanical check: per-step deduction, root entailment,
    /// formal fallacies.
    pub machine: MachineReport,
    /// The full CaseLint diagnostic stream, in canonical order.
    pub lint: Vec<Diagnostic>,
    /// The premise probe classification (`None` when the argument has
    /// no formal conclusion to probe).
    pub probe: Option<ProbeAnswer>,
}
