//! Quantitative confidence propagation over arguments.
//!
//! Graydon §V-B mentions that "argument confidence is assessed mechanically
//! (e.g., through BBN modelling)" in some proposals (his ref \[34\] surveys
//! the mechanisms and finds none adequate in all cases). This module
//! implements two of the simplest, clearly-labelled models so that the
//! evidence-sufficiency experiment (§VI-E) can compare judgment procedures:
//!
//! * **Noisy-AND**: a node's confidence is the product of its children's,
//!   discounted by a per-step inference weight — the usual independence
//!   assumption.
//! * **Weakest link**: a node's confidence is the minimum of its
//!   children's, discounted likewise.
//!
//! Neither model is endorsed; both inherit the paper's caveat that the
//! numbers are only as good as the leaf assessments and independence
//! assumptions, which are informal judgments.

use crate::argument::{Argument, NodeIdx};
use crate::node::{EdgeKind, NodeId};
use std::collections::BTreeMap;
use std::fmt;

/// Why a confidence computation was rejected.
///
/// These are the module's former panic conditions, kept as the documented
/// contract but surfaced as `Err` values: callers feeding user-supplied
/// graphs or assessments get a diagnosis, not an abort.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfidenceError {
    /// The support graph contains a cycle, so propagation has no
    /// well-defined order.
    CyclicArgument,
    /// A supplied leaf confidence was outside [0, 1] (or NaN).
    ConfidenceOutOfRange {
        /// The leaf whose confidence was rejected.
        node: NodeId,
        /// The offending value.
        value: f64,
    },
    /// The default leaf confidence was outside [0, 1] (or NaN).
    DefaultOutOfRange {
        /// The offending value.
        value: f64,
    },
    /// The per-step inference weight was outside [0, 1] (or NaN).
    StepWeightOutOfRange {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ConfidenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfidenceError::CyclicArgument => {
                write!(
                    f,
                    "confidence propagation requires an acyclic support graph"
                )
            }
            ConfidenceError::ConfidenceOutOfRange { node, value } => {
                write!(f, "confidence for `{node}` must be in [0, 1], got {value}")
            }
            ConfidenceError::DefaultOutOfRange { value } => {
                write!(f, "default leaf confidence must be in [0, 1], got {value}")
            }
            ConfidenceError::StepWeightOutOfRange { value } => {
                write!(f, "step weight must be in [0, 1], got {value}")
            }
        }
    }
}

impl std::error::Error for ConfidenceError {}

/// Aggregation rule for child confidences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Product of child confidences (independence assumption).
    NoisyAnd,
    /// Minimum of child confidences.
    WeakestLink,
}

/// A confidence assessment over an argument.
#[derive(Debug, Clone)]
pub struct Assessment {
    /// Per-node confidence in [0, 1].
    values: BTreeMap<NodeId, f64>,
}

impl Assessment {
    /// The confidence assigned to `id`, if computed.
    pub fn confidence(&self, id: &NodeId) -> Option<f64> {
        self.values.get(id).copied()
    }

    /// All node confidences in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&NodeId, f64)> {
        self.values.iter().map(|(k, v)| (k, *v))
    }
}

/// Propagates leaf confidences up the support graph.
///
/// * `leaf_confidence` supplies a value in [0, 1] for each support leaf
///   (nodes without `SupportedBy` children); missing leaves default to
///   `default_leaf`.
/// * `step_weight` multiplies each inference step (1.0 = lossless
///   deduction; lower models inductive discount).
///
/// # Errors
///
/// [`ConfidenceError::CyclicArgument`] if the support graph is cyclic,
/// [`ConfidenceError::ConfidenceOutOfRange`] /
/// [`ConfidenceError::DefaultOutOfRange`] /
/// [`ConfidenceError::StepWeightOutOfRange`] if a supplied confidence,
/// the default, or `step_weight` is outside [0, 1].
pub fn propagate(
    argument: &Argument,
    leaf_confidence: &BTreeMap<NodeId, f64>,
    default_leaf: f64,
    step_weight: f64,
    aggregation: Aggregation,
) -> Result<Assessment, ConfidenceError> {
    validate(argument, leaf_confidence, default_leaf, step_weight)?;
    // Memoise over the arena (indexed, allocation-free lookups), then
    // key the public assessment by id.
    let mut memo: Vec<Option<f64>> = vec![None; argument.len()];
    for idx in argument.node_indices() {
        compute(
            argument,
            idx,
            leaf_confidence,
            default_leaf,
            step_weight,
            aggregation,
            &mut memo,
        );
    }
    let values = argument
        .node_indices()
        .filter_map(|idx| memo[idx.index()].map(|v| (argument.id_at(idx).clone(), v)))
        .collect();
    Ok(Assessment { values })
}

/// The shared precondition checks of [`propagate`] and [`leaf_impact`]:
/// acyclic graph, every confidence and weight in [0, 1] (NaN fails the
/// range test). Both entry points validate *before* any early return so
/// that degenerate graphs (e.g. rootless) cannot mask bad parameters.
fn validate(
    argument: &Argument,
    leaf_confidence: &BTreeMap<NodeId, f64>,
    default_leaf: f64,
    step_weight: f64,
) -> Result<(), ConfidenceError> {
    if !argument.is_acyclic() {
        return Err(ConfidenceError::CyclicArgument);
    }
    if !(0.0..=1.0).contains(&step_weight) {
        return Err(ConfidenceError::StepWeightOutOfRange { value: step_weight });
    }
    if !(0.0..=1.0).contains(&default_leaf) {
        return Err(ConfidenceError::DefaultOutOfRange {
            value: default_leaf,
        });
    }
    for (id, v) in leaf_confidence {
        if !(0.0..=1.0).contains(v) {
            return Err(ConfidenceError::ConfidenceOutOfRange {
                node: id.clone(),
                value: *v,
            });
        }
    }
    Ok(())
}

fn compute(
    argument: &Argument,
    idx: NodeIdx,
    leaf_confidence: &BTreeMap<NodeId, f64>,
    default_leaf: f64,
    step_weight: f64,
    aggregation: Aggregation,
    memo: &mut Vec<Option<f64>>,
) -> f64 {
    if let Some(v) = memo[idx.index()] {
        return v;
    }
    let children: Vec<NodeIdx> = argument.children_idx(idx, EdgeKind::SupportedBy).collect();
    let value = if children.is_empty() {
        leaf_confidence
            .get(argument.id_at(idx))
            .copied()
            .unwrap_or(default_leaf)
    } else {
        let child_values: Vec<f64> = children
            .into_iter()
            .map(|c| {
                compute(
                    argument,
                    c,
                    leaf_confidence,
                    default_leaf,
                    step_weight,
                    aggregation,
                    memo,
                )
            })
            .collect();
        let combined = match aggregation {
            Aggregation::NoisyAnd => child_values.iter().product::<f64>(),
            Aggregation::WeakestLink => child_values.iter().copied().fold(f64::INFINITY, f64::min),
        };
        combined * step_weight
    };
    memo[idx.index()] = Some(value);
    value
}

/// The *impact* of a leaf on the root: root confidence with the leaf at
/// its assessed value minus root confidence with the leaf forced to zero.
///
/// This is the graph-tracing evidence-sufficiency judgment GSN is said to
/// ease (Graydon §VI-E), computed mechanically for comparison against
/// probing (see [`crate::semantics::probe_argument`]).
///
/// Returns `Ok(None)` if the argument has no root.
///
/// # Errors
///
/// The same [`ConfidenceError`] conditions as [`propagate`].
pub fn leaf_impact(
    argument: &Argument,
    leaf_confidence: &BTreeMap<NodeId, f64>,
    default_leaf: f64,
    step_weight: f64,
    aggregation: Aggregation,
    leaf: &NodeId,
) -> Result<Option<f64>, ConfidenceError> {
    // Validate everything before looking for a root: a cyclic argument
    // has no root at all, and a rootless one must not turn bad
    // parameters into a quiet `Ok(None)`.
    validate(argument, leaf_confidence, default_leaf, step_weight)?;
    let Some(root) = argument
        .sorted_roots_idx()
        .next()
        .map(|idx| argument.id_at(idx).clone())
    else {
        return Ok(None);
    };
    let baseline = propagate(
        argument,
        leaf_confidence,
        default_leaf,
        step_weight,
        aggregation,
    )?
    .confidence(&root);
    let Some(baseline) = baseline else {
        return Ok(None);
    };
    let mut zeroed = leaf_confidence.clone();
    zeroed.insert(leaf.clone(), 0.0);
    let without =
        propagate(argument, &zeroed, default_leaf, step_weight, aggregation)?.confidence(&root);
    Ok(without.map(|w| baseline - w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_argument;

    fn sample() -> Argument {
        parse_argument(
            r#"argument "conf" {
                goal g1 "Top" {
                  strategy s1 "split" {
                    goal g2 "A" { solution e1 "ev1" }
                    goal g3 "B" { solution e2 "ev2" }
                  }
                }
            }"#,
        )
        .unwrap()
    }

    fn leaves(pairs: &[(&str, f64)]) -> BTreeMap<NodeId, f64> {
        pairs.iter().map(|(id, v)| (NodeId::new(id), *v)).collect()
    }

    #[test]
    fn noisy_and_multiplies_up_the_tree() {
        let a = sample();
        let lc = leaves(&[("e1", 0.9), ("e2", 0.8)]);
        let assess = propagate(&a, &lc, 1.0, 1.0, Aggregation::NoisyAnd).unwrap();
        assert_eq!(assess.confidence(&"e1".into()), Some(0.9));
        assert!((assess.confidence(&"g2".into()).unwrap() - 0.9).abs() < 1e-12);
        // s1 = 0.9 * 0.8; g1 = s1.
        let g1 = assess.confidence(&"g1".into()).unwrap();
        assert!((g1 - 0.72).abs() < 1e-12);
    }

    #[test]
    fn weakest_link_takes_minimum() {
        let a = sample();
        let lc = leaves(&[("e1", 0.9), ("e2", 0.5)]);
        let assess = propagate(&a, &lc, 1.0, 1.0, Aggregation::WeakestLink).unwrap();
        assert!((assess.confidence(&"g1".into()).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn step_weight_discounts_each_level() {
        let a = sample();
        let lc = leaves(&[("e1", 1.0), ("e2", 1.0)]);
        let assess = propagate(&a, &lc, 1.0, 0.9, Aggregation::NoisyAnd).unwrap();
        // Four inference levels: g2/g3 (0.9), s1 (0.9 * 0.81=0.9*0.9*0.9),
        // g1 adds another 0.9.
        let g1 = assess.confidence(&"g1".into()).unwrap();
        let expected = 0.9 * (0.9 * (0.9 * 1.0) * (0.9 * 1.0));
        assert!((g1 - expected).abs() < 1e-12, "got {g1}, want {expected}");
    }

    #[test]
    fn missing_leaves_use_default() {
        let a = sample();
        let assess = propagate(&a, &BTreeMap::new(), 0.5, 1.0, Aggregation::NoisyAnd).unwrap();
        assert_eq!(assess.confidence(&"e1".into()), Some(0.5));
        assert!((assess.confidence(&"g1".into()).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn leaf_impact_reflects_criticality() {
        let a = sample();
        let lc = leaves(&[("e1", 0.9), ("e2", 0.8)]);
        let impact_e1 = leaf_impact(&a, &lc, 1.0, 1.0, Aggregation::NoisyAnd, &"e1".into())
            .unwrap()
            .unwrap();
        // Zeroing e1 zeroes the root (product): impact = 0.72.
        assert!((impact_e1 - 0.72).abs() < 1e-12);
    }

    #[test]
    fn iter_covers_all_nodes() {
        let a = sample();
        let assess = propagate(&a, &BTreeMap::new(), 1.0, 1.0, Aggregation::NoisyAnd).unwrap();
        assert_eq!(assess.iter().count(), a.len());
    }

    #[test]
    fn cyclic_argument_is_an_error() {
        use crate::node::NodeKind;
        let a = Argument::builder("cyc")
            .add("g1", NodeKind::Goal, "A")
            .add("g2", NodeKind::Goal, "B")
            .supported_by("g1", "g2")
            .supported_by("g2", "g1")
            .build()
            .unwrap();
        let err = propagate(&a, &BTreeMap::new(), 1.0, 1.0, Aggregation::NoisyAnd).unwrap_err();
        assert_eq!(err, ConfidenceError::CyclicArgument);
        assert!(err.to_string().contains("acyclic"));
        // leaf_impact surfaces the same diagnosis instead of panicking.
        let impact = leaf_impact(
            &a,
            &BTreeMap::new(),
            1.0,
            1.0,
            Aggregation::NoisyAnd,
            &"g2".into(),
        );
        assert_eq!(impact, Err(ConfidenceError::CyclicArgument));
    }

    #[test]
    fn out_of_range_confidence_is_an_error() {
        let a = sample();
        let lc = leaves(&[("e1", 1.5)]);
        let err = propagate(&a, &lc, 1.0, 1.0, Aggregation::NoisyAnd).unwrap_err();
        assert_eq!(
            err,
            ConfidenceError::ConfidenceOutOfRange {
                node: NodeId::new("e1"),
                value: 1.5
            }
        );
        assert!(err.to_string().contains("must be in [0, 1]"));
        // NaN is rejected by the same range check.
        let nan = leaves(&[("e1", f64::NAN)]);
        assert!(matches!(
            propagate(&a, &nan, 1.0, 1.0, Aggregation::NoisyAnd),
            Err(ConfidenceError::ConfidenceOutOfRange { .. })
        ));
    }

    #[test]
    fn out_of_range_step_weight_is_an_error() {
        let a = sample();
        let err = propagate(&a, &BTreeMap::new(), 1.0, 1.2, Aggregation::NoisyAnd).unwrap_err();
        assert_eq!(err, ConfidenceError::StepWeightOutOfRange { value: 1.2 });
        assert!(err.to_string().contains("step weight"));
        assert_eq!(
            propagate(&a, &BTreeMap::new(), -0.1, 1.0, Aggregation::NoisyAnd).unwrap_err(),
            ConfidenceError::DefaultOutOfRange { value: -0.1 }
        );
    }

    #[test]
    fn rootless_argument_does_not_mask_bad_parameters() {
        // An empty argument has no root; leaf_impact must still reject
        // out-of-range parameters instead of answering Ok(None).
        let empty = Argument::builder("empty").build().unwrap();
        assert_eq!(
            leaf_impact(
                &empty,
                &BTreeMap::new(),
                1.0,
                2.0,
                Aggregation::NoisyAnd,
                &"e1".into()
            ),
            Err(ConfidenceError::StepWeightOutOfRange { value: 2.0 })
        );
        let bad_leaf = leaves(&[("e1", f64::NAN)]);
        assert!(matches!(
            leaf_impact(
                &empty,
                &bad_leaf,
                1.0,
                1.0,
                Aggregation::NoisyAnd,
                &"e1".into()
            ),
            Err(ConfidenceError::ConfidenceOutOfRange { .. })
        ));
        // With valid parameters the rootless contract stands.
        assert_eq!(
            leaf_impact(
                &empty,
                &BTreeMap::new(),
                1.0,
                1.0,
                Aggregation::NoisyAnd,
                &"e1".into()
            ),
            Ok(None)
        );
    }

    #[test]
    fn context_nodes_do_not_enter_support_math() {
        let a = parse_argument(
            r#"argument "ctx" {
                goal g1 "Top" {
                  context c1 "scope"
                  solution e1 "ev"
                }
            }"#,
        )
        .unwrap();
        let lc = leaves(&[("e1", 0.8)]);
        let assess = propagate(&a, &lc, 0.1, 1.0, Aggregation::NoisyAnd).unwrap();
        // c1 is a leaf of the *support* graph but not a support child of
        // g1, so g1 = 0.8 regardless of c1's default.
        assert!((assess.confidence(&"g1".into()).unwrap() - 0.8).abs() < 1e-12);
    }
}
