//! Toulmin's model of argument, including the extended textual rendering
//! used for Haley et al.'s "inner" arguments (Graydon §III-K).
//!
//! A Toulmin argument moves from *grounds* to a *claim* licensed by a
//! *warrant*; the warrant may rest on *backing*, the move may carry a
//! *qualifier* ("presumably"), and *rebuttals* record the conditions under
//! which the claim fails. Warrants can themselves be argued: Haley et al.
//! nest `warranted by (given grounds … thus claim …)` blocks, which we
//! model by letting a warrant be either text or a nested argument.

use crate::argument::Argument;
use crate::node::{Node, NodeKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A warrant: the license for the grounds-to-claim step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Warrant {
    /// A plain textual warrant.
    Text(String),
    /// A warrant established by a nested Toulmin argument
    /// (Haley et al.'s `warranted by ( … )`).
    Nested(Box<ToulminArgument>),
}

/// A Toulmin-model argument.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToulminArgument {
    /// The claim being argued for.
    pub claim: String,
    /// The grounds (data) offered.
    pub grounds: Vec<String>,
    /// Warrants licensing the step from grounds to claim.
    pub warrants: Vec<Warrant>,
    /// Backing for the warrants, if stated.
    pub backing: Option<String>,
    /// Qualifier (e.g. "presumably", "almost certainly"), if stated.
    pub qualifier: Option<String>,
    /// Conditions of rebuttal.
    pub rebuttals: Vec<String>,
}

impl ToulminArgument {
    /// Starts building an argument for `claim`.
    pub fn new(claim: impl Into<String>) -> Self {
        ToulminArgument {
            claim: claim.into(),
            grounds: Vec::new(),
            warrants: Vec::new(),
            backing: None,
            qualifier: None,
            rebuttals: Vec::new(),
        }
    }

    /// Adds a ground.
    pub fn ground(mut self, text: impl Into<String>) -> Self {
        self.grounds.push(text.into());
        self
    }

    /// Adds a textual warrant.
    pub fn warrant(mut self, text: impl Into<String>) -> Self {
        self.warrants.push(Warrant::Text(text.into()));
        self
    }

    /// Adds a nested-argument warrant.
    pub fn warranted_by(mut self, nested: ToulminArgument) -> Self {
        self.warrants.push(Warrant::Nested(Box::new(nested)));
        self
    }

    /// Sets the backing.
    pub fn backing(mut self, text: impl Into<String>) -> Self {
        self.backing = Some(text.into());
        self
    }

    /// Sets the qualifier.
    pub fn qualifier(mut self, text: impl Into<String>) -> Self {
        self.qualifier = Some(text.into());
        self
    }

    /// Adds a rebuttal.
    pub fn rebutted_by(mut self, text: impl Into<String>) -> Self {
        self.rebuttals.push(text.into());
        self
    }

    /// Total number of elements (claim + grounds + warrants, recursively +
    /// backing + qualifier + rebuttals) — a size metric for effort models.
    pub fn element_count(&self) -> usize {
        1 + self.grounds.len()
            + self
                .warrants
                .iter()
                .map(|w| match w {
                    Warrant::Text(_) => 1,
                    Warrant::Nested(n) => n.element_count(),
                })
                .sum::<usize>()
            + usize::from(self.backing.is_some())
            + usize::from(self.qualifier.is_some())
            + self.rebuttals.len()
    }

    /// Renders in the extended textual notation of Haley et al.
    /// (`given grounds … warranted by … thus claim … rebutted by …`).
    pub fn render_extended(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        for (i, g) in self.grounds.iter().enumerate() {
            let keyword = if i == 0 {
                "given grounds"
            } else {
                "and grounds"
            };
            out.push_str(&format!("{pad}{keyword} \"{g}\"\n"));
        }
        for w in &self.warrants {
            match w {
                Warrant::Text(t) => {
                    out.push_str(&format!("{pad}warranted by \"{t}\"\n"));
                }
                Warrant::Nested(n) => {
                    out.push_str(&format!("{pad}warranted by (\n"));
                    n.render_into(out, indent + 1);
                    out.push_str(&format!("{pad})\n"));
                }
            }
        }
        if let Some(b) = &self.backing {
            out.push_str(&format!("{pad}on backing \"{b}\"\n"));
        }
        match &self.qualifier {
            Some(q) => out.push_str(&format!("{pad}thus, {q}, claim \"{}\"\n", self.claim)),
            None => out.push_str(&format!("{pad}thus claim \"{}\"\n", self.claim)),
        }
        for r in &self.rebuttals {
            out.push_str(&format!("{pad}rebutted by \"{r}\"\n"));
        }
    }

    /// Converts to the common graph model: the claim becomes a goal, each
    /// ground a solution, each warrant a justification (nested warrants
    /// become supporting sub-goals), rebuttals become context nodes
    /// prefixed "Rebuttal:".
    ///
    /// Ids are generated as `t<N>`.
    pub fn to_argument(&self, name: impl Into<String>) -> Argument {
        let mut builder = Argument::builder(name);
        let mut counter = 0usize;
        builder = self.add_to(&mut counter, builder).0;
        builder.build().expect("generated ids are unique")
    }

    fn add_to(
        &self,
        counter: &mut usize,
        mut builder: crate::argument::ArgumentBuilder,
    ) -> (crate::argument::ArgumentBuilder, String) {
        let fresh = |prefix: &str, counter: &mut usize| {
            let id = format!("{prefix}{counter}");
            *counter += 1;
            id
        };
        let goal_id = fresh("t", counter);
        builder = builder.node(Node::new(
            goal_id.as_str(),
            NodeKind::Goal,
            self.claim.clone(),
        ));
        for g in &self.grounds {
            let gid = fresh("t", counter);
            builder = builder
                .node(Node::new(gid.as_str(), NodeKind::Solution, g.clone()))
                .supported_by(&goal_id, &gid);
        }
        for w in &self.warrants {
            match w {
                Warrant::Text(t) => {
                    let wid = fresh("t", counter);
                    builder = builder
                        .node(Node::new(wid.as_str(), NodeKind::Justification, t.clone()))
                        .in_context_of(&goal_id, &wid);
                }
                Warrant::Nested(n) => {
                    let (b, sub_id) = n.add_to(counter, builder);
                    builder = b.supported_by(&goal_id, &sub_id);
                }
            }
        }
        for r in &self.rebuttals {
            let rid = fresh("t", counter);
            builder = builder
                .node(Node::new(
                    rid.as_str(),
                    NodeKind::Context,
                    format!("Rebuttal: {r}"),
                ))
                .in_context_of(&goal_id, &rid);
        }
        (builder, goal_id)
    }

    /// Builds the inner argument from Haley et al. 2008 as reproduced in
    /// Graydon §III-K (claim P2 about HR credentials).
    pub fn haley_inner_example() -> ToulminArgument {
        ToulminArgument::new("HR credentials provided --> HR member")
            .ground("Valid credentials are given only to HR members")
            .warranted_by(
                ToulminArgument::new("Credential administration is correct")
                    .ground("Credentials are given in person")
                    .warrant("Credential administrators are honest and reliable"),
            )
            .rebutted_by("HR member is dishonest")
    }
}

impl fmt::Display for ToulminArgument {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_extended())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_elements() {
        let t = ToulminArgument::new("Socrates is mortal")
            .ground("Socrates is a man")
            .warrant("All men are mortal")
            .backing("Millennia of observed mortality")
            .qualifier("certainly")
            .rebutted_by("Socrates is a god in disguise");
        assert_eq!(t.grounds.len(), 1);
        assert_eq!(t.warrants.len(), 1);
        assert!(t.backing.is_some());
        // claim + ground + warrant + backing + qualifier + rebuttal.
        assert_eq!(t.element_count(), 6);
    }

    #[test]
    fn extended_rendering_matches_haley_shape() {
        let t = ToulminArgument::haley_inner_example();
        let r = t.render_extended();
        assert!(r.contains("given grounds \"Valid credentials are given only to HR members\""));
        assert!(r.contains("warranted by ("));
        assert!(r.contains("given grounds \"Credentials are given in person\""));
        assert!(r.contains("warranted by \"Credential administrators are honest and reliable\""));
        assert!(r.contains("thus claim \"Credential administration is correct\""));
        assert!(r.contains("thus claim \"HR credentials provided --> HR member\""));
        assert!(r.contains("rebutted by \"HR member is dishonest\""));
        // Nested content is indented deeper than outer content.
        let nested_line = r.lines().find(|l| l.contains("given in person")).unwrap();
        assert!(nested_line.starts_with("  "));
    }

    #[test]
    fn display_is_extended_rendering() {
        let t = ToulminArgument::haley_inner_example();
        assert_eq!(t.to_string(), t.render_extended());
    }

    #[test]
    fn qualifier_appears_in_claim_line() {
        let t = ToulminArgument::new("C")
            .ground("G")
            .qualifier("presumably");
        assert!(t
            .render_extended()
            .contains("thus, presumably, claim \"C\""));
    }

    #[test]
    fn element_count_recurses_into_nested_warrants() {
        let t = ToulminArgument::haley_inner_example();
        // Outer: claim + 1 ground + 1 rebuttal = 3; nested: claim + ground
        // + warrant = 3. Total 6.
        assert_eq!(t.element_count(), 6);
    }

    #[test]
    fn conversion_to_graph_model() {
        let t = ToulminArgument::haley_inner_example();
        let a = t.to_argument("haley-inner");
        // Outer goal + outer ground + nested goal + nested ground +
        // nested warrant (justification) + rebuttal (context) = 6 nodes.
        assert_eq!(a.len(), 6);
        let roots = a.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].kind, NodeKind::Goal);
        // The nested warrant-argument supports the outer goal.
        let support = a.children(&roots[0].id, crate::node::EdgeKind::SupportedBy);
        assert_eq!(support.len(), 2); // ground + nested goal
                                      // And the conversion is GSN-well-formed.
        assert!(crate::gsn::check(&a).is_empty());
    }

    #[test]
    fn deeply_nested_warrants_convert() {
        let t = ToulminArgument::new("L0").ground("g0").warranted_by(
            ToulminArgument::new("L1")
                .ground("g1")
                .warranted_by(ToulminArgument::new("L2").ground("g2").warrant("w2")),
        );
        let a = t.to_argument("deep");
        assert_eq!(a.len(), 7);
        assert!(crate::gsn::check(&a).is_empty());
        assert_eq!(a.support_depth(&a.roots()[0].id.clone()), Some(4));
    }
}
