//! Experiment C (§VI-C): does formalisation restrict the reading audience?
//!
//! Subjects from each stakeholder background read the same argument in one
//! of two notations — informal prose (the control) or a symbolic,
//! deductive rendering — and answer comprehension questions. The model:
//! prose comprehension depends mildly on background; symbolic
//! comprehension depends strongly on formal-logic skill. Reading time also
//! rises for symbolic text at low skill (decoding cost).

use crate::population::{generate as generate_pool, Background, PoolConfig, Subject};
use crate::runtime::{stream_rng, Runtime};
use crate::stats::{cohens_d, describe, Descriptives};
use crate::Error;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The notation a subject reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Notation {
    /// Informal natural-language argument (control).
    Informal,
    /// Symbolic, deductive rendering.
    Symbolic,
}

/// Configuration for experiment C.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Subjects per background per notation.
    pub per_cell: usize,
    /// Argument length in words (prose form).
    pub words: usize,
    /// Comprehension questions asked.
    pub questions: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            per_cell: 25,
            words: 1200,
            questions: 10,
            seed: 0xC,
        }
    }
}

/// Per-background × notation cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// The background.
    pub background: Background,
    /// The notation read.
    pub notation: Notation,
    /// Comprehension scores (fraction of questions correct).
    pub comprehension: Descriptives,
    /// Reading minutes.
    pub minutes: Descriptives,
}

/// Results of experiment C.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// All cells (backgrounds × notations).
    pub cells: Vec<Cell>,
    /// Effect size (Cohen's d) of notation on comprehension for the
    /// lowest-skill background (managers) — the paper's headline worry.
    pub manager_effect: f64,
    /// Same for software engineers — expected near zero.
    pub engineer_effect: f64,
}

fn comprehension_probability(subject: &Subject, notation: Notation) -> f64 {
    match notation {
        // Prose: high floor, mild skill effect.
        Notation::Informal => 0.70 + 0.15 * subject.logic_skill,
        // Symbols: driven by logic skill.
        Notation::Symbolic => 0.15 + 0.75 * subject.logic_skill,
    }
}

fn reading_minutes(subject: &Subject, notation: Notation, words: usize, rng: &mut impl Rng) -> f64 {
    let base = words as f64 / subject.reading_wpm;
    let decode_penalty = match notation {
        Notation::Informal => 1.0,
        // Low skill: up to 2.5× slower decoding symbols.
        Notation::Symbolic => 1.0 + 1.5 * (1.0 - subject.logic_skill),
    };
    let noise = 1.0 + 0.1 * crate::population::standard_normal(rng);
    (base * decode_penalty * noise).max(0.5)
}

/// Runs experiment C serially (equivalent to
/// [`run_with`]`(config, &Runtime::serial())`).
pub fn run(config: &Config) -> Result<Report, Error> {
    run_with(config, &Runtime::serial())
}

/// Runs experiment C on the given runtime. Each background × notation
/// cell fans its subjects out across the workers on per-subject RNG
/// streams; the report is identical for every worker count.
pub fn run_with(config: &Config, rt: &Runtime) -> Result<Report, Error> {
    if config.questions == 0 {
        return Err(Error::InvalidConfig(
            "experiment C needs at least one comprehension question".into(),
        ));
    }
    let pool = generate_pool(&PoolConfig {
        per_background: config.per_cell * 2,
        seed: config.seed ^ 0xCAFE,
        ..PoolConfig::default()
    });
    let mut cells = Vec::new();
    let mut manager_scores: (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
    let mut engineer_scores: (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());

    for (background_index, background) in Background::ALL.into_iter().enumerate() {
        for notation in [Notation::Informal, Notation::Symbolic] {
            let subjects: Vec<&Subject> = pool
                .iter()
                .filter(|s| s.background == background)
                .skip(if notation == Notation::Informal {
                    0
                } else {
                    config.per_cell
                })
                .take(config.per_cell)
                .collect();
            // One RNG lane per cell: subject j's draws are independent of
            // every other cell and of the worker that runs them.
            let lane = (background_index * 2 + usize::from(notation == Notation::Symbolic)) as u64;
            let measurements = rt.map(&subjects, |j, subject| {
                let mut rng = stream_rng(config.seed, lane, j as u64);
                let p = comprehension_probability(subject, notation).clamp(0.0, 1.0);
                let correct = (0..config.questions).filter(|_| rng.gen_bool(p)).count();
                let score = correct as f64 / config.questions as f64;
                let minutes = reading_minutes(subject, notation, config.words, &mut rng);
                (score, minutes)
            });
            let mut scores = Vec::new();
            let mut minutes = Vec::new();
            for (score, mins) in measurements {
                scores.push(score);
                minutes.push(mins);
                match (background, notation) {
                    (Background::Manager, Notation::Informal) => manager_scores.0.push(score),
                    (Background::Manager, Notation::Symbolic) => manager_scores.1.push(score),
                    (Background::SoftwareEngineer, Notation::Informal) => {
                        engineer_scores.0.push(score);
                    }
                    (Background::SoftwareEngineer, Notation::Symbolic) => {
                        engineer_scores.1.push(score);
                    }
                    _ => {}
                }
            }
            cells.push(Cell {
                background,
                notation,
                comprehension: describe(&scores)?,
                minutes: describe(&minutes)?,
            });
        }
    }

    Ok(Report {
        cells,
        manager_effect: cohens_d(&manager_scores.0, &manager_scores.1)?,
        engineer_effect: cohens_d(&engineer_scores.0, &engineer_scores.1)?,
    })
}

impl Report {
    /// The cell for a background/notation pair.
    pub fn cell(&self, background: Background, notation: Notation) -> &Cell {
        self.cells
            .iter()
            .find(|c| c.background == background && c.notation == notation)
            .expect("all cells populated")
    }

    /// Renders the results table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Experiment C: restriction of the reading audience (§VI-C)"
        );
        let _ = writeln!(
            out,
            "  {:<22} {:>18} {:>18}",
            "background", "prose score", "symbolic score"
        );
        for background in Background::ALL {
            let prose = self.cell(background, Notation::Informal);
            let symbolic = self.cell(background, Notation::Symbolic);
            let _ = writeln!(
                out,
                "  {:<22} {:>12.2} ± {:<4.2} {:>12.2} ± {:<4.2}",
                background.to_string(),
                prose.comprehension.mean,
                prose.comprehension.ci95,
                symbolic.comprehension.mean,
                symbolic.comprehension.ci95,
            );
        }
        let _ = writeln!(
            out,
            "  notation effect (Cohen's d): managers {:.2}, software engineers {:.2}",
            self.manager_effect, self.engineer_effect
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prose_is_read_adequately_by_everyone() {
        let r = run(&Config::default()).unwrap();
        for background in Background::ALL {
            let c = r.cell(background, Notation::Informal);
            assert!(
                c.comprehension.mean > 0.6,
                "{background} prose score {}",
                c.comprehension.mean
            );
        }
    }

    #[test]
    fn symbolic_notation_hurts_low_skill_backgrounds() {
        let r = run(&Config::default()).unwrap();
        let manager = r.cell(Background::Manager, Notation::Symbolic);
        let engineer = r.cell(Background::SoftwareEngineer, Notation::Symbolic);
        assert!(manager.comprehension.mean < 0.5);
        assert!(engineer.comprehension.mean > 0.6);
    }

    #[test]
    fn effect_size_concentrated_on_non_logicians() {
        let r = run(&Config::default()).unwrap();
        assert!(
            r.manager_effect > 1.0,
            "large manager effect, got {}",
            r.manager_effect
        );
        assert!(
            r.engineer_effect < r.manager_effect / 2.0,
            "engineer effect {} should be much smaller",
            r.engineer_effect
        );
    }

    #[test]
    fn symbols_slow_down_unskilled_readers() {
        let r = run(&Config::default()).unwrap();
        let m_prose = r.cell(Background::Manager, Notation::Informal).minutes.mean;
        let m_sym = r.cell(Background::Manager, Notation::Symbolic).minutes.mean;
        assert!(m_sym > m_prose * 1.5);
        let e_prose = r
            .cell(Background::SoftwareEngineer, Notation::Informal)
            .minutes
            .mean;
        let e_sym = r
            .cell(Background::SoftwareEngineer, Notation::Symbolic)
            .minutes
            .mean;
        assert!(e_sym < e_prose * 1.6, "skilled readers decode cheaply");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            run(&Config::default()).unwrap(),
            run(&Config::default()).unwrap()
        );
    }

    #[test]
    fn parallel_report_identical_to_serial() {
        let config = Config {
            per_cell: 7,
            words: 600,
            questions: 6,
            seed: 0xC1,
        };
        let serial = run(&config).unwrap();
        for workers in [2, 4, 8] {
            let parallel = run_with(&config, &Runtime::with_workers(workers)).unwrap();
            assert_eq!(serial, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn empty_cells_surface_a_stats_error() {
        let err = run(&Config {
            per_cell: 0,
            ..Config::default()
        })
        .unwrap_err();
        assert!(matches!(err, Error::Stats(_)), "{err}");
    }

    #[test]
    fn zero_questions_is_an_invalid_config() {
        let err = run(&Config {
            questions: 0,
            ..Config::default()
        })
        .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)), "{err}");
        assert!(err.to_string().contains("question"));
    }

    #[test]
    fn render_covers_all_backgrounds() {
        let text = run(&Config::default()).unwrap().render();
        for background in Background::ALL {
            assert!(text.contains(&background.to_string()));
        }
        assert!(text.contains("Cohen's d"));
    }
}
