//! Witness reuse for the logical passes.
//!
//! Most solver questions the lint passes ask are *satisfiability*
//! questions whose expected answer is SAT: "are the premises
//! consistent?", "is the conclusion falsifiable?", "does the argument
//! survive dropping premise `i`?". A CDCL call answers each in tens of
//! microseconds — but a model found for one question very often
//! answers several of the others outright, because a single total
//! assignment can simultaneously witness many assumption sets.
//!
//! [`WitnessPool`] exploits that: every satisfiable solver call stores
//! its full model ([`Theory::witness_under`]), and every later check
//! first scans the stored witnesses, evaluating just the assumption
//! literals (one array read each). A hit proves SAT without touching
//! the solver; only misses — including every genuinely UNSAT question
//! — pay for a real search. This is the classic model-reuse trick from
//! SAT sweeping, and it is *answer-invariant*: a witness hit returns
//! `true` exactly when the solver would, so diagnostics are
//! byte-identical with or without the pool.
//!
//! Witness validity across a session: learned clauses are consequences
//! of the database (every stored model still satisfies them), and
//! Tseitin definitions added later only constrain variables the stored
//! witnesses do not cover — [`WitnessPool::covers`] rejects any
//! assumption over a variable newer than the witness, so stale hits
//! are impossible.

use casekit_fallacies::formal::SatOracle;
use casekit_logic::prop::{Lit, Theory};

/// A pool of total assignments known to satisfy the session's clause
/// database, reused across a lint run's satisfiability checks —
/// together with the dual cache: assumption sets proven unsatisfiable,
/// which answer any superset question UNSAT for free (adding
/// assumptions can only preserve unsatisfiability).
///
/// The pool is also sound to keep alive *across edits* of the argument
/// it serves, provided the session's clause database only grows (the
/// incremental service's contract): stored models stay models of every
/// clause they were checked against, UNSAT cores stay UNSAT under
/// clause addition, and the bounds check above fences off variables
/// introduced after a witness was stored.
#[derive(Debug, Default)]
pub struct WitnessPool {
    witnesses: Vec<Vec<bool>>,
    /// Assumption sets proven UNSAT, stored as sorted literal codes.
    unsat_cores: Vec<Vec<usize>>,
    /// Solver calls actually paid (diagnostic counters for tests).
    solver_calls: usize,
    /// Checks answered from a stored witness or unsat set.
    witness_hits: usize,
}

impl WitnessPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stored witnesses plus cached UNSAT cores.
    pub fn len(&self) -> usize {
        self.witnesses.len() + self.unsat_cores.len()
    }

    /// Whether the pool holds no witnesses and no UNSAT cores.
    pub fn is_empty(&self) -> bool {
        self.witnesses.is_empty() && self.unsat_cores.is_empty()
    }

    /// Solver calls actually paid (cumulative; survives [`clear`](Self::clear)).
    pub fn solver_calls(&self) -> usize {
        self.solver_calls
    }

    /// Checks answered from a stored witness or UNSAT core.
    pub fn witness_hits(&self) -> usize {
        self.witness_hits
    }

    /// Drops every stored witness and UNSAT core (the counters are
    /// kept — they describe the pool's lifetime, not its contents).
    /// Required when the session it serves is rebuilt from scratch:
    /// literal codes are only meaningful against the database that
    /// assigned them.
    pub fn clear(&mut self) {
        self.witnesses.clear();
        self.unsat_cores.clear();
    }

    /// Whether `witness` proves the assumption set satisfiable: every
    /// assumption literal must be within the witness and true under it.
    fn covers(witness: &[bool], assumptions: &[Lit]) -> bool {
        assumptions.iter().all(|lit| {
            witness
                .get(lit.var().index())
                .is_some_and(|&v| v == lit.is_positive())
        })
    }

    /// `Theory::check_under(assumptions)`, answered from a stored
    /// witness (SAT) or a subsumed unsat set (UNSAT) when possible, and
    /// from a real solver call — whose model or assumption set joins
    /// the pool — otherwise. Returns exactly what `check_under` would.
    pub fn check(&mut self, theory: &mut Theory, assumptions: &[Lit]) -> bool {
        if self.witnesses.iter().any(|w| Self::covers(w, assumptions)) {
            self.witness_hits += 1;
            return true;
        }
        let mut codes: Vec<usize> = assumptions.iter().map(|l| l.code()).collect();
        codes.sort_unstable();
        if self
            .unsat_cores
            .iter()
            .any(|core| is_sorted_subset(core, &codes))
        {
            self.witness_hits += 1;
            return false;
        }
        self.solver_calls += 1;
        match theory.witness_under(assumptions.iter().copied()) {
            Some(witness) => {
                self.witnesses.push(witness);
                true
            }
            None => {
                self.unsat_cores.push(codes);
                false
            }
        }
    }
}

impl SatOracle for WitnessPool {
    fn sat_check(&mut self, theory: &mut Theory, assumptions: &[Lit]) -> bool {
        self.check(theory, assumptions)
    }
}

/// Whether sorted `needle` is a subset of sorted `haystack`.
fn is_sorted_subset(needle: &[usize], haystack: &[usize]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|n| it.by_ref().any(|h| h == n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use casekit_logic::prop::parse;

    fn theory_of(srcs: &[&str]) -> Theory {
        let mut t = Theory::new();
        for src in srcs {
            let f = parse(src).unwrap();
            t.assert_formula(&f);
        }
        t
    }

    #[test]
    fn witness_answers_follow_the_solver() {
        let mut t = theory_of(&["p -> q"]);
        let p = t.formula_lit(&parse("p").unwrap());
        let q = t.formula_lit(&parse("q").unwrap());
        let mut pool = WitnessPool::new();
        assert!(pool.check(&mut t, &[p]));
        assert!(pool.check(&mut t, &[p, q]));
        assert!(!pool.check(&mut t, &[p, !q]));
        // Same answers as the raw session.
        assert!(t.check_under([p]));
        assert!(t.check_under([p, q]));
        assert!(!t.check_under([p, !q]));
    }

    #[test]
    fn compatible_questions_reuse_a_witness() {
        let mut t = theory_of(&["a & b & c"]);
        let a = t.formula_lit(&parse("a").unwrap());
        let b = t.formula_lit(&parse("b").unwrap());
        let c = t.formula_lit(&parse("c").unwrap());
        let mut pool = WitnessPool::new();
        assert!(pool.check(&mut t, &[a]));
        assert!(pool.check(&mut t, &[b]));
        assert!(pool.check(&mut t, &[c]));
        assert!(pool.check(&mut t, &[a, b, c]));
        assert_eq!(pool.solver_calls, 1, "one model answers all four");
        assert_eq!(pool.witness_hits, 3);
    }

    #[test]
    fn new_variables_never_hit_stale_witnesses() {
        let mut t = theory_of(&["p"]);
        let p = t.formula_lit(&parse("p").unwrap());
        let mut pool = WitnessPool::new();
        assert!(pool.check(&mut t, &[p]));
        // A fresh variable introduced after the stored witness: the
        // bounds check forces a real solver call for both polarities.
        let r = t.formula_lit(&parse("r").unwrap());
        let calls = pool.solver_calls;
        assert!(pool.check(&mut t, &[!r]));
        assert_eq!(pool.solver_calls, calls + 1);
    }
}
