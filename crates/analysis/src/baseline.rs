//! The one-tool-per-lint baseline: every check runs as its own
//! standalone tool over the same case, so every logical lint pays its
//! own Tseitin compilation and every standalone fallacy detector
//! compiles its own premise/conclusion session. At the source level
//! ([`lint_source_recompiling`]) each tool additionally re-parses the
//! case text, exactly as separate command-line tools over one file
//! would. Diagnostics are identical to [`crate::lint_argument`] by
//! construction (the pass bodies are shared); only the parse and
//! compilation counts differ, which is exactly what `BENCH_lint.json`
//! measures.

use crate::diagnostic::{Diagnostic, LintConfig, Sink};
use crate::witness::WitnessPool;
use crate::{logical, structural};
use casekit_core::dsl::parse_argument;
use casekit_core::semantics::{
    formal_conclusion, formal_conclusion_index, formal_premise_indices, formal_premises,
    ArgumentTheory,
};
use casekit_core::Argument;
use casekit_fallacies::formal;
use casekit_logic::prop::Formula;
use casekit_logic::ParseError;

/// One standalone tool: a single lint pass over a freshly obtained
/// argument, paying its own compilation if it needs the solver.
type Tool = fn(&Argument, &mut Sink<'_>);

fn tool_structural(argument: &Argument, sink: &mut Sink<'_>) {
    structural::run(argument, sink);
}

fn tool_non_deductive(argument: &Argument, sink: &mut Sink<'_>) {
    logical::pass_non_deductive(argument, &mut ArgumentTheory::compile(argument), sink);
}

fn tool_inconsistent_premises(argument: &Argument, sink: &mut Sink<'_>) {
    logical::pass_inconsistent_premises(
        argument,
        &mut ArgumentTheory::compile(argument),
        &mut WitnessPool::new(),
        sink,
    );
}

fn tool_tautological_conclusion(argument: &Argument, sink: &mut Sink<'_>) {
    logical::pass_tautological_conclusion(
        argument,
        &mut ArgumentTheory::compile(argument),
        &mut WitnessPool::new(),
        sink,
    );
}

fn tool_unsatisfiable_conclusion(argument: &Argument, sink: &mut Sink<'_>) {
    logical::pass_unsatisfiable_conclusion(
        argument,
        &mut ArgumentTheory::compile(argument),
        &mut WitnessPool::new(),
        sink,
    );
}

fn tool_entailment(argument: &Argument, sink: &mut Sink<'_>) {
    logical::pass_entailment(
        argument,
        &mut ArgumentTheory::compile(argument),
        &mut WitnessPool::new(),
        sink,
    );
}

fn tool_redundant_premises(argument: &Argument, sink: &mut Sink<'_>) {
    logical::pass_redundant_premises(
        argument,
        &mut ArgumentTheory::compile(argument),
        &mut WitnessPool::new(),
        sink,
    );
}

fn tool_circular_steps(argument: &Argument, sink: &mut Sink<'_>) {
    logical::pass_circular_steps(
        argument,
        &mut ArgumentTheory::compile(argument),
        &mut WitnessPool::new(),
        sink,
    );
}

/// Shared shape of the six standalone fallacy tools: extract the formal
/// premises and conclusion, run one detector (which compiles its own
/// session), and route the findings into the diagnostic stream.
fn fallacy_tool(
    argument: &Argument,
    sink: &mut Sink<'_>,
    detect: fn(&[&Formula], &Formula) -> Vec<formal::Finding>,
) {
    let premises = formal_premises(argument);
    if premises.is_empty() {
        return;
    }
    if let Some(conclusion) = formal_conclusion(argument) {
        let findings = detect(&premises, conclusion);
        logical::emit_fallacy_findings(
            argument,
            &formal_premise_indices(argument),
            formal_conclusion_index(argument),
            findings,
            sink,
        );
    }
}

fn tool_begging(argument: &Argument, sink: &mut Sink<'_>) {
    fallacy_tool(argument, sink, |p, c| formal::begging_the_question(p, c));
}

fn tool_incompatible(argument: &Argument, sink: &mut Sink<'_>) {
    fallacy_tool(argument, sink, |p, _| formal::incompatible_premises(p));
}

fn tool_contradiction(argument: &Argument, sink: &mut Sink<'_>) {
    fallacy_tool(argument, sink, |p, c| {
        formal::premise_conclusion_contradiction(p, c)
    });
}

fn tool_denying(argument: &Argument, sink: &mut Sink<'_>) {
    fallacy_tool(argument, sink, |p, c| formal::denying_the_antecedent(p, c));
}

fn tool_affirming(argument: &Argument, sink: &mut Sink<'_>) {
    fallacy_tool(argument, sink, |p, c| {
        formal::affirming_the_consequent(p, c)
    });
}

fn tool_conversion(argument: &Argument, sink: &mut Sink<'_>) {
    fallacy_tool(argument, sink, |p, c| formal::false_conversion(p, c));
}

fn tool_quantifier(argument: &Argument, sink: &mut Sink<'_>) {
    logical::pass_quantifier(argument, sink);
}

/// Every check as its own tool, in the engine's pass order (so findings
/// — and hence diagnostics — are byte-identical to the shared-session
/// sweep). Thirteen of the fifteen tools compile a solver session.
const TOOLS: &[Tool] = &[
    tool_structural,
    tool_non_deductive,
    tool_inconsistent_premises,
    tool_tautological_conclusion,
    tool_unsatisfiable_conclusion,
    tool_entailment,
    tool_redundant_premises,
    tool_circular_steps,
    tool_begging,
    tool_incompatible,
    tool_contradiction,
    tool_denying,
    tool_affirming,
    tool_conversion,
    tool_quantifier,
];

/// [`crate::lint_argument`], paid the expensive way: one fresh
/// [`ArgumentTheory`] (or detector session) compilation per
/// solver-backed tool — thirteen compilations for a fully formal
/// argument, against the engine's one.
pub fn lint_argument_recompiling(argument: &Argument, config: &LintConfig) -> Vec<Diagnostic> {
    let mut sink = Sink::new(config);
    for tool in TOOLS {
        tool(argument, &mut sink);
    }
    sink.finish()
}

/// [`crate::lint_source`], paid the expensive way: every tool re-parses
/// the case text *and* recompiles its own session — the cost model of
/// running fifteen separate command-line checkers over one `.case`
/// file.
///
/// # Errors
///
/// Returns the [`ParseError`] if `src` is not a well-formed case.
pub fn lint_source_recompiling(
    src: &str,
    config: &LintConfig,
) -> Result<Vec<Diagnostic>, ParseError> {
    let mut sink = Sink::new(config);
    let mut tools = TOOLS.iter();
    if let Some(tool) = tools.next() {
        // The first tool's parse doubles as validation: one parse per
        // tool, exactly fifteen in total.
        tool(&parse_argument(src)?, &mut sink);
    }
    for tool in tools {
        if let Ok(argument) = parse_argument(src) {
            tool(&argument, &mut sink);
        }
    }
    Ok(sink.finish())
}
