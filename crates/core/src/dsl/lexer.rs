//! Error-tolerant lexer for the `.case` DSL.
//!
//! Unlike the retained seed lexer (see [`super::seed`]), this lexer never
//! aborts: characters no token can start with and unterminated string
//! literals are reported as [`ParseError`]s and skipped (an unterminated
//! string still yields its partial content as a token), so the parser
//! always receives the full token stream. It also iterates
//! [`str::char_indices`] directly instead of materializing a `Vec<char>`
//! plus a parallel byte-offset table — corpus ingestion lexes each file
//! with no per-file scratch allocations beyond the token vector itself.

use casekit_logic::{ParseError, Span, SyntaxError, SyntaxErrorKind};

/// A DSL token.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    /// A bare word: a kind keyword, modifier, `ref`, or identifier.
    Word(String),
    /// A quoted string literal (content, unescaped).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
}

impl Tok {
    /// How the token reads in an "expected X, found Y" message.
    pub(crate) fn describe(&self) -> String {
        match self {
            Tok::Word(w) => format!("`{w}`"),
            Tok::Str(_) => "a string".to_string(),
            Tok::LBrace => "`{`".to_string(),
            Tok::RBrace => "`}`".to_string(),
        }
    }
}

/// A token plus the byte range of source text it came from.
#[derive(Debug, Clone)]
pub(crate) struct Lexed {
    pub(crate) tok: Tok,
    pub(crate) span: Span,
}

/// Lexes `input` to the end, collecting errors instead of stopping.
///
/// Every byte is either consumed by a token, skipped as
/// whitespace/comment, or skipped with an error — so the parser behind
/// this lexer sees everything the author wrote.
pub(crate) fn lex(input: &str) -> (Vec<Lexed>, Vec<ParseError>) {
    let mut toks = Vec::new();
    let mut errors = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '#' || (c == '/' && input[i + 1..].starts_with('/')) {
            // Comment to end of line.
            for (_, d) in chars.by_ref() {
                if d == '\n' {
                    break;
                }
            }
        } else if c == '{' {
            chars.next();
            toks.push(Lexed {
                tok: Tok::LBrace,
                span: Span::new(i, i + 1),
            });
        } else if c == '}' {
            chars.next();
            toks.push(Lexed {
                tok: Tok::RBrace,
                span: Span::new(i, i + 1),
            });
        } else if c == '"' {
            chars.next();
            let mut content = String::new();
            let mut closed = false;
            let mut end = input.len();
            while let Some((j, d)) = chars.next() {
                match d {
                    '"' => {
                        closed = true;
                        end = j + 1;
                        break;
                    }
                    '\\' if matches!(chars.peek(), Some(&(_, '"')) | Some(&(_, '\\'))) => {
                        let (_, escaped) = chars.next().expect("peeked");
                        content.push(escaped);
                    }
                    other => content.push(other),
                }
            }
            if !closed {
                errors.push(
                    SyntaxError::with_kind(
                        SyntaxErrorKind::UnterminatedString,
                        "unterminated string literal",
                        Span::new(i, input.len()),
                    )
                    .with_hint("add a closing `\"`"),
                );
            }
            toks.push(Lexed {
                tok: Tok::Str(content),
                span: Span::new(i, end),
            });
        } else if c.is_alphanumeric() || c == '_' {
            let start = i;
            let mut end = i + c.len_utf8();
            chars.next();
            while let Some(&(j, d)) = chars.peek() {
                if d.is_alphanumeric() || d == '_' {
                    end = j + d.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            toks.push(Lexed {
                tok: Tok::Word(input[start..end].to_string()),
                span: Span::new(start, end),
            });
        } else {
            chars.next();
            errors.push(SyntaxError::with_kind(
                SyntaxErrorKind::UnexpectedChar,
                format!("unexpected character `{c}`"),
                Span::new(i, i + c.len_utf8()),
            ));
        }
    }
    (toks, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(src: &str) -> Vec<Tok> {
        let (toks, errors) = lex(src);
        assert!(errors.is_empty(), "unexpected lex errors: {errors:?}");
        toks.into_iter().map(|l| l.tok).collect()
    }

    #[test]
    fn lexes_the_four_token_kinds() {
        assert_eq!(
            words(r#"goal g1 "text" { }"#),
            vec![
                Tok::Word("goal".into()),
                Tok::Word("g1".into()),
                Tok::Str("text".into()),
                Tok::LBrace,
                Tok::RBrace,
            ]
        );
    }

    #[test]
    fn spans_are_byte_accurate() {
        let (toks, _) = lex(r#"goal g1 "t""#);
        assert_eq!(toks[0].span, Span::new(0, 4));
        assert_eq!(toks[1].span, Span::new(5, 7));
        assert_eq!(toks[2].span, Span::new(8, 11));
    }

    #[test]
    fn comments_skipped_both_styles() {
        assert_eq!(
            words("a // to eol\nb # hash\nc"),
            vec![
                Tok::Word("a".into()),
                Tok::Word("b".into()),
                Tok::Word("c".into()),
            ]
        );
    }

    #[test]
    fn lone_slash_is_an_error_not_a_comment() {
        let (toks, errors) = lex("a / b");
        assert_eq!(toks.len(), 2);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].kind, SyntaxErrorKind::UnexpectedChar);
        assert!(errors[0].message.contains('/'));
        assert_eq!(errors[0].span, Span::new(2, 3));
    }

    #[test]
    fn escapes_in_strings() {
        assert_eq!(
            words(r#""a \"quoted\" \\ name""#),
            vec![Tok::Str(r#"a "quoted" \ name"#.into())]
        );
        // A backslash before anything else is kept literally (seed behavior).
        assert_eq!(words(r#""a \n b""#), vec![Tok::Str(r"a \n b".into())]);
    }

    #[test]
    fn unterminated_string_reported_and_tokenized() {
        let (toks, errors) = lex(r#"goal g1 "never ends"#);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].kind, SyntaxErrorKind::UnterminatedString);
        assert_eq!(errors[0].span, Span::new(8, 19));
        // The partial content still reaches the parser.
        assert_eq!(toks.last().unwrap().tok, Tok::Str("never ends".into()));
    }

    #[test]
    fn stray_characters_skipped_with_errors() {
        let (toks, errors) = lex("goal $ g1 @");
        assert_eq!(toks.len(), 2);
        assert_eq!(errors.len(), 2);
        assert!(errors[0].message.contains('$'));
        assert!(errors[1].message.contains('@'));
    }

    #[test]
    fn multibyte_characters_keep_byte_spans() {
        let (toks, errors) = lex("é \"café\" ☃");
        // `é` is alphanumeric → a word; `☃` is not → an error.
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].tok, Tok::Str("café".into()));
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].span.len(), '☃'.len_utf8());
    }

    #[test]
    fn empty_and_comment_only_inputs() {
        assert!(words("").is_empty());
        assert!(words("// only a comment").is_empty());
        assert!(words("# only a comment").is_empty());
    }
}
