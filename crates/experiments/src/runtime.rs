//! The parallel experiment runtime: scoped-thread fan-out over subject
//! populations with deterministic per-subject RNG streams.
//!
//! The §VI studies simulate hundreds to thousands of independent
//! subjects. Each subject's measurements are a pure function of (the
//! subject, the shared immutable study materials, a per-subject RNG
//! stream), so the population shards cleanly across worker threads.
//! Three design rules keep parallel runs *byte-identical* to serial
//! ones:
//!
//! 1. **Per-subject streams** — [`stream_rng`] derives an independent
//!    ChaCha stream from `(master seed, lane, subject index)`, so a
//!    subject's draws never depend on which worker ran it or on how
//!    many subjects ran before it.
//! 2. **Order-preserving fan-out** — [`Runtime::map`] shards the
//!    population into contiguous per-worker chunks and reassembles
//!    results in input order; reductions then run serially over that
//!    stable order.
//! 3. **Shared immutable materials** — generated arguments, their
//!    machine-check findings, and (for callers that keep asking) their
//!    compiled theories are built once and only read inside workers.
//!    [`machine_check_sweep`] compiles and checks each argument exactly
//!    once across the whole run, so a review never recompiles a theory;
//!    [`machine_check_sweep_cached`] serves the re-asking case by
//!    cloning per-question solver sessions out of an immutable
//!    [`TheoryCache`].
//!
//! `Runtime { workers: 1 }` runs everything inline on the calling
//! thread — exactly the serial loops the experiments had before this
//! module existed — and `Runtime::default()` uses every available core.
//! The `workers: k` reports for any `k` are asserted identical in the
//! crate's determinism tests and measured in `repro experiments`
//! (`BENCH_experiments.json`).
//!
//! The executor is std-only (`std::thread::scope`): the vendor tree has
//! no rayon, and the fan-out shape here — one balanced pass over a
//! slice — does not need work stealing.

use casekit_core::semantics::{ArgumentTheory, TheoryCache};
use casekit_core::Argument;
use casekit_fallacies::checker::{check_compiled, MachineReport};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;

/// Parallelism configuration for an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Runtime {
    /// Worker threads to shard subject populations across. `1` runs
    /// serially on the calling thread; results are identical for every
    /// value.
    pub workers: usize,
}

impl Default for Runtime {
    /// [`Runtime::from_env`]: the `RUNTIME_WORKERS` environment
    /// variable when set, one worker per available core otherwise.
    fn default() -> Self {
        Self::from_env()
    }
}

/// Parses a `RUNTIME_WORKERS`-style value: a positive integer, or
/// `None` for anything absent or unparseable (the caller falls back to
/// the core count).
fn parse_workers(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&w| w > 0)
}

impl Runtime {
    /// The runtime CI and local runs configure through the environment:
    /// `RUNTIME_WORKERS` when set to a positive integer, every
    /// available core otherwise. Because worker count is unobservable
    /// in every report, the CI matrix runs the test suite under
    /// `RUNTIME_WORKERS={1,4}` and expects identical results.
    pub fn from_env() -> Self {
        let workers = Self::pinned_from_env().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Runtime { workers }
    }

    /// The explicit `RUNTIME_WORKERS` pin, if one is set and parses to
    /// a positive integer — the single source of truth for that
    /// variable's syntax (callers layer their own fallbacks on top).
    pub fn pinned_from_env() -> Option<usize> {
        parse_workers(std::env::var("RUNTIME_WORKERS").ok().as_deref())
    }

    /// The serial runtime: everything on the calling thread.
    pub fn serial() -> Self {
        Runtime { workers: 1 }
    }

    /// A runtime with exactly `workers` threads (minimum 1).
    pub fn with_workers(workers: usize) -> Self {
        Runtime {
            workers: workers.max(1),
        }
    }

    /// Applies `f` to every item, returning results in input order.
    ///
    /// `f(i, &items[i])` must be a pure function of its arguments (plus
    /// captured immutable state) — the contract that makes the worker
    /// count unobservable in the output. With `workers == 1` (or one
    /// item) this is a plain inline loop; otherwise items are split
    /// into contiguous chunks, one scoped thread per chunk, and the
    /// per-chunk outputs are concatenated back in order.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (the scope joins every worker
    /// first).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.workers.max(1).min(items.len().max(1));
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }
        let chunk_len = items.len().div_ceil(workers);
        let chunks: Vec<Vec<R>> = std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = items
                .chunks(chunk_len)
                .enumerate()
                .map(|(chunk_index, chunk)| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .enumerate()
                            .map(|(j, x)| f(chunk_index * chunk_len + j, x))
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("experiment worker panicked"))
                .collect()
        });
        chunks.into_iter().flatten().collect()
    }
}

/// The RNG stream for one unit of simulated work.
///
/// `seed` is the experiment's master seed, `lane` separates phases that
/// reuse subject indices (e.g. the argument sizes of experiment B), and
/// `index` is the subject's position. The three are mixed through a
/// SplitMix64 finalizer so neighbouring indices land in unrelated
/// ChaCha streams. Worker count and execution order never enter the
/// derivation — the heart of the serial/parallel equivalence.
pub fn stream_rng(seed: u64, lane: u64, index: u64) -> ChaCha8Rng {
    let mut x =
        seed ^ lane.wrapping_mul(0xA076_1D64_78BD_642F) ^ index.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ChaCha8Rng::seed_from_u64(x)
}

/// Machine-checks a population of arguments: one theory compilation and
/// one [`check_compiled`] pass per argument, fanned across the runtime's
/// workers.
///
/// This is the §VI-A machine arm at population scale — the reports are
/// deterministic, so experiment code calls this once and shares the
/// findings across every simulated review of the same argument instead
/// of recompiling per review. Each freshly compiled theory is checked
/// in place inside its worker (a sweep asks exactly one question set
/// per argument, so nothing is cached); callers that keep re-asking
/// about the same arguments should compile into a [`TheoryCache`] and
/// clone per-question sessions out of it instead.
pub fn machine_check_sweep<A>(arguments: &[A], runtime: &Runtime) -> Vec<MachineReport>
where
    A: Borrow<Argument> + Sync,
{
    runtime.map(arguments, |_, a| {
        let mut theory = ArgumentTheory::compile(a.borrow());
        check_compiled(a.borrow(), &mut theory)
    })
}

/// [`machine_check_sweep`] against theories already compiled into a
/// shared [`TheoryCache`]: every worker clones a private session out of
/// the immutable cache instead of recompiling the argument's payloads.
///
/// Use this when the cache outlives the sweep (the compilations are
/// about to serve further probes or what-if rounds); for a one-shot
/// sweep, [`machine_check_sweep`] avoids the per-argument session
/// clone.
///
/// # Panics
///
/// Panics if `cache` holds fewer theories than `arguments` (they must
/// be built from the same slice).
pub fn machine_check_sweep_cached<A>(
    arguments: &[A],
    cache: &TheoryCache,
    runtime: &Runtime,
) -> Vec<MachineReport>
where
    A: Borrow<Argument> + Sync,
{
    runtime.map(arguments, |i, a| {
        let mut session = cache.session(i);
        check_compiled(a.borrow(), &mut session)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig, SeededFormal};
    use casekit_fallacies::checker::check_argument;
    use rand::Rng;

    #[test]
    fn map_preserves_input_order_for_every_worker_count() {
        let items: Vec<usize> = (0..103).collect();
        let serial = Runtime::serial().map(&items, |i, &x| (i, x * 2));
        for workers in [2, 3, 4, 8, 64, 1000] {
            let parallel = Runtime::with_workers(workers).map(&items, |i, &x| (i, x * 2));
            assert_eq!(serial, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(Runtime::with_workers(8).map(&empty, |_, &x| x).is_empty());
        assert_eq!(
            Runtime::with_workers(8).map(&[7u8], |i, &x| (i, x)),
            vec![(0, 7)]
        );
    }

    #[test]
    fn stream_rng_is_per_index_deterministic_and_lane_separated() {
        let draws = |lane: u64, index: u64| -> Vec<f64> {
            let mut rng = stream_rng(0xFEED, lane, index);
            (0..4).map(|_| rng.gen::<f64>()).collect()
        };
        assert_eq!(draws(0, 5), draws(0, 5));
        assert_ne!(draws(0, 5), draws(0, 6));
        assert_ne!(draws(0, 5), draws(1, 5));
    }

    #[test]
    fn with_workers_clamps_to_at_least_one() {
        assert_eq!(Runtime::with_workers(0).workers, 1);
        assert!(Runtime::default().workers >= 1);
    }

    #[test]
    fn runtime_workers_parsing_accepts_positive_integers_only() {
        assert_eq!(parse_workers(Some("4")), Some(4));
        assert_eq!(parse_workers(Some(" 2 ")), Some(2));
        assert_eq!(parse_workers(Some("0")), None);
        assert_eq!(parse_workers(Some("-3")), None);
        assert_eq!(parse_workers(Some("many")), None);
        assert_eq!(parse_workers(Some("")), None);
        assert_eq!(parse_workers(None), None);
    }

    #[test]
    fn env_configured_runtime_matches_serial_results() {
        // Whatever RUNTIME_WORKERS the harness (or the CI matrix) set,
        // the environment-configured runtime must agree with serial —
        // the parallel-identity guarantee the matrix exercises.
        let items: Vec<usize> = (0..57).collect();
        let serial = Runtime::serial().map(&items, |i, &x| (i, x.wrapping_mul(31)));
        let from_env = Runtime::from_env().map(&items, |i, &x| (i, x.wrapping_mul(31)));
        assert_eq!(serial, from_env);
    }

    #[test]
    fn machine_check_sweep_matches_per_argument_checks() {
        let arguments: Vec<Argument> = (0..6)
            .map(|i| {
                let formal = match i % 3 {
                    0 => vec![],
                    1 => vec![SeededFormal::Begging],
                    _ => vec![SeededFormal::MissingSupport],
                };
                generate(&GeneratorConfig {
                    hazards: 4 + i,
                    formal,
                    informal: Vec::new(),
                    seed: 0x5EED + i as u64,
                })
                .unwrap()
                .case
                .argument
            })
            .collect();
        let expected: Vec<MachineReport> = arguments.iter().map(check_argument).collect();
        for workers in [1, 2, 4] {
            let swept = machine_check_sweep(&arguments, &Runtime::with_workers(workers));
            assert_eq!(swept, expected, "workers = {workers}");
            // The cached variant (shared compilations, cloned sessions)
            // returns the same reports.
            let cache = TheoryCache::compile(arguments.iter());
            let cached =
                machine_check_sweep_cached(&arguments, &cache, &Runtime::with_workers(workers));
            assert_eq!(cached, expected, "cached, workers = {workers}");
        }
    }
}
