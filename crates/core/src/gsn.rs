//! GSN well-formedness: the Community Standard rules and the deviating
//! Denney–Pai formalisation.
//!
//! Graydon §III-I notes that Denney & Pai's formal syntax includes the rule
//! "(n → m) ∧ [l(n) = g] ⇒ l(m) ∈ {s, e, a, j, c}" — i.e. goals cannot
//! support goals — *even though GSN explicitly allows goals to support
//! other goals*. Both rule sets are implemented here so the discrepancy is
//! executable: [`check`] follows the GSN Community Standard, while
//! [`check_denney_pai`] follows the published formalisation, and the two
//! disagree on any argument with a goal-to-goal support edge.

use crate::argument::Argument;
use crate::node::{EdgeKind, NodeId, NodeKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A well-formedness finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Issue {
    /// The rule that was violated.
    pub rule: Rule,
    /// The node (or edge source) where the violation was detected.
    pub at: NodeId,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for Issue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] at `{}`: {}", self.rule, self.at, self.detail)
    }
}

/// The GSN well-formedness rules checked by this module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rule {
    /// Only GSN node kinds may appear in a GSN argument.
    GsnVocabulary,
    /// `SupportedBy` may only leave goals and strategies.
    SupportSource,
    /// `SupportedBy` may only arrive at goals, strategies, and solutions.
    SupportTarget,
    /// `InContextOf` may only leave goals and strategies.
    ContextSource,
    /// `InContextOf` may only arrive at contexts, assumptions, and
    /// justifications.
    ContextTarget,
    /// Solutions must not have outgoing edges.
    SolutionIsLeaf,
    /// The support graph must be acyclic.
    Acyclic,
    /// There must be at least one root goal.
    RootGoal,
    /// Goals and strategies need support or an `undeveloped` mark.
    Developed,
    /// An undeveloped node must not have supporting children.
    UndevelopedHasNoSupport,
    /// Denney–Pai only: goals may not directly support goals.
    DenneyPaiNoGoalToGoal,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Rule::GsnVocabulary => "gsn-vocabulary",
            Rule::SupportSource => "support-source",
            Rule::SupportTarget => "support-target",
            Rule::ContextSource => "context-source",
            Rule::ContextTarget => "context-target",
            Rule::SolutionIsLeaf => "solution-is-leaf",
            Rule::Acyclic => "acyclic",
            Rule::RootGoal => "root-goal",
            Rule::Developed => "developed",
            Rule::UndevelopedHasNoSupport => "undeveloped-has-no-support",
            Rule::DenneyPaiNoGoalToGoal => "denney-pai-no-goal-to-goal",
        };
        f.write_str(name)
    }
}

/// Checks `argument` against the GSN Community Standard rules.
///
/// Returns all issues found (empty = well-formed). Goal-to-goal support is
/// **allowed**, per the standard.
pub fn check(argument: &Argument) -> Vec<Issue> {
    check_impl(argument, false)
}

/// Checks `argument` against Denney & Pai's formalised syntax, which
/// additionally forbids goal-to-goal support (a documented deviation from
/// the standard; see the module docs).
pub fn check_denney_pai(argument: &Argument) -> Vec<Issue> {
    check_impl(argument, true)
}

fn check_impl(argument: &Argument, denney_pai: bool) -> Vec<Issue> {
    let mut issues = Vec::new();

    for node in argument.nodes() {
        if !node.kind.is_gsn() {
            issues.push(Issue {
                rule: Rule::GsnVocabulary,
                at: node.id.clone(),
                detail: format!("`{}` is not a GSN node kind", node.kind),
            });
        }
    }

    for (from_idx, to_idx, kind) in argument.edges_idx() {
        let from = argument.node_at(from_idx);
        let to = argument.node_at(to_idx);
        match kind {
            EdgeKind::SupportedBy => {
                if !matches!(from.kind, NodeKind::Goal | NodeKind::Strategy) {
                    issues.push(Issue {
                        rule: Rule::SupportSource,
                        at: from.id.clone(),
                        detail: format!("a {} cannot be supported", from.kind),
                    });
                }
                if !matches!(
                    to.kind,
                    NodeKind::Goal | NodeKind::Strategy | NodeKind::Solution
                ) {
                    issues.push(Issue {
                        rule: Rule::SupportTarget,
                        at: to.id.clone(),
                        detail: format!("a {} cannot provide support", to.kind),
                    });
                }
                if denney_pai && from.kind == NodeKind::Goal && to.kind == NodeKind::Goal {
                    issues.push(Issue {
                        rule: Rule::DenneyPaiNoGoalToGoal,
                        at: from.id.clone(),
                        detail: format!(
                            "goal `{}` directly supports goal `{}` (allowed by the GSN \
                             standard, rejected by the Denney–Pai formalisation)",
                            from.id, to.id
                        ),
                    });
                }
            }
            EdgeKind::InContextOf => {
                if !matches!(from.kind, NodeKind::Goal | NodeKind::Strategy) {
                    issues.push(Issue {
                        rule: Rule::ContextSource,
                        at: from.id.clone(),
                        detail: format!("a {} cannot have context", from.kind),
                    });
                }
                if !matches!(
                    to.kind,
                    NodeKind::Context | NodeKind::Assumption | NodeKind::Justification
                ) {
                    issues.push(Issue {
                        rule: Rule::ContextTarget,
                        at: to.id.clone(),
                        detail: format!("a {} cannot serve as context", to.kind),
                    });
                }
            }
        }
    }

    // Solutions are leaves.
    for idx in argument.sorted_indices() {
        let node = argument.node_at(idx);
        if node.kind == NodeKind::Solution && argument.out_degree(idx) > 0 {
            issues.push(Issue {
                rule: Rule::SolutionIsLeaf,
                at: node.id.clone(),
                detail: "solutions must not have outgoing edges".into(),
            });
        }
    }

    // Acyclicity.
    if !argument.is_acyclic() {
        let at = argument
            .nodes()
            .next()
            .map(|n| n.id.clone())
            .unwrap_or_else(|| NodeId::new("?"));
        issues.push(Issue {
            rule: Rule::Acyclic,
            at,
            detail: "the support graph contains a cycle".into(),
        });
    }

    // Root goal.
    let has_root_goal = argument
        .roots_idx()
        .any(|idx| argument.node_at(idx).kind == NodeKind::Goal);
    if !argument.is_empty() && !has_root_goal {
        let at = argument
            .nodes()
            .next()
            .map(|n| n.id.clone())
            .unwrap_or_else(|| NodeId::new("?"));
        issues.push(Issue {
            rule: Rule::RootGoal,
            at,
            detail: "no root goal (every goal is supported by something else)".into(),
        });
    }

    // Development status.
    for idx in argument.sorted_indices() {
        let node = argument.node_at(idx);
        let needs_support = matches!(node.kind, NodeKind::Goal | NodeKind::Strategy);
        if !needs_support {
            continue;
        }
        let supported = argument.has_children_idx(idx, EdgeKind::SupportedBy);
        if node.undeveloped && supported {
            issues.push(Issue {
                rule: Rule::UndevelopedHasNoSupport,
                at: node.id.clone(),
                detail: "node is marked undeveloped yet has supporting children".into(),
            });
        }
        if !node.undeveloped && !supported {
            issues.push(Issue {
                rule: Rule::Developed,
                at: node.id.clone(),
                detail: format!("{} has no support and is not marked undeveloped", node.kind),
            });
        }
    }

    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;

    fn well_formed() -> Argument {
        Argument::builder("ok")
            .add("g1", NodeKind::Goal, "Safe")
            .add("s1", NodeKind::Strategy, "By hazards")
            .add("g2", NodeKind::Goal, "H1 ok")
            .add("e1", NodeKind::Solution, "Tests")
            .add("c1", NodeKind::Context, "Scope")
            .add("a1", NodeKind::Assumption, "Independent failures")
            .add("j1", NodeKind::Justification, "Accepted practice")
            .supported_by("g1", "s1")
            .supported_by("s1", "g2")
            .supported_by("g2", "e1")
            .in_context_of("g1", "c1")
            .in_context_of("s1", "j1")
            .in_context_of("g2", "a1")
            .build()
            .unwrap()
    }

    #[test]
    fn well_formed_argument_passes() {
        assert!(check(&well_formed()).is_empty());
    }

    #[test]
    fn goal_to_goal_allowed_by_standard_rejected_by_denney_pai() {
        let a = Argument::builder("g2g")
            .add("g1", NodeKind::Goal, "Top")
            .add("g2", NodeKind::Goal, "Sub")
            .add("e1", NodeKind::Solution, "Evidence")
            .supported_by("g1", "g2")
            .supported_by("g2", "e1")
            .build()
            .unwrap();
        assert!(check(&a).is_empty(), "standard allows goal->goal");
        let issues = check_denney_pai(&a);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].rule, Rule::DenneyPaiNoGoalToGoal);
        assert!(issues[0].detail.contains("deviat") || issues[0].detail.contains("rejected"));
    }

    #[test]
    fn solution_cannot_support() {
        let a = Argument::builder("bad")
            .add("g1", NodeKind::Goal, "Top")
            .add("e1", NodeKind::Solution, "Evidence")
            .add("g2", NodeKind::Goal, "Sub")
            .add("e2", NodeKind::Solution, "More evidence")
            .supported_by("g1", "e1")
            .supported_by("e1", "g2")
            .supported_by("g2", "e2")
            .build()
            .unwrap();
        let issues = check(&a);
        assert!(issues.iter().any(|i| i.rule == Rule::SupportSource));
        assert!(issues.iter().any(|i| i.rule == Rule::SolutionIsLeaf));
    }

    #[test]
    fn context_cannot_be_support_target() {
        let a = Argument::builder("bad")
            .add("g1", NodeKind::Goal, "Top")
            .add("c1", NodeKind::Context, "Scope")
            .supported_by("g1", "c1")
            .build()
            .unwrap();
        let issues = check(&a);
        assert!(issues.iter().any(|i| i.rule == Rule::SupportTarget));
    }

    #[test]
    fn solution_cannot_have_context() {
        let a = Argument::builder("bad")
            .add("g1", NodeKind::Goal, "Top")
            .add("e1", NodeKind::Solution, "Evidence")
            .add("c1", NodeKind::Context, "Scope")
            .supported_by("g1", "e1")
            .in_context_of("e1", "c1")
            .build()
            .unwrap();
        let issues = check(&a);
        assert!(issues.iter().any(|i| i.rule == Rule::ContextSource));
        assert!(issues.iter().any(|i| i.rule == Rule::SolutionIsLeaf));
    }

    #[test]
    fn goal_cannot_serve_as_context() {
        let a = Argument::builder("bad")
            .add("g1", NodeKind::Goal, "Top")
            .add("g2", NodeKind::Goal, "Other")
            .add("e1", NodeKind::Solution, "E")
            .add("e2", NodeKind::Solution, "E2")
            .supported_by("g1", "e1")
            .supported_by("g2", "e2")
            .in_context_of("g1", "g2")
            .build()
            .unwrap();
        let issues = check(&a);
        assert!(issues.iter().any(|i| i.rule == Rule::ContextTarget));
    }

    #[test]
    fn cae_nodes_flagged_in_gsn_check() {
        let a = Argument::builder("mixed")
            .add("g1", NodeKind::Goal, "Top")
            .add("cl1", NodeKind::Claim, "CAE claim")
            .supported_by("g1", "cl1")
            .build()
            .unwrap();
        let issues = check(&a);
        assert!(issues.iter().any(|i| i.rule == Rule::GsnVocabulary));
    }

    #[test]
    fn undeveloped_goal_accepted_developed_goal_without_support_flagged() {
        let a = Argument::builder("dev")
            .node(Node::new("g1", NodeKind::Goal, "Top"))
            .node(Node::new("g2", NodeKind::Goal, "Sub").undeveloped())
            .supported_by("g1", "g2")
            .build()
            .unwrap();
        assert!(check(&a).is_empty());

        let a = Argument::builder("dev")
            .add("g1", NodeKind::Goal, "Top")
            .add("g2", NodeKind::Goal, "Sub")
            .supported_by("g1", "g2")
            .build()
            .unwrap();
        let issues = check(&a);
        assert!(issues
            .iter()
            .any(|i| i.rule == Rule::Developed && i.at == "g2".into()));
    }

    #[test]
    fn undeveloped_with_children_flagged() {
        let a = Argument::builder("dev")
            .node(Node::new("g1", NodeKind::Goal, "Top").undeveloped())
            .add("e1", NodeKind::Solution, "E")
            .supported_by("g1", "e1")
            .build()
            .unwrap();
        let issues = check(&a);
        assert!(issues
            .iter()
            .any(|i| i.rule == Rule::UndevelopedHasNoSupport));
    }

    #[test]
    fn cycle_flagged() {
        let a = Argument::builder("cyc")
            .add("g1", NodeKind::Goal, "A")
            .add("g2", NodeKind::Goal, "B")
            .supported_by("g1", "g2")
            .supported_by("g2", "g1")
            .build()
            .unwrap();
        let issues = check(&a);
        assert!(issues.iter().any(|i| i.rule == Rule::Acyclic));
        // A cyclic argument also has no root goal.
        assert!(issues.iter().any(|i| i.rule == Rule::RootGoal));
    }

    #[test]
    fn no_root_goal_flagged_when_root_is_strategy() {
        let a = Argument::builder("bad-root")
            .add("s1", NodeKind::Strategy, "Orphan strategy")
            .add("g1", NodeKind::Goal, "Sub")
            .add("e1", NodeKind::Solution, "E")
            .supported_by("s1", "g1")
            .supported_by("g1", "e1")
            .build()
            .unwrap();
        let issues = check(&a);
        assert!(issues.iter().any(|i| i.rule == Rule::RootGoal));
    }

    #[test]
    fn issue_display_mentions_rule_and_node() {
        let a = Argument::builder("cyc")
            .add("g1", NodeKind::Goal, "A")
            .add("g2", NodeKind::Goal, "B")
            .supported_by("g1", "g2")
            .supported_by("g2", "g1")
            .build()
            .unwrap();
        let issues = check(&a);
        let text = issues[0].to_string();
        assert!(text.contains("at `"));
    }

    #[test]
    fn empty_argument_is_trivially_well_formed() {
        let a = Argument::builder("empty").build().unwrap();
        assert!(check(&a).is_empty());
    }
}
